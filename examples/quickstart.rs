//! Quickstart: run one JTP bulk transfer over a lossy 5-node chain and
//! read the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use javelen::netsim::{run_experiment, ExperimentConfig, TransportKind};

fn main() {
    // A 5-node linear network (nodes 55 m apart), one bulk transfer of
    // 200 packets x 800 B from node 0 to node 4, full reliability.
    let cfg = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(2000.0)
        .seed(42)
        .bulk_flow(200, 5.0, 0.0);

    let m = run_experiment(&cfg);
    let flow = &m.flows[0];

    println!("JTP quickstart — 5-node chain, 200-packet transfer");
    println!("---------------------------------------------------");
    println!("completed:              {}", flow.completed);
    println!("packets delivered:      {}", flow.delivered_packets);
    println!("goodput:                {:.3} kbps", flow.goodput_kbps());
    println!("energy (system):        {:.3} mJ", m.energy_total_j * 1e3);
    println!(
        "energy per bit:         {:.4} uJ/bit",
        m.energy_per_bit_uj()
    );
    println!("MAC attempts:           {}", m.mac_attempts);
    println!("source retransmissions: {}", m.source_retransmissions);
    println!("cache recoveries:       {}", m.local_recoveries);
    println!("feedback packets:       {}", m.feedbacks_sent);
    println!();
    println!("per-node energy (mJ):");
    for (i, e) in m.per_node_energy_j.iter().enumerate() {
        println!("  node {i}: {:.3}", e * 1e3);
    }

    assert!(flow.completed, "the transfer should finish within 2000 s");
}
