//! A mobile ad-hoc network: 15 nodes under random-waypoint mobility.
//!
//! Shows JTP surviving route changes: link-state views go stale, packets
//! are dropped on broken links, caches recover what they can, and the
//! energy/goodput cost of mobility is visible as speed grows.
//!
//! ```sh
//! cargo run --release --example mobile_network
//! ```

use javelen::netsim::{run_experiment, ExperimentConfig, FlowSpec, TransportKind};
use javelen::sim::{NodeId, SimDuration};

fn main() {
    println!("15-node random network, 3 cross flows, random-waypoint mobility");
    println!();
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "speed", "delivered", "goodput", "uJ/bit", "srcRtx", "cacheHit"
    );

    for &speed in &[0.1, 1.0, 5.0] {
        let mut cfg = ExperimentConfig::random(15)
            .transport(TransportKind::Jtp)
            .duration_s(2500.0)
            .seed(99)
            .mobile(speed);
        for (i, (s, d)) in [(0u32, 14u32), (3, 11), (7, 2)].iter().enumerate() {
            cfg = cfg.flow(FlowSpec {
                src: NodeId(*s),
                dst: NodeId(*d),
                start: SimDuration::from_secs(100 + 50 * i as u64),
                packets: 300,
                loss_tolerance: 0.0,
                initial_rate_pps: None,
            });
        }
        let m = run_experiment(&cfg);
        println!(
            "{:>8}m/s {:>10} {:>10.3}kbps {:>12.4} {:>10} {:>10}",
            speed,
            m.delivered_packets,
            m.avg_goodput_kbps(),
            m.energy_per_bit_uj(),
            m.source_retransmissions,
            m.local_recoveries
        );
    }

    println!();
    println!("note: even under mobility the caches keep recovering packets");
    println!("locally — the paper's Fig 11(c) observation.");
}
