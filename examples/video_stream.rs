//! Adjustable reliability: a video-like stream that tolerates losses.
//!
//! The paper's §3 motivation: "Not all applications (e.g. voice, video,
//! images) require full reliability to perform well." This example streams
//! the same data at three loss-tolerance levels (0 %, 10 %, 20 %) and
//! shows the energy the network saves by *not over-achieving* — while each
//! level still meets its own delivery requirement.
//!
//! ```sh
//! cargo run --release --example video_stream
//! ```

use javelen::netsim::{run_experiment, ExperimentConfig, TransportKind};
use javelen::phys::gilbert::GilbertConfig;

fn main() {
    let packets = 400u32;
    println!("video stream over a 6-node chain, {packets} frames, lossy channel");
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "level", "delivered", "required", "energy(mJ)", "uJ/frame"
    );

    let mut energies = Vec::new();
    for &lt in &[0.0, 0.10, 0.20] {
        let mut cfg = ExperimentConfig::linear(6)
            .transport(TransportKind::Jtp)
            .duration_s(3000.0)
            .seed(7)
            .bulk_flow(packets, 5.0, lt);
        // A channel with real fades, so the tolerance has work to do.
        cfg.gilbert = GilbertConfig {
            bad_fraction: 0.2,
            ..GilbertConfig::paper_default()
        };
        let m = run_experiment(&cfg);
        let f = &m.flows[0];
        let required = ((1.0 - lt) * packets as f64).floor() as u64;
        assert!(
            f.delivered_packets >= required,
            "jtp{}: delivered {} < required {required}",
            (lt * 100.0) as u32,
            f.delivered_packets
        );
        println!(
            "{:>8} {:>10} {:>10} {:>12.2} {:>12.2}",
            format!("jtp{}", (lt * 100.0) as u32),
            f.delivered_packets,
            required,
            m.energy_total_j * 1e3,
            m.energy_total_j * 1e6 / f.delivered_packets as f64
        );
        energies.push(m.energy_total_j);
    }

    println!();
    println!(
        "energy saved by tolerating 20% loss: {:.1}%",
        (1.0 - energies[2] / energies[0]) * 100.0
    );
    println!("every level met its own delivery requirement.");
}
