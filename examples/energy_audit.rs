//! Energy audit: where do the joules go, protocol by protocol?
//!
//! Runs the same workload under JTP, JNC (no caching), ATP and TCP and
//! breaks system energy into data vs feedback traffic — the practical view
//! behind the paper's design goals (§2): minimise end-to-end
//! retransmissions, minimise acknowledgments, avoid congestion loss.
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```

use javelen::events::TimeAccountant;
use javelen::netsim::runner::run_subscribed;
use javelen::netsim::{run_experiment, ExperimentConfig, ReportRecorder, TransportKind};
use javelen::phys::gilbert::GilbertConfig;
use javelen::phys::BatteryConfig;

fn main() {
    let kinds = [
        (TransportKind::Jtp, "JTP"),
        (TransportKind::Jnc, "JNC (no cache)"),
        (TransportKind::Atp, "ATP-like"),
        (TransportKind::Tcp, "TCP-SACK"),
    ];

    println!("energy audit — 7-node chain, 250-packet transfer, deep fades");
    println!();
    println!(
        "{:<16} {:>9} {:>11} {:>11} {:>9} {:>8} {:>8}",
        "protocol", "uJ/bit", "data(mJ)", "acks(mJ)", "ack%", "srcRtx", "cacheHit"
    );

    for (kind, name) in kinds {
        let mut cfg = ExperimentConfig::linear(7)
            .transport(kind)
            .duration_s(4000.0)
            .seed(5)
            .bulk_flow(250, 10.0, 0.0);
        cfg.gilbert = GilbertConfig {
            bad_fraction: 0.2,
            bad_loss_floor: 0.8,
            ..GilbertConfig::paper_default()
        };
        let m = run_experiment(&cfg);
        let data_mj = (m.energy_total_j - m.energy_ack_j) * 1e3;
        let ack_mj = m.energy_ack_j * 1e3;
        println!(
            "{:<16} {:>9.4} {:>11.2} {:>11.2} {:>8.1}% {:>8} {:>8}",
            name,
            m.energy_per_bit_uj(),
            data_mj,
            ack_mj,
            ack_mj / (data_mj + ack_mj) * 100.0,
            m.source_retransmissions,
            m.local_recoveries
        );
    }

    println!();
    println!("JTP: rare 200-B feedback packets and local recovery keep both");
    println!("columns small; TCP pays a per-2-packets ACK stream over every");
    println!("hop; JNC pays full-path source retransmissions.");

    // The same joules, closed into a lifetime: give every node a small
    // battery, offer an effectively endless transfer, and see which
    // transport keeps the network delivering longest. This table reads
    // from the per-scenario JSON report document (the same one
    // `scenario_report --json` writes) instead of raw `Metrics` — the
    // report also carries the flood costs and battery-death events that
    // explain the numbers.
    println!();
    println!("network lifetime — same chain, 0.6 J batteries, endless transfer");
    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>9} {:>7}",
        "protocol", "first death s", "partition s", "delivered", "uJ/bit", "floods"
    );
    for (kind, name) in kinds {
        let mut cfg = ExperimentConfig::linear(7)
            .transport(kind)
            .duration_s(2000.0)
            .seed(5)
            .battery(BatteryConfig::javelen_small())
            .bulk_flow(1_000_000, 10.0, 0.0);
        cfg.gilbert = GilbertConfig {
            bad_fraction: 0.2,
            bad_loss_floor: 0.8,
            ..GilbertConfig::paper_default()
        };
        let (m, (rec, _time)) =
            run_subscribed(&cfg, (ReportRecorder::new(), TimeAccountant::default()));
        let report = rec.into_report("chain7-lifetime", kind, cfg.seed, &m);
        let fmt_opt = |t: Option<f64>| match t {
            Some(t) => format!("{t:.1}"),
            None => "-".into(),
        };
        println!(
            "{:<16} {:>14} {:>14} {:>10} {:>9.4} {:>7}",
            name,
            fmt_opt(report.first_death_s),
            fmt_opt(report.first_partition_s),
            report.delivered_packets,
            report.energy_per_bit_uj,
            report.events.total_floods,
        );
    }
    println!();
    println!("time-to-first-death alone can flatter an idle protocol; read it");
    println!("next to `delivered` — packets moved before the network died.");
}
