//! Workspace-level integration tests through the `javelen` facade:
//! cross-crate invariants that tie the transport, MAC, routing, channel
//! and energy accounting together.

use javelen::jtp::analysis;
use javelen::netsim::{
    run_experiment, run_many, run_traced, ExperimentConfig, FlowSpec, TraceConfig, TransportKind,
};
use javelen::phys::gilbert::GilbertConfig;
use javelen::sim::{FlowId, NodeId, SimDuration};

fn chain(n: usize, kind: TransportKind, packets: u32) -> ExperimentConfig {
    ExperimentConfig::linear(n)
        .transport(kind)
        .duration_s(2000.0)
        .seed(2024)
        .bulk_flow(packets, 5.0, 0.0)
}

#[test]
fn energy_conservation_per_node_sums_to_total() {
    let m = run_experiment(&chain(6, TransportKind::Jtp, 80));
    let sum: f64 = m.per_node_energy_j.iter().sum();
    assert!(
        (sum - m.energy_total_j).abs() < 1e-9,
        "per-node energies must sum to the system total"
    );
    assert!(m.energy_ack_j <= m.energy_total_j);
}

#[test]
fn endpoints_of_a_linear_path_spend_less_than_relays() {
    // Source transmits only; destination mostly receives; relays do both.
    let m = run_experiment(&chain(7, TransportKind::Jtp, 150));
    let e = &m.per_node_energy_j;
    let relay_avg = e[1..6].iter().sum::<f64>() / 5.0;
    assert!(
        e[6] < relay_avg,
        "destination {} !< relays {relay_avg}",
        e[6]
    );
}

#[test]
fn mac_attempts_bound_delivered_times_hops() {
    let m = run_experiment(&chain(5, TransportKind::Jtp, 100));
    // Every delivered packet crossed 4 links at least once.
    assert!(m.mac_attempts >= m.delivered_packets * 4);
    // And the attempt cap bounds the blow-up (plus feedback traffic).
    assert!(m.mac_attempts < m.delivered_packets * 4 * 6);
}

#[test]
fn all_protocols_complete_the_same_workload() {
    for kind in [
        TransportKind::Jtp,
        TransportKind::Jnc,
        TransportKind::Tcp,
        TransportKind::Atp,
    ] {
        let m = run_experiment(&chain(4, kind, 60));
        assert!(
            m.flows[0].completed,
            "{kind:?} failed to complete: {:?}",
            m.flows[0]
        );
        assert_eq!(m.flows[0].delivered_packets, 60, "{kind:?}");
    }
}

#[test]
fn simulated_caching_gain_tracks_closed_form_ordering() {
    // eqs (5)/(6): the measured JNC/JTP transmission ratio grows with path
    // length, as the closed forms predict.
    let mut prev_ratio = 0.0;
    for &n in &[3usize, 7] {
        let mut jtp_cfg = chain(n, TransportKind::Jtp, 150);
        let mut jnc_cfg = chain(n, TransportKind::Jnc, 150);
        for cfg in [&mut jtp_cfg, &mut jnc_cfg] {
            cfg.gilbert = GilbertConfig::stable();
            cfg.pathloss.base_loss = 0.30; // uniform heavy loss
        }
        let jtp_tx: u64 = run_many(&jtp_cfg, 3).iter().map(|m| m.mac_attempts).sum();
        let jnc_tx: u64 = run_many(&jnc_cfg, 3).iter().map(|m| m.mac_attempts).sum();
        let ratio = jnc_tx as f64 / jtp_tx as f64;
        assert!(
            ratio >= prev_ratio * 0.9,
            "gain should not collapse with hops: H={} ratio={ratio}",
            n - 1
        );
        prev_ratio = ratio;
        // Closed-form gain for these parameters is also > 1.
        assert!(analysis::caching_gain(n as u32 - 1, 0.30, 5) >= 1.0);
    }
}

#[test]
fn udp_like_flow_never_requests_recovery() {
    let mut cfg = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(1200.0)
        .seed(77)
        .bulk_flow(200, 5.0, 1.0); // fully tolerant
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.3,
        ..GilbertConfig::paper_default()
    };
    let m = run_experiment(&cfg);
    // Tolerant flows never SNACK, so caches are never asked to recover;
    // the only permitted source resends are tail probes (the transfer's
    // final packets are invisible to the receiver if lost, and the sender
    // re-sends a couple to close the connection).
    // A probe is resent once per feedback round until the tail lands, so
    // a handful is possible on a lossy channel (30% bad state here) — but
    // never bulk recovery, which would be on the order of the transfer
    // size (200).
    assert!(
        m.source_retransmissions <= 15,
        "UDP-like: only tail probes allowed, got {}",
        m.source_retransmissions
    );
    assert_eq!(m.local_recoveries, 0, "UDP-like: no SNACK, no cache hits");
    assert!(m.flows[0].completed, "tolerant flows complete regardless");
    assert!(m.flows[0].delivered_packets <= 200);
}

#[test]
fn reliability_energy_ordering_jtp0_vs_jtp20() {
    let mut total0 = 0.0;
    let mut total20 = 0.0;
    for seed in 0..3u64 {
        let mut a = chain(6, TransportKind::Jtp, 150);
        a.seed = 3000 + seed;
        let mut b = a.clone();
        a.flows[0].loss_tolerance = 0.0;
        b.flows[0].loss_tolerance = 0.20;
        for cfg in [&mut a, &mut b] {
            cfg.gilbert = GilbertConfig {
                bad_fraction: 0.25,
                ..GilbertConfig::paper_default()
            };
        }
        total0 += run_experiment(&a).energy_total_j;
        total20 += run_experiment(&b).energy_total_j;
    }
    assert!(
        total20 < total0,
        "tolerating 20% loss must save energy: {total20} !< {total0}"
    );
}

#[test]
fn route_break_mid_transfer_is_survived() {
    // A mobile run where the path almost certainly changes mid-transfer;
    // full reliability must still complete or deliver the large majority.
    let cfg = ExperimentConfig::random(12)
        .transport(TransportKind::Jtp)
        .duration_s(3000.0)
        .seed(4242)
        .mobile(2.0)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(11),
            start: SimDuration::from_secs(50),
            packets: 150,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    let m = run_experiment(&cfg);
    assert!(
        m.flows[0].delivered_packets >= 100,
        "mobility should not break the transfer: {:?}",
        m.flows[0]
    );
}

#[test]
fn trace_reception_rate_matches_goodput() {
    let (m, trace) = run_traced(
        &chain(4, TransportKind::Jtp, 120),
        TraceConfig {
            receptions: true,
            ..Default::default()
        },
    );
    let n_receptions = trace
        .receptions
        .iter()
        .filter(|(_, f)| *f == FlowId(0))
        .count() as u64;
    assert_eq!(n_receptions, m.flows[0].delivered_packets);
}

#[test]
fn zero_packet_flow_is_trivially_complete() {
    let m = run_experiment(&chain(3, TransportKind::Jtp, 0));
    assert!(m.flows[0].completed);
    assert_eq!(m.delivered_packets, 0);
}

#[test]
fn wire_codecs_round_trip_through_facade() {
    use javelen::jtp::packet::{AckPacket, DataPacket, SeqRange};
    let p = DataPacket {
        flow: FlowId(9),
        seq: 77,
        rate_pps: 3.5,
        loss_tolerance: 0.05,
        remaining_hops: 3,
        energy_budget_nj: 999,
        energy_used_nj: 111,
        deadline_ms: 0,
        payload_len: 800,
    };
    assert_eq!(DataPacket::decode(&p.to_bytes()).unwrap().seq, 77);
    let a = AckPacket {
        flow: FlowId(9),
        cum_ack: 5,
        snack: vec![SeqRange::single(6)],
        locally_recovered: vec![],
        rate_pps: 2.0,
        energy_budget_nj: 1,
        timeout: SimDuration::from_secs(10),
    };
    assert_eq!(AckPacket::decode(&a.to_bytes()).unwrap(), a);
}
