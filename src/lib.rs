//! # JAVeLEN / JTP — facade crate
//!
//! This crate re-exports the full reproduction of *"An Energy-conscious
//! Transport Protocol for Multi-hop Wireless Networks"* (Riga, Matta, Medina,
//! Partridge, Redi — CoNEXT 2007 / BUCS-2007-014):
//!
//! * [`jtp`] — the JTP transport protocol itself (the paper's contribution):
//!   adjustable per-packet reliability, in-network caching with SNACK-driven
//!   local recovery, flip-flop path monitoring, PI²/MD rate control and
//!   energy-budget management.
//! * [`sim`] — the deterministic discrete-event engine everything runs on.
//! * [`phys`] — channel, energy and mobility models.
//! * [`mac`] — the JAVeLEN-like TDMA MAC.
//! * [`routing`] — link-state routing with possibly stale views.
//! * [`baselines`] — rate-based TCP-SACK and ATP-like comparison protocols.
//! * [`netsim`] — node/network assembly, topologies, workloads, metrics.
//! * [`events`] — the typed event vocabulary and zero-cost subscriber
//!   layer (counters, time accounting; reports live in
//!   [`netsim::report`]).
//!
//! ## Quickstart
//!
//! ```
//! use javelen::netsim::{ExperimentConfig, TransportKind, run_experiment};
//!
//! // One JTP bulk flow (40 packets, full reliability) over a 5-node
//! // linear topology.
//! let cfg = ExperimentConfig::linear(5)
//!     .transport(TransportKind::Jtp)
//!     .duration_s(300.0)
//!     .seed(7)
//!     .bulk_flow(40, 5.0, 0.0);
//! let m = run_experiment(&cfg);
//! assert!(m.delivered_packets > 0);
//! println!("energy per delivered bit: {:.3} uJ/bit", m.energy_per_bit_uj());
//! ```
//!
//! See `examples/` for larger scenarios and `crates/bench` for the binaries
//! that regenerate every figure and table of the paper.

pub use jtp;
pub use jtp_baselines as baselines;
pub use jtp_events as events;
pub use jtp_mac as mac;
pub use jtp_netsim as netsim;
pub use jtp_phys as phys;
pub use jtp_routing as routing;
pub use jtp_sim as sim;
