//! Congestion-control conformance layer for the modern opponents.
//!
//! Unlike the white-box unit tests inside `cubic.rs` / `bbr.rs`, everything
//! here drives the senders through their *public wire contract only*
//! (`poll_send` / `on_ack` / `on_timer` / `next_wakeup`) and checks the
//! results against independently computed oracles:
//!
//! * CUBIC: the RFC 8312 window curve `W(t) = C(t−K)³ + W_origin`, the
//!   closed form `K = ∛(W_max(1−β)/C)`, the Reno-friendly slope
//!   `3(1−β)/(1+β)` per RTT, and hand-scripted SACK feeds pinning the
//!   exact `W_max` / `ssthresh` / `K` produced by loss episodes — with and
//!   without fast convergence.
//! * BBR: a hand-computed delivery-rate/RTprop trace pinning the filter
//!   math exactly, and a full Startup → Drain → ProbeBw phase walk over a
//!   symmetric fixed-delay link asserting the gain schedule.
//! * Properties (deterministic proptest stand-in): windows stay in
//!   `[1, cwnd_cap]`, rates stay in `[min_rate, max_rate]`, gains come
//!   only from the published schedule, phases never regress, and pacing
//!   never stalls — every flow completes under adversarial data loss.
//!
//! The in-test link harness mirrors the engine's sender-wakeup contract
//! (`network.rs` clamps re-arms to `now + 1 ms`), so a cap-blocked BBR
//! sender whose `next_send` is stale cannot spin the loop at one instant.

use jtp::packet::SeqRange;
use jtp_baselines::bbr::{self, BbrConfig, BbrPhase, BbrSender};
use jtp_baselines::cubic::{cubic_k, w_cubic, w_est, CubicConfig, CubicSender};
use jtp_baselines::{BbrAck, BbrReceiver, CubicAck, CubicReceiver};
use jtp_sim::{FlowId, SimDuration, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Harness: one sender/receiver pair over a symmetric fixed-delay link.
// ---------------------------------------------------------------------------

/// Deterministic per-(seed, seq, attempt) drop coin: `pct` percent.
fn coin(seed: u64, seq: u32, attempt: u32, pct: u8) -> bool {
    let mut z = seed ^ ((seq as u64) << 32) ^ ((attempt as u64) << 8);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % 100) < pct as u64
}

macro_rules! link_harness {
    ($fn_name:ident, $Sender:ty, $Receiver:ty, $Config:ty, $Data:ty, $Ack:ty) => {
        /// Run `total` packets over a lossless-ACK link with one-way delay
        /// `rtt/2`. Data segments are dropped when `drop_data(seq, attempt)`
        /// says so; `inspect(&sender, now)` runs after every processed ACK.
        /// Returns the sender plus whether the flow completed before
        /// `horizon` (false also covers a stall: nothing scheduled while
        /// incomplete).
        fn $fn_name(
            cfg: $Config,
            total: u32,
            rtt: SimDuration,
            horizon: SimTime,
            mut drop_data: impl FnMut(u32, u32) -> bool,
            mut inspect: impl FnMut(&$Sender, SimTime),
        ) -> ($Sender, bool) {
            enum Ev {
                Data($Data),
                Ack($Ack),
                Flush,
            }
            let flow = FlowId(1);
            let mut s = <$Sender>::new(flow, total, cfg.clone());
            let mut r = <$Receiver>::new(flow, cfg);
            let half = SimDuration::from_micros(rtt.as_micros() / 2);
            let flush_delay = SimDuration::from_millis(200);
            let mut q: Vec<(SimTime, u64, Ev)> = Vec::new();
            let mut next_id = 0u64;
            let mut attempts = vec![0u32; total as usize];
            // Engine-mirrored wakeup clamp: re-arms are >= last service + 1ms.
            let mut floor = SimTime::ZERO;
            loop {
                if s.is_complete() {
                    return (s, true);
                }
                let sender_at = s.next_wakeup().map(|w| w.max(floor));
                let queue_at = q
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (t, id, _))| (*t, *id))
                    .map(|(i, (t, _, _))| (*t, i));
                let (now, service_queue) = match (sender_at, queue_at) {
                    (None, None) => return (s, false), // stalled while incomplete
                    (Some(sw), None) => (sw, None),
                    (None, Some((qt, i))) => (qt, Some(i)),
                    (Some(sw), Some((qt, i))) => {
                        if qt <= sw {
                            (qt, Some(i))
                        } else {
                            (sw, None)
                        }
                    }
                };
                if now > horizon {
                    return (s, false);
                }
                match service_queue {
                    None => {
                        s.on_timer(now);
                        while let Some(d) = s.poll_send(now) {
                            let a = &mut attempts[d.seq as usize];
                            *a += 1;
                            if !drop_data(d.seq, *a) {
                                q.push((now + half, next_id, Ev::Data(d)));
                                next_id += 1;
                            }
                        }
                        floor = now + SimDuration::from_millis(1);
                    }
                    Some(i) => match q.swap_remove(i).2 {
                        Ev::Data(d) => match r.on_data(now, &d) {
                            Some(ack) => {
                                q.push((now + half, next_id, Ev::Ack(ack)));
                                next_id += 1;
                            }
                            None => {
                                q.push((now + flush_delay, next_id, Ev::Flush));
                                next_id += 1;
                            }
                        },
                        Ev::Flush => {
                            if let Some(ack) = r.flush_ack() {
                                q.push((now + half, next_id, Ev::Ack(ack)));
                                next_id += 1;
                            }
                        }
                        Ev::Ack(ack) => {
                            s.on_ack(now, &ack);
                            inspect(&s, now);
                        }
                    },
                }
            }
        }
    };
}

link_harness!(
    run_cubic,
    CubicSender,
    CubicReceiver,
    CubicConfig,
    jtp_baselines::CubicData,
    CubicAck
);
link_harness!(
    run_bbr,
    BbrSender,
    BbrReceiver,
    BbrConfig,
    jtp_baselines::BbrData,
    BbrAck
);

/// Poll a scripted sender until `n` segments left, stepping time in 250 ms
/// increments so pacing never blocks the script.
fn pump_cubic(s: &mut CubicSender, t: &mut SimTime, n: u32) {
    let mut sent = 0;
    while sent < n {
        if s.poll_send(*t).is_some() {
            sent += 1;
        } else {
            *t += SimDuration::from_millis(250);
        }
    }
}

// ---------------------------------------------------------------------------
// CUBIC analytic oracles (RFC 8312).
// ---------------------------------------------------------------------------

/// The window curve and its inverse K, checked against the closed forms on
/// a parameter grid: `K = ∛(W_max(1−β)/C)` at the post-loss window
/// `β·W_max`, the curve passes through `β·W_max` at t=0 and `W_max` at
/// t=K, and the cubic is point-symmetric around its origin.
#[test]
fn cubic_curve_matches_rfc8312_closed_forms() {
    for &c in &[0.2, 0.4, 0.7] {
        for &w_max in &[10.0, 50.0, 200.0] {
            for &beta in &[0.5, 0.7, 0.9] {
                let k = cubic_k(c, w_max, beta * w_max);
                let k_closed = (w_max * (1.0 - beta) / c).cbrt();
                assert!((k - k_closed).abs() < 1e-12, "K {k} vs closed {k_closed}");
                assert!((w_cubic(c, 0.0, k, w_max) - beta * w_max).abs() < 1e-9);
                assert!((w_cubic(c, k, k, w_max) - w_max).abs() < 1e-12);
                for &d in &[0.1, 1.0, 3.0] {
                    let above = w_cubic(c, k + d, k, w_max) - w_max;
                    let below = w_max - w_cubic(c, k - d, k, w_max);
                    assert!((above - below).abs() < 1e-9, "cubic not symmetric");
                }
            }
        }
    }
}

/// The TCP-friendly estimate grows with the Reno slope `3(1−β)/(1+β)`
/// packets per RTT from `β·W_max` (RFC 8312 §4.2).
#[test]
fn cubic_tcp_friendly_region_has_reno_slope() {
    for &beta in &[0.5, 0.7, 0.9] {
        for &w_max in &[10.0, 80.0] {
            for &rtt in &[0.05, 0.5] {
                assert!((w_est(beta, w_max, 0.0, rtt) - beta * w_max).abs() < 1e-12);
                let slope = 3.0 * (1.0 - beta) / (1.0 + beta);
                for &t in &[0.0, 1.0, 7.5] {
                    let dw = w_est(beta, w_max, t + rtt, rtt) - w_est(beta, w_max, t, rtt);
                    assert!((dw - slope).abs() < 1e-9, "slope {dw} vs {slope}");
                }
            }
        }
    }
}

/// Scripted SACK feed through the public API pinning both loss episodes:
/// the first (plain β-decrease) sets `W_max = prior`,
/// `ssthresh = cwnd = β·prior`, and the next growth epoch's K equals the
/// closed form; the second loss lands *below* the remembered saturation
/// point, so fast convergence shrinks `W_max` to `prior·(1+β)/2`.
#[test]
fn cubic_loss_episodes_pin_w_max_ssthresh_and_k() {
    let cfg = CubicConfig::default();
    let (beta, c) = (cfg.beta, cfg.c);
    let mut s = CubicSender::new(FlowId(1), 1000, cfg);
    let mut t = SimTime::ZERO;

    // Slow start: 10 segments out, one cumulative ACK for all of them.
    pump_cubic(&mut s, &mut t, 10);
    let echo = t;
    t += SimDuration::from_millis(250);
    let ack = |cum, sack: Vec<SeqRange>, echo| CubicAck {
        flow: FlowId(1),
        cum_ack: cum,
        sack,
        echo,
    };
    s.on_ack(t, &ack(10, vec![], echo));
    assert!((s.cwnd() - 12.0).abs() < 1e-9, "slow start: 2 + 10 acked");
    assert!(s.in_slow_start());

    // Five more in flight; SACK 12..=14 leaves holes at 10 and 11 —
    // DUPTHRESH is met, first loss event fires.
    pump_cubic(&mut s, &mut t, 5);
    let prior = s.cwnd();
    t += SimDuration::from_millis(250);
    s.on_ack(t, &ack(10, vec![SeqRange { start: 12, end: 14 }], echo));
    assert_eq!(s.stats().loss_events, 1);
    assert!((s.w_max() - prior).abs() < 1e-9, "no fast convergence yet");
    assert!((s.ssthresh() - prior * beta).abs() < 1e-9);
    assert!((s.cwnd() - prior * beta).abs() < 1e-9);
    assert!(!s.in_slow_start());

    // Recovery completes; the first congestion-avoidance ACK opens a new
    // epoch anchored at W_max with the closed-form K. The window was left
    // at exactly β·W_max, so K = ∛(W_max(1−β)/C).
    t += SimDuration::from_millis(250);
    s.on_ack(t, &ack(15, vec![], echo));
    assert!((s.w_origin() - prior).abs() < 1e-9);
    let k_closed = (prior * (1.0 - beta) / c).cbrt();
    assert!((s.k() - k_closed).abs() < 1e-9, "K {} vs {k_closed}", s.k());
    assert!((s.k() - cubic_k(c, prior, prior * beta)).abs() < 1e-9);

    // Second episode strictly below the saturation point: fast
    // convergence cuts the remembered origin to prior2·(1+β)/2.
    let prior2 = s.cwnd();
    assert!(prior2 > prior * beta && prior2 < s.w_max(), "precondition");
    pump_cubic(&mut s, &mut t, 5);
    t += SimDuration::from_millis(250);
    s.on_ack(t, &ack(15, vec![SeqRange { start: 17, end: 19 }], echo));
    assert_eq!(s.stats().loss_events, 2);
    assert!((s.w_max() - prior2 * (1.0 + beta) / 2.0).abs() < 1e-9);
    assert!((s.ssthresh() - prior2 * beta).abs() < 1e-9);
    assert!((s.cwnd() - prior2 * beta).abs() < 1e-9);
}

/// A retransmission timeout is a full collapse: window to one packet,
/// ssthresh floored at two.
#[test]
fn cubic_rto_collapses_to_one_packet() {
    let mut s = CubicSender::new(FlowId(1), 1, CubicConfig::default());
    let t0 = SimTime::ZERO;
    assert!(s.poll_send(t0).is_some());
    // No backlog left, so the only pending wakeup is the RTO deadline.
    let deadline = s.next_wakeup().expect("RTO armed");
    s.on_timer(deadline);
    assert_eq!(s.stats().timeouts, 1);
    assert!((s.cwnd() - 1.0).abs() < 1e-9);
    assert!((s.ssthresh() - 2.0).abs() < 1e-9, "floored at 2");
    // The lost segment is queued for immediate retransmission.
    assert_eq!(s.poll_send(deadline).expect("rtx").seq, 0);
    assert_eq!(s.stats().retransmissions, 1);
}

/// End-to-end over the lossless link: CUBIC leaves slow start territory,
/// grows past its initial window, and completes.
#[test]
fn cubic_lossless_transfer_completes_and_grows() {
    let mut hi = 0.0f64;
    let cap = CubicConfig::default().cwnd_cap;
    let (s, done) = run_cubic(
        CubicConfig::default(),
        300,
        SimDuration::from_millis(100),
        SimTime::from_secs_f64(120.0),
        |_, _| false,
        |s, _| hi = hi.max(s.cwnd()),
    );
    assert!(done && s.is_complete());
    assert_eq!(s.stats().loss_events, 0, "lossless link");
    assert!(hi > 2.0, "window never grew: {hi}");
    assert!(hi <= cap + 1e-9);
}

// ---------------------------------------------------------------------------
// BBR oracles.
// ---------------------------------------------------------------------------

/// Hand-computed delivery-rate and RTprop trace through the public API.
/// Two segments leave at t=0 and t=1 s; one ACK for both arrives at
/// t=2 s echoing the second send. The filters must then hold exactly:
/// RTprop = 1 s, samples {(2−0)/2, (2−0)/1} → BtlBw = 2 pps, BDP = 2
/// packets, inflight cap at the min_cwnd floor, and the Startup pace
/// 2.885 × 2 pps.
#[test]
fn bbr_filter_math_is_exact() {
    let cfg = BbrConfig::default();
    let mut s = BbrSender::new(FlowId(1), 100, cfg.clone());
    let d0 = s.poll_send(SimTime::ZERO).expect("first segment");
    assert_eq!(d0.seq, 0);
    let d1 = s.poll_send(SimTime::from_secs_f64(1.0)).expect("second");
    assert_eq!(d1.seq, 1);
    let now = SimTime::from_secs_f64(2.0);
    s.on_ack(
        now,
        &BbrAck {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            echo: d1.sent_at,
        },
    );
    assert!(
        (s.min_rtt_s() - 1.0).abs() < 1e-9,
        "RTprop {}",
        s.min_rtt_s()
    );
    assert!(
        (s.max_bw_pps() - 2.0).abs() < 1e-9,
        "BtlBw {}",
        s.max_bw_pps()
    );
    assert!((s.bdp_packets() - 2.0).abs() < 1e-9);
    assert!(
        (s.cwnd_packets() - cfg.min_cwnd).abs() < 1e-9,
        "floored cap"
    );
    assert_eq!(s.phase(), BbrPhase::Startup);
    assert!((s.rate() - bbr::STARTUP_GAIN * 2.0).abs() < 1e-9);
    assert_eq!(s.stats().rounds, 1, "cum_ack crossed the round edge");
}

/// Full phase walk on the lossless link: Startup (gain 2.885) until the
/// bandwidth filter plateaus, Drain (gain 1/2.885) until inflight ≤ BDP,
/// then the ProbeBw 8-slot cycle starting at 1.25 with 0.75 next — and
/// never a step backwards. RTprop must converge to the exact link RTT.
#[test]
fn bbr_walks_startup_drain_probebw_with_published_gains() {
    let rank = |p: BbrPhase| match p {
        BbrPhase::Startup => 0,
        BbrPhase::Drain => 1,
        BbrPhase::ProbeBw => 2,
    };
    let mut trace: Vec<(BbrPhase, f64)> = Vec::new();
    let (s, done) = run_bbr(
        BbrConfig::default(),
        1500,
        SimDuration::from_millis(100),
        SimTime::from_secs_f64(400.0),
        |_, _| false,
        |s, _| trace.push((s.phase(), s.pacing_gain())),
    );
    assert!(done && s.is_complete());
    assert_eq!(s.stats().retransmissions + s.stats().timeouts, 0);

    assert_eq!(trace[0].0, BbrPhase::Startup);
    assert!(
        trace.iter().any(|&(p, _)| p == BbrPhase::Drain),
        "never drained"
    );
    assert!(
        trace.iter().any(|&(p, _)| p == BbrPhase::ProbeBw),
        "never cruised"
    );
    for w in trace.windows(2) {
        assert!(rank(w[1].0) >= rank(w[0].0), "phase regressed: {w:?}");
    }
    for &(p, g) in &trace {
        match p {
            BbrPhase::Startup => assert_eq!(g, bbr::STARTUP_GAIN),
            BbrPhase::Drain => assert_eq!(g, 1.0 / bbr::STARTUP_GAIN),
            BbrPhase::ProbeBw => {
                assert!(bbr::PROBE_BW_GAINS.contains(&g), "gain {g} not in cycle")
            }
        }
    }
    let probe: Vec<f64> = trace
        .iter()
        .filter(|(p, _)| *p == BbrPhase::ProbeBw)
        .map(|&(_, g)| g)
        .collect();
    assert_eq!(probe[0], bbr::PROBE_BW_GAINS[0], "cycle starts probing up");
    assert!(probe.contains(&0.75), "drain slot of the cycle never ran");

    // The delayed-ACK echo scheme makes the immediate-ACK RTT sample the
    // link RTT exactly; flush-delayed ACKs only ever sample larger.
    assert!(
        (s.min_rtt_s() - 0.1).abs() < 1e-9,
        "RTprop {}",
        s.min_rtt_s()
    );
    // BtlBw approximates the max_rate-clamped pace.
    let bw = s.max_bw_pps();
    assert!((20.0..70.0).contains(&bw), "BtlBw {bw} implausible");
    assert!(s.stats().rounds >= 5);
}

// ---------------------------------------------------------------------------
// Properties: lawful windows/gains and no stalls under adversarial loss.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `cubic_k` inverts the curve for arbitrary parameters.
    #[test]
    fn cubic_k_inverts_the_curve(
        c in 0.1f64..1.0,
        w_max in 4.0f64..300.0,
        frac in 0.1f64..=1.0,
    ) {
        let cwnd = w_max * frac;
        let k = cubic_k(c, w_max, cwnd);
        prop_assert!(k >= 0.0);
        prop_assert!((w_cubic(c, 0.0, k, w_max) - cwnd).abs() < 1e-9 * w_max);
        prop_assert!((w_cubic(c, k, k, w_max) - w_max).abs() < 1e-12);
    }

    /// Under bounded adversarial data loss (ACKs lossless) the CUBIC
    /// window stays in `[1, cwnd_cap]` at every ACK and the flow always
    /// completes — pacing never stalls.
    #[test]
    fn cubic_window_lawful_and_never_stalls(
        seed in any::<u64>(),
        total in 1u32..28,
        pct in 0u8..40,
    ) {
        let cfg = CubicConfig::default();
        let cap = cfg.cwnd_cap;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (s, done) = run_cubic(
            cfg,
            total,
            SimDuration::from_millis(120),
            SimTime::from_secs_f64(20_000.0),
            |seq, attempt| attempt <= 12 && coin(seed, seq, attempt, pct),
            |s, _| {
                lo = lo.min(s.cwnd());
                hi = hi.max(s.cwnd());
            },
        );
        prop_assert!(done, "stalled or ran past horizon (seed {seed} pct {pct})");
        prop_assert!(s.is_complete());
        if hi.is_finite() {
            prop_assert!(lo >= 1.0 - 1e-9, "window under 1: {lo}");
            prop_assert!(hi <= cap + 1e-9, "window over cap: {hi}");
        }
    }

    /// BBR under the same adversarial loss: pacing gain always comes from
    /// the published schedule, the rate respects its clamps, the phase
    /// machine never steps backwards, and the flow always completes.
    #[test]
    fn bbr_gains_rate_and_phases_lawful_and_never_stall(
        seed in any::<u64>(),
        total in 1u32..28,
        pct in 0u8..35,
    ) {
        let cfg = BbrConfig::default();
        let (min_r, max_r) = (cfg.min_rate_pps, cfg.max_rate_pps);
        let mut max_rank = 0u8;
        let (s, done) = run_bbr(
            cfg,
            total,
            SimDuration::from_millis(120),
            SimTime::from_secs_f64(20_000.0),
            |seq, attempt| attempt <= 12 && coin(seed, seq, attempt, pct),
            |s, _| {
                let g = s.pacing_gain();
                prop_assert!(
                    g == bbr::STARTUP_GAIN
                        || g == 1.0 / bbr::STARTUP_GAIN
                        || bbr::PROBE_BW_GAINS.contains(&g),
                    "off-schedule gain {g}"
                );
                let r = s.rate();
                prop_assert!((min_r - 1e-12..=max_r + 1e-12).contains(&r), "rate {r}");
                let rank = match s.phase() {
                    BbrPhase::Startup => 0,
                    BbrPhase::Drain => 1,
                    BbrPhase::ProbeBw => 2,
                };
                prop_assert!(rank >= max_rank, "phase regressed");
                max_rank = rank;
            },
        );
        prop_assert!(done, "stalled or ran past horizon (seed {seed} pct {pct})");
        prop_assert!(s.is_complete());
    }
}
