//! Rate-paced CUBIC (RFC 8312).
//!
//! The modern default congestion controller of Linux/Windows, modeled as a
//! window curve driving a paced rate. After a loss event at window `W_max`
//! the window is cut to `β·W_max` and then grows along the cubic
//!
//! ```text
//! W(t) = C·(t − K)³ + W_max,      K = ∛(W_max·(1 − β)/C)
//! ```
//!
//! concave up to the old `W_max`, convex beyond it. Fast convergence
//! releases bandwidth to newer flows by remembering the previous `W_max`
//! and cutting the origin to `W_max·(1+β)/2` when the new loss happened
//! below it. The TCP-friendly region `W_est(t) = W_max·β +
//! 3·(1−β)/(1+β)·t/RTT` keeps CUBIC at least as aggressive as Reno on
//! short-RTT paths. The window is turned into a pace of `cwnd/srtt`
//! packets per second — the simulator's transports are all rate-paced, so
//! burst dynamics are deliberately out of model (as are HyStart and
//! window scaling by receive buffer).
//!
//! Reliability is the same SACK scoreboard as `tcp.rs`: DUPTHRESH
//! inference plus an RTO with exponential back-off.

use jtp::packet::{compress_ranges, SeqRange};
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// CUBIC baseline configuration.
#[derive(Clone, Debug)]
pub struct CubicConfig {
    /// Application payload bytes per segment (matching JTP's 800).
    pub payload_bytes: u16,
    /// IP+TCP header bytes on data segments.
    pub header_bytes: usize,
    /// Bytes of a pure ACK (IP+TCP+SACK option).
    pub ack_bytes: usize,
    /// Delayed-ACK factor `b` (one ACK per `b` segments).
    pub delayed_ack_every: u32,
    /// Rate bounds (pps).
    pub min_rate_pps: f64,
    /// Upper rate bound; set to the path capacity by the assembly.
    pub max_rate_pps: f64,
    /// Initial RTT estimate before any sample.
    pub initial_rtt: SimDuration,
    /// Minimum retransmission timeout.
    pub rto_min: SimDuration,
    /// CUBIC aggressiveness constant `C` (RFC 8312 §5).
    pub c: f64,
    /// Multiplicative-decrease factor `β` (RFC 8312: 0.7).
    pub beta: f64,
    /// Hard window cap in packets (stands in for the receive window).
    pub cwnd_cap: f64,
    /// Enable fast convergence (RFC 8312 §4.6).
    pub fast_convergence: bool,
}

impl Default for CubicConfig {
    fn default() -> Self {
        CubicConfig {
            payload_bytes: 800,
            header_bytes: 40,
            ack_bytes: 52,
            delayed_ack_every: 2,
            min_rate_pps: 0.1,
            max_rate_pps: 50.0,
            initial_rtt: SimDuration::from_millis(500),
            rto_min: SimDuration::from_secs(1),
            c: 0.4,
            beta: 0.7,
            cwnd_cap: 256.0,
            fast_convergence: true,
        }
    }
}

/// A CUBIC data segment (simulation representation).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CubicData {
    /// Flow id.
    pub flow: FlowId,
    /// Segment sequence number (packet-granularity).
    pub seq: u32,
    /// Timestamp option: when the segment left the sender.
    pub sent_at: SimTime,
    /// Payload bytes.
    pub payload_len: u16,
}

/// A CUBIC acknowledgment with SACK blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct CubicAck {
    /// Flow id.
    pub flow: FlowId,
    /// Cumulative ACK: everything below is delivered.
    pub cum_ack: u32,
    /// SACK blocks above the cumulative ACK.
    pub sack: Vec<SeqRange>,
    /// Echoed timestamp of the newest data that triggered this ACK.
    pub echo: SimTime,
}

/// The CUBIC window curve `W(t) = C·(t − K)³ + W_origin` in packets.
pub fn w_cubic(c: f64, t_s: f64, k_s: f64, w_origin: f64) -> f64 {
    let d = t_s - k_s;
    c * d * d * d + w_origin
}

/// The epoch constant `K = ∛((W_origin − cwnd)/C)`: the time at which the
/// cubic regrows to the origin window from the post-cut `cwnd`.
pub fn cubic_k(c: f64, w_origin: f64, cwnd: f64) -> f64 {
    ((w_origin - cwnd).max(0.0) / c).cbrt()
}

/// The TCP-friendly (Reno-tracking) window estimate of RFC 8312 §4.2.
pub fn w_est(beta: f64, w_origin: f64, t_s: f64, rtt_s: f64) -> f64 {
    w_origin * beta + 3.0 * (1.0 - beta) / (1.0 + beta) * (t_s / rtt_s.max(1e-9))
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CubicSenderStats {
    /// First transmissions.
    pub fresh_sent: u64,
    /// Retransmissions (SACK-inferred + RTO).
    pub retransmissions: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// ACKs processed.
    pub acks_received: u64,
    /// Multiplicative-decrease episodes (loss events, not lost packets).
    pub loss_events: u64,
}

/// The rate-paced CUBIC source.
#[derive(Clone, Debug)]
pub struct CubicSender {
    flow: FlowId,
    cfg: CubicConfig,
    total: u32,
    next_seq: u32,
    cum_ack: u32,
    outstanding: BTreeMap<u32, SimTime>,
    sacked: BTreeSet<u32>,
    rtx_queue: VecDeque<u32>,
    srtt_s: f64,
    rttvar_s: f64,
    have_rtt: bool,
    // --- CUBIC state ---
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    epoch_start: Option<SimTime>,
    k_s: f64,
    w_origin: f64,
    /// Loss events with a lost seq below this are the same episode.
    recover: u32,
    rate_pps: f64,
    next_send: SimTime,
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    stats: CubicSenderStats,
}

impl CubicSender {
    /// Create a source transferring `total` segments.
    pub fn new(flow: FlowId, total: u32, cfg: CubicConfig) -> Self {
        let srtt = cfg.initial_rtt.as_secs_f64();
        let mut s = CubicSender {
            flow,
            total,
            next_seq: 0,
            cum_ack: 0,
            outstanding: BTreeMap::new(),
            sacked: BTreeSet::new(),
            rtx_queue: VecDeque::new(),
            srtt_s: srtt,
            rttvar_s: srtt / 2.0,
            have_rtt: false,
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k_s: 0.0,
            w_origin: 0.0,
            recover: 0,
            rate_pps: 1.0,
            next_send: SimTime::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            stats: CubicSenderStats::default(),
            cfg,
        };
        s.update_rate();
        s
    }

    /// The flow this sender feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current paced rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Last-loss window `W_max` (after any fast-convergence cut).
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Epoch constant `K` in seconds (0 before the first loss epoch).
    pub fn k(&self) -> f64 {
        self.k_s
    }

    /// Cubic origin window of the current growth epoch.
    pub fn w_origin(&self) -> f64 {
        self.w_origin
    }

    /// Still below `ssthresh`?
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Everything delivered?
    pub fn is_complete(&self) -> bool {
        self.cum_ack >= self.total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CubicSenderStats {
        self.stats
    }

    /// Current retransmission timeout.
    fn rto(&self) -> SimDuration {
        let base = self.srtt_s + 4.0 * self.rttvar_s;
        let backed = base * (1u64 << self.rto_backoff.min(6)) as f64;
        SimDuration::from_secs_f64(backed).max(self.cfg.rto_min)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = if self.outstanding.is_empty() {
            None
        } else {
            Some(now + self.rto())
        };
    }

    fn has_backlog(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.total
    }

    /// Emit at most one segment if pacing allows.
    pub fn poll_send(&mut self, now: SimTime) -> Option<CubicData> {
        if now < self.next_send || !self.has_backlog() {
            return None;
        }
        let gap = SimDuration::from_secs_f64(1.0 / self.rate_pps.max(self.cfg.min_rate_pps));
        let seq = loop {
            match self.rtx_queue.pop_front() {
                Some(s) if s >= self.cum_ack && !self.sacked.contains(&s) => {
                    self.stats.retransmissions += 1;
                    break Some(s);
                }
                Some(_) => continue, // stale entry
                None => break None,
            }
        }
        .or_else(|| {
            (self.next_seq < self.total).then(|| {
                let s = self.next_seq;
                self.next_seq += 1;
                self.stats.fresh_sent += 1;
                s
            })
        })?;
        self.outstanding.insert(seq, now);
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        self.next_send = now + gap;
        Some(CubicData {
            flow: self.flow,
            seq,
            sent_at: now,
            payload_len: self.cfg.payload_bytes,
        })
    }

    /// Next instant the sender wants attention (pacing or RTO).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let pacing = self.has_backlog().then_some(self.next_send);
        match (pacing, self.rto_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Start a new cubic growth epoch from the current window.
    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            self.w_origin = self.w_max;
            self.k_s = cubic_k(self.cfg.c, self.w_max, self.cwnd);
        } else {
            // Already past the old saturation point: origin is here, pure
            // convex probing (K = 0).
            self.w_origin = self.cwnd;
            self.k_s = 0.0;
        }
    }

    /// Per-ACK window growth (RFC 8312 §4.1–4.3).
    fn grow(&mut self, now: SimTime, acked: u64) {
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd + 1.0).min(self.cfg.cwnd_cap);
                continue;
            }
            if self.epoch_start.is_none() {
                self.begin_epoch(now);
            }
            let t = now.since(self.epoch_start.unwrap()).as_secs_f64();
            let rtt = self.srtt_s.max(1e-3);
            let target = w_cubic(self.cfg.c, t + rtt, self.k_s, self.w_origin);
            if target > self.cwnd {
                self.cwnd += (target - self.cwnd) / self.cwnd.max(1.0);
            }
            let est = w_est(self.cfg.beta, self.w_origin, t, rtt);
            if est > self.cwnd {
                self.cwnd = est; // TCP-friendly region
            }
            self.cwnd = self.cwnd.clamp(1.0, self.cfg.cwnd_cap);
        }
    }

    /// Multiplicative decrease on a new loss event.
    fn on_loss_event(&mut self, full_collapse: bool) {
        self.stats.loss_events += 1;
        let prior = self.cwnd;
        // Fast convergence: a loss below the previous saturation point
        // means competition — shrink the remembered origin to hand over
        // bandwidth sooner.
        if self.cfg.fast_convergence && prior < self.w_max {
            self.w_max = prior * (1.0 + self.cfg.beta) / 2.0;
        } else {
            self.w_max = prior;
        }
        self.ssthresh = (prior * self.cfg.beta).max(2.0);
        self.cwnd = if full_collapse {
            1.0
        } else {
            (prior * self.cfg.beta).max(1.0)
        };
        self.epoch_start = None;
        self.recover = self.next_seq;
    }

    /// Process an acknowledgment.
    pub fn on_ack(&mut self, now: SimTime, ack: &CubicAck) {
        debug_assert_eq!(ack.flow, self.flow);
        self.stats.acks_received += 1;

        let sample = now.since(ack.echo).as_secs_f64();
        if sample > 0.0 {
            if self.have_rtt {
                let err = sample - self.srtt_s;
                self.srtt_s += 0.125 * err;
                self.rttvar_s += 0.25 * (err.abs() - self.rttvar_s);
            } else {
                self.srtt_s = sample;
                self.rttvar_s = sample / 2.0;
                self.have_rtt = true;
            }
        }

        let mut newly_delivered = 0u64;
        if ack.cum_ack > self.cum_ack {
            let freed: Vec<u32> = self
                .outstanding
                .range(..ack.cum_ack)
                .map(|(&s, _)| s)
                .collect();
            newly_delivered += freed.len() as u64;
            for s in freed {
                self.outstanding.remove(&s);
            }
            self.sacked = self.sacked.split_off(&ack.cum_ack);
            self.cum_ack = ack.cum_ack;
            self.rto_backoff = 0;
        }
        let mut highest_sacked = None;
        for r in &ack.sack {
            for s in r.iter() {
                if s >= self.cum_ack && self.sacked.insert(s) {
                    newly_delivered += 1;
                }
                highest_sacked = Some(highest_sacked.map_or(s, |h: u32| h.max(s)));
            }
        }

        // SACK loss inference with DUPTHRESH (RFC 6675), as in `tcp.rs`.
        const DUPTHRESH: usize = 3;
        let mut new_loss = false;
        if highest_sacked.is_some() {
            let lost: Vec<u32> = self
                .outstanding
                .keys()
                .copied()
                .filter(|s| {
                    !self.sacked.contains(s) && self.sacked.range((s + 1)..).count() >= DUPTHRESH
                })
                .collect();
            for s in lost {
                if !self.rtx_queue.contains(&s) {
                    self.rtx_queue.push_back(s);
                    new_loss = true;
                }
            }
        }
        if new_loss && self.cum_ack >= self.recover {
            self.on_loss_event(false);
        } else {
            self.grow(now, newly_delivered);
        }

        self.update_rate();
        self.arm_rto(now);
    }

    fn update_rate(&mut self) {
        let r = self.cwnd / self.srtt_s.max(1e-3);
        self.rate_pps = r.clamp(self.cfg.min_rate_pps, self.cfg.max_rate_pps);
    }

    /// Fire the retransmission timer if due: earliest outstanding segment
    /// is declared lost, the window collapses to one packet, RTO backs off
    /// exponentially.
    pub fn on_timer(&mut self, now: SimTime) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        if let Some((&seq, _)) = self.outstanding.iter().next() {
            if !self.rtx_queue.contains(&seq) {
                self.rtx_queue.push_front(seq);
            }
            self.stats.timeouts += 1;
            self.rto_backoff += 1;
            self.on_loss_event(true);
            self.update_rate();
            self.next_send = now; // retransmit immediately
        }
        self.arm_rto(now);
    }

    /// Bytes on the wire for a data segment.
    pub fn data_wire_bytes(&self) -> usize {
        self.cfg.header_bytes + self.cfg.payload_bytes as usize
    }
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CubicReceiverStats {
    /// Distinct segments delivered.
    pub delivered_packets: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
}

/// The CUBIC receiver: delayed ACKs, immediate SACK on reordering —
/// byte-for-byte the TCP-SACK receiver contract.
#[derive(Clone, Debug)]
pub struct CubicReceiver {
    flow: FlowId,
    cfg: CubicConfig,
    prefix: u32,
    ooo: BTreeSet<u32>,
    unacked_data: u32,
    last_echo: SimTime,
    stats: CubicReceiverStats,
}

impl CubicReceiver {
    /// Create the receiving endpoint.
    pub fn new(flow: FlowId, cfg: CubicConfig) -> Self {
        CubicReceiver {
            flow,
            cfg,
            prefix: 0,
            ooo: BTreeSet::new(),
            unacked_data: 0,
            last_echo: SimTime::ZERO,
            stats: CubicReceiverStats::default(),
        }
    }

    /// The flow this endpoint terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CubicReceiverStats {
        self.stats
    }

    /// Cumulative delivery point.
    pub fn cum_ack(&self) -> u32 {
        self.prefix
    }

    /// Process a data segment; ACK per delayed-ACK policy.
    pub fn on_data(&mut self, _now: SimTime, data: &CubicData) -> Option<CubicAck> {
        debug_assert_eq!(data.flow, self.flow);
        let fresh = data.seq >= self.prefix && self.ooo.insert(data.seq);
        if fresh {
            self.stats.delivered_packets += 1;
            self.stats.delivered_bytes += data.payload_len as u64;
            while self.ooo.remove(&self.prefix) {
                self.prefix += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        self.last_echo = data.sent_at;
        self.unacked_data += 1;
        let out_of_order = !self.ooo.is_empty();
        if out_of_order || self.unacked_data >= self.cfg.delayed_ack_every {
            Some(self.make_ack())
        } else {
            None
        }
    }

    fn make_ack(&mut self) -> CubicAck {
        self.unacked_data = 0;
        self.stats.acks_sent += 1;
        let sacked: Vec<u32> = self.ooo.iter().copied().collect();
        CubicAck {
            flow: self.flow,
            cum_ack: self.prefix,
            sack: compress_ranges(&sacked),
            echo: self.last_echo,
        }
    }

    /// Force a pending delayed ACK out.
    pub fn flush_ack(&mut self) -> Option<CubicAck> {
        (self.unacked_data > 0).then(|| self.make_ack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(total: u32) -> CubicSender {
        CubicSender::new(FlowId(1), total, CubicConfig::default())
    }

    #[test]
    fn curve_passes_through_origin_at_k() {
        let c = 0.4;
        let w_max = 40.0;
        let cwnd = w_max * 0.7;
        let k = cubic_k(c, w_max, cwnd);
        assert!((w_cubic(c, k, k, w_max) - w_max).abs() < 1e-9);
        assert!((w_cubic(c, 0.0, k, w_max) - cwnd).abs() < 1e-9);
    }

    #[test]
    fn slow_start_doubles_per_rtt_worth_of_acks() {
        let mut s = sender(1000);
        assert!(s.in_slow_start());
        let before = s.cwnd();
        s.grow(SimTime::ZERO, 4);
        assert!((s.cwnd() - (before + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_event_applies_beta_and_fast_convergence() {
        let mut s = sender(1000);
        s.cwnd = 100.0;
        s.ssthresh = 10.0;
        s.on_loss_event(false);
        assert!((s.cwnd() - 70.0).abs() < 1e-9, "β·W = {}", s.cwnd());
        assert!((s.w_max() - 100.0).abs() < 1e-9, "no prior w_max cut");
        // Second loss below the previous saturation point: fast
        // convergence shrinks the remembered origin.
        s.cwnd = 80.0;
        s.on_loss_event(false);
        let expect = 80.0 * (1.0 + 0.7) / 2.0;
        assert!((s.w_max() - expect).abs() < 1e-9, "w_max = {}", s.w_max());
    }

    #[test]
    fn epoch_k_matches_closed_form() {
        let mut s = sender(1000);
        s.cwnd = 100.0;
        s.ssthresh = 10.0;
        s.on_loss_event(false);
        s.grow(SimTime::from_millis(10), 1);
        let expect = cubic_k(0.4, s.w_max(), 70.0);
        assert!((s.k() - expect).abs() < 1e-6, "{} vs {expect}", s.k());
    }

    #[test]
    fn window_growth_caps_at_cwnd_cap() {
        let mut s = sender(100_000);
        for i in 0..5_000u64 {
            s.grow(SimTime::from_millis(i), 1);
        }
        assert!(s.cwnd() <= s.cfg.cwnd_cap + 1e-9);
    }

    #[test]
    fn rto_collapses_to_one_packet() {
        let mut s = sender(50);
        let t0 = SimTime::ZERO;
        s.poll_send(t0).unwrap();
        let deadline = s.next_wakeup().unwrap();
        s.on_timer(deadline + SimDuration::from_secs(2));
        assert_eq!(s.stats().timeouts, 1);
        assert!((s.cwnd() - 1.0).abs() < 1e-9);
        let rtx = s.poll_send(deadline + SimDuration::from_secs(2)).unwrap();
        assert_eq!(rtx.seq, 0);
    }

    #[test]
    fn sack_loss_infers_once_per_episode() {
        let mut s = sender(20);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        let ack = CubicAck {
            flow: FlowId(1),
            cum_ack: 1,
            sack: vec![SeqRange { start: 3, end: 8 }],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert_eq!(s.stats().loss_events, 1);
        // More SACK evidence inside the same episode: no second cut.
        let ack2 = CubicAck {
            flow: FlowId(1),
            cum_ack: 1,
            sack: vec![SeqRange { start: 3, end: 10 }],
            echo: SimTime::ZERO,
        };
        s.on_ack(t + SimDuration::from_millis(100), &ack2);
        assert_eq!(s.stats().loss_events, 1);
    }

    #[test]
    fn completes_on_full_cum_ack() {
        let mut s = sender(2);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        let ack = CubicAck {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert!(s.is_complete());
        assert!(s.poll_send(t + SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn receiver_contract_matches_tcp() {
        let mut r = CubicReceiver::new(FlowId(1), CubicConfig::default());
        let d = |seq| CubicData {
            flow: FlowId(1),
            seq,
            sent_at: SimTime::ZERO,
            payload_len: 800,
        };
        assert!(r.on_data(SimTime::ZERO, &d(0)).is_none(), "first: delayed");
        let ack = r.on_data(SimTime::ZERO, &d(2)).expect("gap => immediate");
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(ack.sack, vec![SeqRange::single(2)]);
        let flushed = r.flush_ack();
        assert!(flushed.is_none(), "ack already emitted");
    }
}
