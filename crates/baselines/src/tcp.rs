//! Rate-based TCP-SACK.
//!
//! The paper's TCP baseline removes window burstiness by pacing at the rate
//! of the Padhye et al. steady-state throughput model:
//!
//! ```text
//!               1
//! R(p) = ─────────────────────────────────────────────────────  pkts/s
//!        RTT·√(2bp/3) + t_RTO·min(1, 3·√(3bp/8))·p·(1+32p²)
//! ```
//!
//! with `b = 2` (delayed ACKs, one per two packets) and `p` the loss-event
//! rate the sender measures. Reliability is full: the receiver reports
//! gaps via SACK blocks; the sender keeps a scoreboard, selectively
//! retransmits SACK-inferred losses, and falls back to an RTO with
//! exponential back-off for tail losses. All recovery is end-to-end — this
//! is exactly what makes TCP pay `H` extra hops of energy per loss in the
//! paper's analysis.

use jtp::packet::{compress_ranges, SeqRange};
use jtp_sim::stats::Ewma;
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// TCP baseline configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Application payload bytes per segment (matching JTP's 800).
    pub payload_bytes: u16,
    /// IP+TCP header bytes on data segments.
    pub header_bytes: usize,
    /// Bytes of a pure ACK (IP+TCP+SACK option).
    pub ack_bytes: usize,
    /// Delayed-ACK factor `b` (one ACK per `b` segments).
    pub delayed_ack_every: u32,
    /// Rate bounds (pps).
    pub min_rate_pps: f64,
    /// Upper rate bound; set to the path capacity by the assembly.
    pub max_rate_pps: f64,
    /// Initial RTT estimate before any sample.
    pub initial_rtt: SimDuration,
    /// Minimum retransmission timeout.
    pub rto_min: SimDuration,
    /// EWMA weight of the loss-rate estimate.
    pub loss_alpha: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            payload_bytes: 800,
            header_bytes: 40,
            ack_bytes: 52,
            delayed_ack_every: 2,
            min_rate_pps: 0.1,
            max_rate_pps: 50.0,
            initial_rtt: SimDuration::from_millis(500),
            rto_min: SimDuration::from_secs(1),
            loss_alpha: 0.1,
        }
    }
}

/// A TCP data segment (simulation representation).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TcpData {
    /// Flow id.
    pub flow: FlowId,
    /// Segment sequence number (packet-granularity).
    pub seq: u32,
    /// Timestamp option: when the segment left the sender.
    pub sent_at: SimTime,
    /// Payload bytes.
    pub payload_len: u16,
}

/// A TCP acknowledgment with SACK blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct TcpAck {
    /// Flow id.
    pub flow: FlowId,
    /// Cumulative ACK: everything below is delivered.
    pub cum_ack: u32,
    /// SACK blocks above the cumulative ACK.
    pub sack: Vec<SeqRange>,
    /// Echoed timestamp of the newest data that triggered this ACK.
    pub echo: SimTime,
}

/// Padhye et al. steady-state TCP throughput in packets/second.
pub fn padhye_rate_pps(rtt_s: f64, rto_s: f64, p: f64, b: f64) -> f64 {
    if p <= 0.0 {
        return f64::INFINITY;
    }
    let p = p.min(1.0);
    let term1 = rtt_s * (2.0 * b * p / 3.0).sqrt();
    let term2 = rto_s * (1.0f64).min(3.0 * (3.0 * b * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    1.0 / (term1 + term2)
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpSenderStats {
    /// First transmissions.
    pub fresh_sent: u64,
    /// Retransmissions (SACK-inferred + RTO).
    pub retransmissions: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// ACKs processed.
    pub acks_received: u64,
}

/// The rate-based TCP-SACK source.
#[derive(Clone, Debug)]
pub struct TcpSender {
    flow: FlowId,
    cfg: TcpConfig,
    total: u32,
    next_seq: u32,
    cum_ack: u32,
    /// Outstanding segments and when they were (last) sent.
    outstanding: BTreeMap<u32, SimTime>,
    sacked: BTreeSet<u32>,
    rtx_queue: VecDeque<u32>,
    srtt_s: f64,
    rttvar_s: f64,
    have_rtt: bool,
    loss: Ewma,
    rate_pps: f64,
    next_send: SimTime,
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Create a source transferring `total` segments.
    pub fn new(flow: FlowId, total: u32, cfg: TcpConfig) -> Self {
        let srtt = cfg.initial_rtt.as_secs_f64();
        TcpSender {
            flow,
            total,
            next_seq: 0,
            cum_ack: 0,
            outstanding: BTreeMap::new(),
            sacked: BTreeSet::new(),
            rtx_queue: VecDeque::new(),
            srtt_s: srtt,
            rttvar_s: srtt / 2.0,
            have_rtt: false,
            loss: Ewma::new(cfg.loss_alpha),
            rate_pps: 1.0,
            next_send: SimTime::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            stats: TcpSenderStats::default(),
            cfg,
        }
    }

    /// The flow this sender feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current paced rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// Everything delivered?
    pub fn is_complete(&self) -> bool {
        self.cum_ack >= self.total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// Current retransmission timeout.
    fn rto(&self) -> SimDuration {
        let base = self.srtt_s + 4.0 * self.rttvar_s;
        let backed = base * (1u64 << self.rto_backoff.min(6)) as f64;
        SimDuration::from_secs_f64(backed).max(self.cfg.rto_min)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = if self.outstanding.is_empty() {
            None
        } else {
            Some(now + self.rto())
        };
    }

    fn has_backlog(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.total
    }

    /// Emit at most one segment if pacing allows.
    pub fn poll_send(&mut self, now: SimTime) -> Option<TcpData> {
        if now < self.next_send || !self.has_backlog() {
            return None;
        }
        let gap = SimDuration::from_secs_f64(1.0 / self.rate_pps.max(self.cfg.min_rate_pps));
        let seq = loop {
            match self.rtx_queue.pop_front() {
                Some(s) if s >= self.cum_ack && !self.sacked.contains(&s) => {
                    self.stats.retransmissions += 1;
                    break Some(s);
                }
                Some(_) => continue, // stale entry
                None => break None,
            }
        }
        .or_else(|| {
            (self.next_seq < self.total).then(|| {
                let s = self.next_seq;
                self.next_seq += 1;
                self.stats.fresh_sent += 1;
                s
            })
        })?;
        self.outstanding.insert(seq, now);
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        self.next_send = now + gap;
        Some(TcpData {
            flow: self.flow,
            seq,
            sent_at: now,
            payload_len: self.cfg.payload_bytes,
        })
    }

    /// Next instant the sender wants attention (pacing or RTO).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let pacing = self.has_backlog().then_some(self.next_send);
        match (pacing, self.rto_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Process an acknowledgment.
    pub fn on_ack(&mut self, now: SimTime, ack: &TcpAck) {
        debug_assert_eq!(ack.flow, self.flow);
        self.stats.acks_received += 1;

        // RTT sample from the echoed timestamp (Karn-safe because the echo
        // is the original transmit time of the acked segment).
        let sample = now.since(ack.echo).as_secs_f64();
        if sample > 0.0 {
            if self.have_rtt {
                let err = sample - self.srtt_s;
                self.srtt_s += 0.125 * err;
                self.rttvar_s += 0.25 * (err.abs() - self.rttvar_s);
            } else {
                self.srtt_s = sample;
                self.rttvar_s = sample / 2.0;
                self.have_rtt = true;
            }
        }

        let mut newly_delivered = 0u64;
        if ack.cum_ack > self.cum_ack {
            let freed: Vec<u32> = self
                .outstanding
                .range(..ack.cum_ack)
                .map(|(&s, _)| s)
                .collect();
            newly_delivered += freed.len() as u64;
            for s in freed {
                self.outstanding.remove(&s);
            }
            self.sacked = self.sacked.split_off(&ack.cum_ack);
            self.cum_ack = ack.cum_ack;
            self.rto_backoff = 0;
        }
        let mut highest_sacked = None;
        for r in &ack.sack {
            for s in r.iter() {
                if s >= self.cum_ack && self.sacked.insert(s) {
                    newly_delivered += 1;
                }
                highest_sacked = Some(highest_sacked.map_or(s, |h: u32| h.max(s)));
            }
        }
        for _ in 0..newly_delivered {
            self.loss.update(0.0);
        }

        // SACK-based loss inference with a duplicate threshold (RFC 6675):
        // an outstanding segment is presumed lost only once at least
        // DUPTHRESH higher segments have been SACKed — plain "below the
        // highest SACK" misfires on mild reordering and floods the path
        // with spurious retransmissions.
        const DUPTHRESH: usize = 3;
        if highest_sacked.is_some() {
            let lost: Vec<u32> = self
                .outstanding
                .keys()
                .copied()
                .filter(|s| {
                    !self.sacked.contains(s) && self.sacked.range((s + 1)..).count() >= DUPTHRESH
                })
                .collect();
            for s in lost {
                if !self.rtx_queue.contains(&s) {
                    self.rtx_queue.push_back(s);
                    self.loss.update(1.0);
                }
            }
        }

        self.update_rate();
        self.arm_rto(now);
    }

    fn update_rate(&mut self) {
        let p = self.loss.get_or(0.0).clamp(0.0, 1.0);
        let r = padhye_rate_pps(
            self.srtt_s,
            self.rto().as_secs_f64(),
            p,
            self.cfg.delayed_ack_every as f64,
        );
        self.rate_pps = r.clamp(self.cfg.min_rate_pps, self.cfg.max_rate_pps);
    }

    /// Fire the retransmission timer if due: earliest outstanding segment
    /// is declared lost, rate collapses, RTO backs off exponentially.
    pub fn on_timer(&mut self, now: SimTime) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        if let Some((&seq, _)) = self.outstanding.iter().next() {
            if !self.rtx_queue.contains(&seq) {
                self.rtx_queue.push_front(seq);
            }
            self.loss.update(1.0);
            self.stats.timeouts += 1;
            self.rto_backoff += 1;
            self.update_rate();
            self.next_send = now; // retransmit immediately
        }
        self.arm_rto(now);
    }

    /// Bytes on the wire for a data segment.
    pub fn data_wire_bytes(&self) -> usize {
        self.cfg.header_bytes + self.cfg.payload_bytes as usize
    }
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpReceiverStats {
    /// Distinct segments delivered.
    pub delivered_packets: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
}

/// The TCP-SACK receiver with delayed ACKs.
#[derive(Clone, Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    cfg: TcpConfig,
    prefix: u32,
    ooo: BTreeSet<u32>,
    unacked_data: u32,
    last_echo: SimTime,
    stats: TcpReceiverStats,
}

impl TcpReceiver {
    /// Create the receiving endpoint.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        TcpReceiver {
            flow,
            cfg,
            prefix: 0,
            ooo: BTreeSet::new(),
            unacked_data: 0,
            last_echo: SimTime::ZERO,
            stats: TcpReceiverStats::default(),
        }
    }

    /// The flow this endpoint terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TcpReceiverStats {
        self.stats
    }

    /// Cumulative delivery point.
    pub fn cum_ack(&self) -> u32 {
        self.prefix
    }

    /// Process a data segment; returns an ACK when delayed-ACK policy says
    /// to emit one (every `b` segments, or immediately on out-of-order
    /// data, the standard fast-retransmit enabler).
    pub fn on_data(&mut self, _now: SimTime, data: &TcpData) -> Option<TcpAck> {
        debug_assert_eq!(data.flow, self.flow);
        let fresh = data.seq >= self.prefix && self.ooo.insert(data.seq);
        if fresh {
            self.stats.delivered_packets += 1;
            self.stats.delivered_bytes += data.payload_len as u64;
            while self.ooo.remove(&self.prefix) {
                self.prefix += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        self.last_echo = data.sent_at;
        self.unacked_data += 1;
        let out_of_order = !self.ooo.is_empty();
        if out_of_order || self.unacked_data >= self.cfg.delayed_ack_every {
            Some(self.make_ack())
        } else {
            None
        }
    }

    fn make_ack(&mut self) -> TcpAck {
        self.unacked_data = 0;
        self.stats.acks_sent += 1;
        let sacked: Vec<u32> = self.ooo.iter().copied().collect();
        TcpAck {
            flow: self.flow,
            cum_ack: self.prefix,
            sack: compress_ranges(&sacked),
            echo: self.last_echo,
        }
    }

    /// Force an ACK out (delayed-ACK timer in real stacks; the assembly
    /// calls this periodically so a tail segment is never stranded).
    pub fn flush_ack(&mut self) -> Option<TcpAck> {
        (self.unacked_data > 0).then(|| self.make_ack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(total: u32) -> TcpSender {
        TcpSender::new(FlowId(1), total, TcpConfig::default())
    }

    fn receiver() -> TcpReceiver {
        TcpReceiver::new(FlowId(1), TcpConfig::default())
    }

    #[test]
    fn padhye_limits() {
        assert_eq!(padhye_rate_pps(0.5, 1.0, 0.0, 2.0), f64::INFINITY);
        // Rate decreases with loss.
        let r1 = padhye_rate_pps(0.5, 1.0, 0.01, 2.0);
        let r2 = padhye_rate_pps(0.5, 1.0, 0.1, 2.0);
        assert!(r1 > r2);
        // And with RTT.
        let r3 = padhye_rate_pps(1.0, 1.0, 0.01, 2.0);
        assert!(r1 > r3);
        // Sanity: p=0.01, RTT=0.5 => ~17 pps.
        assert!((10.0..30.0).contains(&r1), "r1 = {r1}");
    }

    #[test]
    fn delayed_ack_every_two() {
        let mut r = receiver();
        let d0 = TcpData {
            flow: FlowId(1),
            seq: 0,
            sent_at: SimTime::ZERO,
            payload_len: 800,
        };
        assert!(r.on_data(SimTime::ZERO, &d0).is_none(), "first: delayed");
        let d1 = TcpData { seq: 1, ..d0 };
        let ack = r.on_data(SimTime::ZERO, &d1).expect("second: ack");
        assert_eq!(ack.cum_ack, 2);
        assert!(ack.sack.is_empty());
    }

    #[test]
    fn out_of_order_acks_immediately_with_sack() {
        let mut r = receiver();
        let d = |seq| TcpData {
            flow: FlowId(1),
            seq,
            sent_at: SimTime::ZERO,
            payload_len: 800,
        };
        r.on_data(SimTime::ZERO, &d(0));
        let ack = r.on_data(SimTime::ZERO, &d(2)).expect("gap => immediate");
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(ack.sack, vec![SeqRange::single(2)]);
    }

    #[test]
    fn sender_paces_and_counts() {
        let mut s = sender(3);
        assert!(s.poll_send(SimTime::ZERO).is_some());
        assert!(s.poll_send(SimTime::ZERO).is_none(), "paced");
        assert_eq!(s.stats().fresh_sent, 1);
    }

    #[test]
    fn sack_infers_loss_and_retransmits() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        // ACK: cum 1 (seq 0 delivered), SACK 2..=4 => seq 1 lost.
        let ack = TcpAck {
            flow: FlowId(1),
            cum_ack: 1,
            sack: vec![SeqRange { start: 2, end: 4 }],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        let rtx = s.poll_send(t + SimDuration::from_secs(2)).unwrap();
        assert_eq!(rtx.seq, 1);
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn loss_collapses_rate() {
        let mut s = sender(1000);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            while s.poll_send(t).is_none() {
                t += SimDuration::from_millis(10);
            }
        }
        let r_before = {
            // Clean ACK first to establish RTT.
            let ack = TcpAck {
                flow: FlowId(1),
                cum_ack: 5,
                sack: vec![],
                echo: if t.since(SimTime::ZERO).is_zero() {
                    t
                } else {
                    SimTime::ZERO
                },
            };
            s.on_ack(t, &ack);
            s.rate()
        };
        // Lossy ACK: big SACK hole.
        let ack = TcpAck {
            flow: FlowId(1),
            cum_ack: 5,
            sack: vec![SeqRange { start: 15, end: 19 }],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert!(s.rate() < r_before, "{} !< {r_before}", s.rate());
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut s = sender(5);
        let t0 = SimTime::ZERO;
        s.poll_send(t0).unwrap();
        let deadline = s.next_wakeup().unwrap();
        // Not due yet.
        s.on_timer(t0);
        assert_eq!(s.stats().timeouts, 0);
        // Fire well past the deadline.
        let late = deadline + SimDuration::from_secs(1);
        s.on_timer(late);
        assert_eq!(s.stats().timeouts, 1);
        // Retransmission of seq 0 queued.
        let rtx = s.poll_send(late).unwrap();
        assert_eq!(rtx.seq, 0);
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn completes_on_full_cum_ack() {
        let mut s = sender(2);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        let ack = TcpAck {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert!(s.is_complete());
        assert!(s.poll_send(t + SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn receiver_flush_emits_pending_ack() {
        let mut r = receiver();
        let d0 = TcpData {
            flow: FlowId(1),
            seq: 0,
            sent_at: SimTime::ZERO,
            payload_len: 800,
        };
        assert!(r.on_data(SimTime::ZERO, &d0).is_none());
        let ack = r.flush_ack().expect("pending delayed ack");
        assert_eq!(ack.cum_ack, 1);
        assert!(r.flush_ack().is_none(), "nothing further pending");
    }

    #[test]
    fn rtt_estimation_from_echo() {
        let mut s = sender(10);
        let t0 = SimTime::ZERO;
        s.poll_send(t0);
        let ack = TcpAck {
            flow: FlowId(1),
            cum_ack: 1,
            sack: vec![],
            echo: t0,
        };
        s.on_ack(SimTime::from_millis(800), &ack);
        assert!((s.srtt_s - 0.8).abs() < 1e-9);
    }
}
