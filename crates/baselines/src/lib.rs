//! # jtp-baselines — comparison transport protocols
//!
//! The two representatives the paper evaluates JTP against (§6.1):
//!
//! * [`tcp`] — **TCP-SACK, rate-based flavour**: *"the rate of each flow is
//!   set by the well-known throughput equation of TCP \[Padhye et al.\]
//!   … we used delayed ACKs (one ACK every two packets) … The SACK version
//!   helps TCP selectively retransmit lost packets only."* Window-induced
//!   burstiness is removed (TCP-pacing-style), exactly as the paper does to
//!   make the comparison more competitive.
//! * [`atp`] — **ATP-like explicit-rate transport**: *"adjusts the sending
//!   rate based on explicit feedback collected by intermediate nodes,
//!   supports only end-to-end recovery, and has constant-rate feedback
//!   from the receiver. The feedback period is set to be larger than RTT."*
//!
//! Beyond the paper's 2007-era pair, two modern opponents give JTP a
//! contemporary comparison set:
//!
//! * [`cubic`] — **CUBIC (RFC 8312)**: the default loss-based controller
//!   of Linux/Windows; window curve `W(t) = C·(t−K)³ + W_max` with fast
//!   convergence and the TCP-friendly region, paced at `cwnd/srtt`.
//! * [`bbr`] — **BBR (model-based)**: windowed max-bandwidth / min-RTT
//!   path model, Startup→Drain→ProbeBw pacing-gain cycling, inflight
//!   capped at `cwnd_gain × BDP`; loss does not modulate the rate.
//!
//! All four support only 100 %-reliability transfers (0 % loss
//! tolerance), so the cross-protocol experiments use bulk transfers with
//! full reliability, as in the paper. None uses in-network caching or
//! per-packet MAC budgets — intermediate nodes simply forward, with the
//! MAC's default attempt cap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atp;
pub mod bbr;
pub mod cubic;
pub mod tcp;

pub use atp::{AtpConfig, AtpFeedback, AtpReceiver, AtpSender};
pub use bbr::{BbrAck, BbrConfig, BbrData, BbrPhase, BbrReceiver, BbrSender};
pub use cubic::{CubicAck, CubicConfig, CubicData, CubicReceiver, CubicSender};
pub use tcp::{TcpAck, TcpConfig, TcpReceiver, TcpSender};
