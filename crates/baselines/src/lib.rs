//! # jtp-baselines — comparison transport protocols
//!
//! The two representatives the paper evaluates JTP against (§6.1):
//!
//! * [`tcp`] — **TCP-SACK, rate-based flavour**: *"the rate of each flow is
//!   set by the well-known throughput equation of TCP \[Padhye et al.\]
//!   … we used delayed ACKs (one ACK every two packets) … The SACK version
//!   helps TCP selectively retransmit lost packets only."* Window-induced
//!   burstiness is removed (TCP-pacing-style), exactly as the paper does to
//!   make the comparison more competitive.
//! * [`atp`] — **ATP-like explicit-rate transport**: *"adjusts the sending
//!   rate based on explicit feedback collected by intermediate nodes,
//!   supports only end-to-end recovery, and has constant-rate feedback
//!   from the receiver. The feedback period is set to be larger than RTT."*
//!
//! Both support only 100 %-reliability transfers (0 % loss tolerance), so
//! the cross-protocol experiments use bulk transfers with full reliability,
//! as in the paper. Neither uses in-network caching or per-packet MAC
//! budgets — intermediate nodes simply forward, with the MAC's default
//! attempt cap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atp;
pub mod tcp;

pub use atp::{AtpConfig, AtpFeedback, AtpReceiver, AtpSender};
pub use tcp::{TcpAck, TcpConfig, TcpReceiver, TcpSender};
