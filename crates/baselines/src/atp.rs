//! ATP-like explicit-rate transport.
//!
//! Modelled on ATP (Sundaresan et al., MobiHoc 2003) as the paper's
//! representative of explicit rate-based transports: intermediate nodes
//! stamp the bottleneck rate into data headers; the receiver averages the
//! stamps and feeds the result back **at a constant rate** whose period
//! exceeds the RTT; recovery is **end-to-end only** (SACK-style holes in
//! the feedback, retransmitted from the source). The two deliberate
//! differences from JTP — constant-rate feedback and no in-network caching
//! — are exactly the costs the paper's comparison isolates.

use jtp::packet::{compress_ranges, SeqRange};
use jtp_sim::stats::Ewma;
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// ATP configuration.
#[derive(Clone, Debug)]
pub struct AtpConfig {
    /// Application payload bytes per packet.
    pub payload_bytes: u16,
    /// Data header bytes (ATP rate field + transport header).
    pub header_bytes: usize,
    /// Feedback packet bytes.
    pub feedback_bytes: usize,
    /// Constant feedback period (must exceed the RTT; the assembly sets it
    /// from the topology).
    pub feedback_period: SimDuration,
    /// Rate bounds (pps).
    pub min_rate_pps: f64,
    /// Upper rate bound.
    pub max_rate_pps: f64,
    /// EWMA weight for the receiver's rate aggregation.
    pub rate_alpha: f64,
    /// Fraction of a rate increase applied per epoch (ATP increases
    /// conservatively toward the advertised rate).
    pub increase_fraction: f64,
    /// Utilisation margin on the advertised rate (< 1): ATP's
    /// delay-derived rate targets less than full saturation.
    pub utilization: f64,
}

impl Default for AtpConfig {
    fn default() -> Self {
        AtpConfig {
            payload_bytes: 800,
            header_bytes: 32,
            feedback_bytes: 64,
            feedback_period: SimDuration::from_secs(3),
            min_rate_pps: 0.1,
            max_rate_pps: 50.0,
            rate_alpha: 0.3,
            increase_fraction: 0.3,
            utilization: 0.8,
        }
    }
}

/// An ATP data packet.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AtpData {
    /// Flow id.
    pub flow: FlowId,
    /// Sequence number.
    pub seq: u32,
    /// Bottleneck rate stamped by intermediate nodes (pps); starts at
    /// `f32::MAX` and is min-stamped along the path.
    pub stamped_rate: f32,
    /// Payload bytes.
    pub payload_len: u16,
}

/// ATP receiver feedback.
#[derive(Clone, PartialEq, Debug)]
pub struct AtpFeedback {
    /// Flow id.
    pub flow: FlowId,
    /// Cumulative delivery point.
    pub cum_ack: u32,
    /// Missing sequences (end-to-end SACK holes).
    pub sack: Vec<SeqRange>,
    /// Advertised sending rate (pps): the aggregated path bottleneck.
    pub rate_pps: f32,
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtpSenderStats {
    /// First transmissions.
    pub fresh_sent: u64,
    /// End-to-end retransmissions.
    pub retransmissions: u64,
    /// Feedback packets processed.
    pub feedbacks_received: u64,
    /// Silent-feedback rate halvings.
    pub timeout_backoffs: u64,
}

/// The ATP source endpoint.
#[derive(Clone, Debug)]
pub struct AtpSender {
    flow: FlowId,
    cfg: AtpConfig,
    total: u32,
    next_seq: u32,
    cum_ack: u32,
    outstanding: BTreeMap<u32, ()>,
    rtx_queue: VecDeque<u32>,
    rate_pps: f64,
    next_send: SimTime,
    feedback_deadline: SimTime,
    stats: AtpSenderStats,
}

impl AtpSender {
    /// Create a source transferring `total` packets.
    pub fn new(flow: FlowId, total: u32, cfg: AtpConfig) -> Self {
        let deadline = SimTime::ZERO + cfg.feedback_period * 3;
        AtpSender {
            flow,
            total,
            next_seq: 0,
            cum_ack: 0,
            outstanding: BTreeMap::new(),
            rtx_queue: VecDeque::new(),
            rate_pps: 1.0,
            next_send: SimTime::ZERO,
            feedback_deadline: deadline,
            stats: AtpSenderStats::default(),
            cfg,
        }
    }

    /// The flow this sender feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// All packets cumulatively acknowledged?
    pub fn is_complete(&self) -> bool {
        self.cum_ack >= self.total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AtpSenderStats {
        self.stats
    }

    fn has_backlog(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.total
    }

    /// Emit at most one packet if pacing allows.
    pub fn poll_send(&mut self, now: SimTime) -> Option<AtpData> {
        if now < self.next_send || !self.has_backlog() {
            return None;
        }
        let gap = SimDuration::from_secs_f64(1.0 / self.rate_pps.max(self.cfg.min_rate_pps));
        let seq = loop {
            match self.rtx_queue.pop_front() {
                Some(s) if s >= self.cum_ack => {
                    self.stats.retransmissions += 1;
                    break Some(s);
                }
                Some(_) => continue,
                None => break None,
            }
        }
        .or_else(|| {
            (self.next_seq < self.total).then(|| {
                let s = self.next_seq;
                self.next_seq += 1;
                self.stats.fresh_sent += 1;
                s
            })
        })?;
        self.outstanding.insert(seq, ());
        self.next_send = now + gap;
        Some(AtpData {
            flow: self.flow,
            seq,
            stamped_rate: f32::MAX,
            payload_len: self.cfg.payload_bytes,
        })
    }

    /// Next instant the sender needs attention.
    pub fn next_wakeup(&self) -> SimTime {
        if self.has_backlog() {
            self.next_send.min(self.feedback_deadline)
        } else {
            self.feedback_deadline
        }
    }

    /// Process receiver feedback: adopt the advertised rate (conservative
    /// increase, immediate decrease — ATP's rule) and queue SACK holes.
    pub fn on_feedback(&mut self, now: SimTime, fb: &AtpFeedback) {
        debug_assert_eq!(fb.flow, self.flow);
        self.stats.feedbacks_received += 1;
        let advertised = (fb.rate_pps as f64).clamp(self.cfg.min_rate_pps, self.cfg.max_rate_pps);
        if advertised >= self.rate_pps {
            self.rate_pps += (advertised - self.rate_pps) * self.cfg.increase_fraction;
        } else {
            self.rate_pps = advertised;
        }
        if fb.cum_ack > self.cum_ack {
            self.cum_ack = fb.cum_ack;
            let freed: Vec<u32> = self
                .outstanding
                .range(..fb.cum_ack)
                .map(|(&s, _)| s)
                .collect();
            for s in freed {
                self.outstanding.remove(&s);
            }
        }
        for s in fb.sack.iter().flat_map(|r| r.iter()) {
            if s >= self.cum_ack && !self.rtx_queue.contains(&s) {
                self.rtx_queue.push_back(s);
            }
        }
        self.feedback_deadline = now + self.cfg.feedback_period * 3;
    }

    /// Silent feedback channel: halve the rate (ATP epochs without
    /// feedback imply the path or the reverse path degraded).
    pub fn on_timer(&mut self, now: SimTime) {
        if now < self.feedback_deadline {
            return;
        }
        self.rate_pps = (self.rate_pps * 0.5).max(self.cfg.min_rate_pps);
        self.stats.timeout_backoffs += 1;
        self.feedback_deadline = now + self.cfg.feedback_period * 3;
    }
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtpReceiverStats {
    /// Distinct packets delivered.
    pub delivered_packets: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Feedback packets emitted.
    pub feedbacks_sent: u64,
}

/// The ATP destination endpoint: constant-rate feedback.
#[derive(Clone, Debug)]
pub struct AtpReceiver {
    flow: FlowId,
    cfg: AtpConfig,
    prefix: u32,
    ooo: BTreeSet<u32>,
    highest_seen: Option<u32>,
    /// Gaps observed at the previous feedback: a gap is only SNACKed once
    /// it persists across two feedback rounds, so packets merely in flight
    /// are not retransmitted spuriously.
    missing_prev: BTreeSet<u32>,
    rate_estimate: Ewma,
    last_feedback: SimTime,
    /// Deliveries since the previous feedback (achieved-rate estimate).
    delivered_since_feedback: u64,
    stats: AtpReceiverStats,
}

impl AtpReceiver {
    /// Create the receiving endpoint.
    pub fn new(flow: FlowId, cfg: AtpConfig) -> Self {
        AtpReceiver {
            flow,
            rate_estimate: Ewma::new(cfg.rate_alpha),
            cfg,
            prefix: 0,
            ooo: BTreeSet::new(),
            highest_seen: None,
            missing_prev: BTreeSet::new(),
            last_feedback: SimTime::ZERO,
            delivered_since_feedback: 0,
            stats: AtpReceiverStats::default(),
        }
    }

    /// The flow this endpoint terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AtpReceiverStats {
        self.stats
    }

    /// Cumulative delivery point.
    pub fn cum_ack(&self) -> u32 {
        self.prefix
    }

    /// Process a data packet (records the stamped bottleneck rate).
    pub fn on_data(&mut self, _now: SimTime, data: &AtpData) {
        debug_assert_eq!(data.flow, self.flow);
        self.highest_seen = Some(self.highest_seen.map_or(data.seq, |h| h.max(data.seq)));
        let fresh = data.seq >= self.prefix && self.ooo.insert(data.seq);
        if fresh {
            self.stats.delivered_packets += 1;
            self.stats.delivered_bytes += data.payload_len as u64;
            self.delivered_since_feedback += 1;
            while self.ooo.remove(&self.prefix) {
                self.prefix += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        if data.stamped_rate.is_finite() {
            self.rate_estimate.update(data.stamped_rate as f64);
        }
    }

    /// The constant-rate feedback timer fired: build the feedback packet.
    /// A gap is reported only after persisting across two feedback rounds
    /// (anything younger may simply still be in flight — the feedback
    /// period exceeds the RTT by design).
    pub fn poll_feedback(&mut self, now: SimTime) -> AtpFeedback {
        let elapsed_since_prev = now.since(self.last_feedback).as_secs_f64();
        self.last_feedback = now;
        self.stats.feedbacks_sent += 1;
        let gaps: BTreeSet<u32> = match self.highest_seen {
            Some(high) => (self.prefix..=high)
                .filter(|s| !self.ooo.contains(s))
                .collect(),
            None => BTreeSet::new(),
        };
        let confirmed: Vec<u32> = gaps.intersection(&self.missing_prev).copied().collect();
        self.missing_prev = gaps;
        // ATP's advertised rate approximates the *achievable* rate: what
        // the path delivered this epoch plus the stamped residual
        // headroom (real ATP derives this from per-hop delays; residual
        // idle capacity is our TDMA equivalent).
        let achieved = if elapsed_since_prev > 0.0 {
            self.delivered_since_feedback as f64 / elapsed_since_prev
        } else {
            0.0
        };
        self.delivered_since_feedback = 0;
        let residual = self.rate_estimate.get_or(self.cfg.max_rate_pps);
        let advertised = ((achieved + residual) * self.cfg.utilization).min(self.cfg.max_rate_pps);
        AtpFeedback {
            flow: self.flow,
            cum_ack: self.prefix,
            sack: compress_ranges(&confirmed),
            rate_pps: advertised as f32,
        }
    }

    /// Next regular feedback instant.
    pub fn next_feedback_at(&self) -> SimTime {
        self.last_feedback + self.cfg.feedback_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AtpConfig {
        AtpConfig::default()
    }

    fn data(seq: u32, rate: f32) -> AtpData {
        AtpData {
            flow: FlowId(1),
            seq,
            stamped_rate: rate,
            payload_len: 800,
        }
    }

    #[test]
    fn sender_paces_fresh_data() {
        let mut s = AtpSender::new(FlowId(1), 5, cfg());
        assert_eq!(s.poll_send(SimTime::ZERO).unwrap().seq, 0);
        assert!(s.poll_send(SimTime::ZERO).is_none());
        assert_eq!(s.stats().fresh_sent, 1);
    }

    #[test]
    fn stamped_rate_starts_unbounded() {
        let mut s = AtpSender::new(FlowId(1), 1, cfg());
        let d = s.poll_send(SimTime::ZERO).unwrap();
        assert_eq!(d.stamped_rate, f32::MAX);
    }

    #[test]
    fn receiver_advertises_achieved_plus_residual() {
        let mut r = AtpReceiver::new(FlowId(1), cfg());
        // 20 packets over 10 s (2 pps achieved), residual stamp 4 pps.
        for s in 0..20u32 {
            r.on_data(SimTime::from_secs_f64(s as f64 * 0.5), &data(s, 4.0));
        }
        let fb = r.poll_feedback(SimTime::from_secs_f64(10.0));
        // (achieved 20/10 = 2 + residual EWMA ~4) x 0.8 utilisation ≈ 4.8.
        assert!(
            (fb.rate_pps - 4.8).abs() < 1.0,
            "advertised {} != (achieved+residual)*utilization",
            fb.rate_pps
        );
        assert_eq!(fb.cum_ack, 20);
        assert!(fb.sack.is_empty());
    }

    #[test]
    fn feedback_reports_gaps_after_confirmation() {
        let mut r = AtpReceiver::new(FlowId(1), cfg());
        for s in [0u32, 1, 3, 6] {
            r.on_data(SimTime::ZERO, &data(s, 4.0));
        }
        // First round: the gaps might still be in flight — not reported.
        let fb = r.poll_feedback(SimTime::from_secs_f64(3.0));
        assert_eq!(fb.cum_ack, 2);
        assert!(fb.sack.is_empty(), "unconfirmed gaps must not be SNACKed");
        // Second round: the same gaps persist — now reported.
        let fb = r.poll_feedback(SimTime::from_secs_f64(6.0));
        assert_eq!(
            fb.sack,
            vec![SeqRange::single(2), SeqRange { start: 4, end: 5 }]
        );
    }

    #[test]
    fn gap_filled_between_rounds_is_never_snacked() {
        let mut r = AtpReceiver::new(FlowId(1), cfg());
        r.on_data(SimTime::ZERO, &data(0, 4.0));
        r.on_data(SimTime::ZERO, &data(2, 4.0));
        r.poll_feedback(SimTime::from_secs_f64(3.0));
        // Seq 1 arrives late, before the second feedback.
        r.on_data(SimTime::from_secs_f64(4.0), &data(1, 4.0));
        let fb = r.poll_feedback(SimTime::from_secs_f64(6.0));
        assert!(fb.sack.is_empty());
        assert_eq!(fb.cum_ack, 3);
    }

    #[test]
    fn sender_adopts_rate_conservatively_up_immediately_down() {
        let mut s = AtpSender::new(FlowId(1), 100, cfg());
        let up = AtpFeedback {
            flow: FlowId(1),
            cum_ack: 0,
            sack: vec![],
            rate_pps: 9.0,
        };
        s.on_feedback(SimTime::ZERO, &up);
        // 1.0 + (9-1)*0.3 = 3.4
        assert!((s.rate() - 3.4).abs() < 1e-9);
        let down = AtpFeedback {
            rate_pps: 2.0,
            ..up.clone()
        };
        s.on_feedback(SimTime::ZERO, &down);
        assert!((s.rate() - 2.0).abs() < 1e-9, "decrease is immediate");
    }

    #[test]
    fn sack_holes_retransmitted_end_to_end() {
        let mut s = AtpSender::new(FlowId(1), 5, cfg());
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        let fb = AtpFeedback {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![SeqRange::single(3)],
            rate_pps: 2.0,
        };
        s.on_feedback(t, &fb);
        let rtx = s.poll_send(t + SimDuration::from_secs(1)).unwrap();
        assert_eq!(rtx.seq, 3);
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn silent_feedback_halves_rate() {
        let mut s = AtpSender::new(FlowId(1), 100, cfg());
        let fb = AtpFeedback {
            flow: FlowId(1),
            cum_ack: 0,
            sack: vec![],
            rate_pps: 8.0,
        };
        s.on_feedback(SimTime::ZERO, &fb);
        let r = s.rate();
        // Deadline = 3 * 3 s after the feedback.
        s.on_timer(SimTime::from_secs_f64(5.0));
        assert_eq!(s.rate(), r, "not due yet");
        s.on_timer(SimTime::from_secs_f64(10.0));
        assert!((s.rate() - r * 0.5).abs() < 1e-9);
        assert_eq!(s.stats().timeout_backoffs, 1);
    }

    #[test]
    fn completion() {
        let mut s = AtpSender::new(FlowId(1), 2, cfg());
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(2);
        }
        let fb = AtpFeedback {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            rate_pps: 2.0,
        };
        s.on_feedback(t, &fb);
        assert!(s.is_complete());
    }

    #[test]
    fn duplicate_data_counted() {
        let mut r = AtpReceiver::new(FlowId(1), cfg());
        r.on_data(SimTime::ZERO, &data(0, 4.0));
        r.on_data(SimTime::ZERO, &data(0, 4.0));
        assert_eq!(r.stats().delivered_packets, 1);
        assert_eq!(r.stats().duplicates, 1);
    }

    #[test]
    fn feedback_schedule_is_constant_rate() {
        let mut r = AtpReceiver::new(FlowId(1), cfg());
        r.poll_feedback(SimTime::from_secs_f64(3.0));
        assert_eq!(r.next_feedback_at(), SimTime::from_secs_f64(6.0));
    }
}
