//! Model-based BBR (bottleneck bandwidth and round-trip propagation time).
//!
//! Instead of reacting to loss, BBR builds an explicit path model from two
//! windowed filters — the max delivery rate over the last ~10 rounds
//! (`BtlBw`) and the min RTT over the last ~10 seconds (`RTprop`) — and
//! paces at `pacing_gain × BtlBw` while capping inflight at
//! `cwnd_gain × BDP`. The controller walks a fixed phase machine:
//!
//! ```text
//! Startup  (gain 2/ln2 ≈ 2.885)  — double the rate each round until the
//!                                  bandwidth filter stops growing ≥25%
//!                                  for 3 consecutive rounds
//! Drain    (gain 1/2.885)        — bleed the startup queue until
//!                                  inflight ≤ BDP
//! ProbeBw  (cycle 1.25, 0.75,    — steady state: probe for more
//!           1, 1, 1, 1, 1, 1)      bandwidth, then drain, then cruise;
//!                                  one gain per RTprop interval
//! ```
//!
//! Deliberate omissions (documented, not bugs): no ProbeRTT phase (the
//! simulator's paced flows never build standing queues large enough to
//! mask RTprop for 10 s), no randomized ProbeBw entry offset (the cycle
//! always starts at the probe gain — determinism beats phase
//! desynchronization here), and loss does not modulate the rate at all —
//! reliability rides the same SACK scoreboard + RTO as `tcp.rs`, but the
//! path model alone sets the pace.

use jtp::packet::{compress_ranges, SeqRange};
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Startup/Drain gain: 2/ln(2).
pub const STARTUP_GAIN: f64 = 2.885;
/// ProbeBw pacing-gain cycle, one entry per RTprop interval.
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// BBR baseline configuration.
#[derive(Clone, Debug)]
pub struct BbrConfig {
    /// Application payload bytes per segment (matching JTP's 800).
    pub payload_bytes: u16,
    /// IP+TCP header bytes on data segments.
    pub header_bytes: usize,
    /// Bytes of a pure ACK (IP+TCP+SACK option).
    pub ack_bytes: usize,
    /// Delayed-ACK factor `b` (one ACK per `b` segments).
    pub delayed_ack_every: u32,
    /// Rate bounds (pps).
    pub min_rate_pps: f64,
    /// Upper rate bound; set to the path capacity by the assembly.
    pub max_rate_pps: f64,
    /// Initial RTT estimate before any sample.
    pub initial_rtt: SimDuration,
    /// Minimum retransmission timeout.
    pub rto_min: SimDuration,
    /// Inflight cap as a multiple of the estimated BDP.
    pub cwnd_gain: f64,
    /// Bandwidth-filter window in rounds.
    pub bw_window_rounds: u64,
    /// RTprop filter window.
    pub rtt_window: SimDuration,
    /// Startup exits after this many rounds without ≥25% bandwidth growth.
    pub startup_full_bw_rounds: u32,
    /// Minimum inflight cap in packets.
    pub min_cwnd: f64,
}

impl Default for BbrConfig {
    fn default() -> Self {
        BbrConfig {
            payload_bytes: 800,
            header_bytes: 40,
            ack_bytes: 52,
            delayed_ack_every: 2,
            min_rate_pps: 0.1,
            max_rate_pps: 50.0,
            initial_rtt: SimDuration::from_millis(500),
            rto_min: SimDuration::from_secs(1),
            cwnd_gain: 2.0,
            bw_window_rounds: 10,
            rtt_window: SimDuration::from_secs(10),
            startup_full_bw_rounds: 3,
            min_cwnd: 4.0,
        }
    }
}

/// The BBR phase machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BbrPhase {
    /// Exponential rate search.
    Startup,
    /// Bleed the startup queue.
    Drain,
    /// Steady-state gain cycling.
    ProbeBw,
}

/// A BBR data segment (simulation representation).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BbrData {
    /// Flow id.
    pub flow: FlowId,
    /// Segment sequence number (packet-granularity).
    pub seq: u32,
    /// Timestamp option: when the segment left the sender.
    pub sent_at: SimTime,
    /// Payload bytes.
    pub payload_len: u16,
}

/// A BBR acknowledgment with SACK blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct BbrAck {
    /// Flow id.
    pub flow: FlowId,
    /// Cumulative ACK: everything below is delivered.
    pub cum_ack: u32,
    /// SACK blocks above the cumulative ACK.
    pub sack: Vec<SeqRange>,
    /// Echoed timestamp of the newest data that triggered this ACK.
    pub echo: SimTime,
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BbrSenderStats {
    /// First transmissions.
    pub fresh_sent: u64,
    /// Retransmissions (SACK-inferred + RTO).
    pub retransmissions: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// ACKs processed.
    pub acks_received: u64,
    /// Completed sender rounds.
    pub rounds: u64,
}

/// Per-segment bookkeeping for delivery-rate sampling.
#[derive(Clone, Copy, Debug)]
struct SentState {
    sent_at: SimTime,
    delivered_at_send: u64,
}

/// The model-based BBR source.
#[derive(Clone, Debug)]
pub struct BbrSender {
    flow: FlowId,
    cfg: BbrConfig,
    total: u32,
    next_seq: u32,
    cum_ack: u32,
    outstanding: BTreeMap<u32, SentState>,
    sacked: BTreeSet<u32>,
    rtx_queue: VecDeque<u32>,
    // --- path model ---
    /// Total packets known delivered (cum + SACK).
    delivered: u64,
    /// (round, bw_pps) samples for the windowed-max bandwidth filter.
    bw_samples: VecDeque<(u64, f64)>,
    min_rtt_s: f64,
    min_rtt_stamp: SimTime,
    have_rtt: bool,
    // --- rounds ---
    round: u64,
    round_end_seq: u32,
    // --- phase machine ---
    phase: BbrPhase,
    pacing_gain: f64,
    full_bw: f64,
    full_bw_rounds: u32,
    cycle_index: usize,
    cycle_stamp: SimTime,
    rate_pps: f64,
    next_send: SimTime,
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    stats: BbrSenderStats,
}

impl BbrSender {
    /// Create a source transferring `total` segments.
    pub fn new(flow: FlowId, total: u32, cfg: BbrConfig) -> Self {
        let rtt = cfg.initial_rtt.as_secs_f64();
        let mut s = BbrSender {
            flow,
            total,
            next_seq: 0,
            cum_ack: 0,
            outstanding: BTreeMap::new(),
            sacked: BTreeSet::new(),
            rtx_queue: VecDeque::new(),
            delivered: 0,
            bw_samples: VecDeque::new(),
            min_rtt_s: rtt,
            min_rtt_stamp: SimTime::ZERO,
            have_rtt: false,
            round: 0,
            round_end_seq: 0,
            phase: BbrPhase::Startup,
            pacing_gain: STARTUP_GAIN,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            rate_pps: 1.0,
            next_send: SimTime::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            stats: BbrSenderStats::default(),
            cfg,
        };
        s.update_rate();
        s
    }

    /// The flow this sender feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current paced rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// Current phase.
    pub fn phase(&self) -> BbrPhase {
        self.phase
    }

    /// Current pacing gain.
    pub fn pacing_gain(&self) -> f64 {
        self.pacing_gain
    }

    /// Windowed-max bottleneck bandwidth estimate (pps); 0 before samples.
    pub fn max_bw_pps(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    }

    /// Windowed-min round-trip estimate (RTprop) in seconds.
    pub fn min_rtt_s(&self) -> f64 {
        self.min_rtt_s
    }

    /// Bandwidth-delay product of the current model, in packets.
    pub fn bdp_packets(&self) -> f64 {
        self.max_bw_pps() * self.min_rtt_s
    }

    /// Inflight cap in packets: `cwnd_gain × BDP`, floored.
    pub fn cwnd_packets(&self) -> f64 {
        (self.cfg.cwnd_gain * self.bdp_packets()).max(self.cfg.min_cwnd)
    }

    /// Packets currently outstanding and not SACKed.
    pub fn inflight(&self) -> u64 {
        self.outstanding
            .keys()
            .filter(|s| !self.sacked.contains(s))
            .count() as u64
    }

    /// Everything delivered?
    pub fn is_complete(&self) -> bool {
        self.cum_ack >= self.total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BbrSenderStats {
        self.stats
    }

    fn rto(&self) -> SimDuration {
        let base = 2.0 * self.min_rtt_s;
        let backed = base * (1u64 << self.rto_backoff.min(6)) as f64;
        SimDuration::from_secs_f64(backed).max(self.cfg.rto_min)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = if self.outstanding.is_empty() {
            None
        } else {
            Some(now + self.rto())
        };
    }

    fn has_backlog(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.total
    }

    /// Emit at most one segment if pacing allows and inflight is under the
    /// cap. Retransmissions bypass the inflight cap — they replace
    /// presumed-lost packets already counted against it.
    pub fn poll_send(&mut self, now: SimTime) -> Option<BbrData> {
        if now < self.next_send || !self.has_backlog() {
            return None;
        }
        let gap = SimDuration::from_secs_f64(1.0 / self.rate_pps.max(self.cfg.min_rate_pps));
        let seq = loop {
            match self.rtx_queue.pop_front() {
                Some(s) if s >= self.cum_ack && !self.sacked.contains(&s) => {
                    self.stats.retransmissions += 1;
                    break Some(s);
                }
                Some(_) => continue, // stale entry
                None => break None,
            }
        }
        .or_else(|| {
            if self.next_seq < self.total && (self.inflight() as f64) < self.cwnd_packets() {
                let s = self.next_seq;
                self.next_seq += 1;
                self.stats.fresh_sent += 1;
                Some(s)
            } else {
                None
            }
        })?;
        self.outstanding.insert(
            seq,
            SentState {
                sent_at: now,
                delivered_at_send: self.delivered,
            },
        );
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        self.next_send = now + gap;
        Some(BbrData {
            flow: self.flow,
            seq,
            sent_at: now,
            payload_len: self.cfg.payload_bytes,
        })
    }

    /// Next instant the sender wants attention. When the inflight cap (not
    /// pacing) is the binding constraint, the ACK that frees a slot drives
    /// progress; the RTO deadline is the backstop so a fully lost window
    /// can never stall the flow.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let pacing = self.has_backlog().then_some(self.next_send);
        match (pacing, self.rto_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn record_bw_sample(&mut self, bw_pps: f64) {
        self.bw_samples.push_back((self.round, bw_pps));
        let horizon = self.round.saturating_sub(self.cfg.bw_window_rounds);
        while let Some(&(r, _)) = self.bw_samples.front() {
            if r < horizon {
                self.bw_samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn advance_phase(&mut self, now: SimTime) {
        match self.phase {
            BbrPhase::Startup => {
                // Exit once the bw filter has been flat for N rounds.
                if self.full_bw_rounds >= self.cfg.startup_full_bw_rounds {
                    self.phase = BbrPhase::Drain;
                    self.pacing_gain = 1.0 / STARTUP_GAIN;
                }
            }
            BbrPhase::Drain => {
                if (self.inflight() as f64) <= self.bdp_packets().max(self.cfg.min_cwnd) {
                    self.phase = BbrPhase::ProbeBw;
                    self.cycle_index = 0;
                    self.cycle_stamp = now;
                    self.pacing_gain = PROBE_BW_GAINS[0];
                }
            }
            BbrPhase::ProbeBw => {
                if now.since(self.cycle_stamp).as_secs_f64() >= self.min_rtt_s {
                    self.cycle_index = (self.cycle_index + 1) % PROBE_BW_GAINS.len();
                    self.cycle_stamp = now;
                    self.pacing_gain = PROBE_BW_GAINS[self.cycle_index];
                }
            }
        }
    }

    fn on_round_end(&mut self) {
        self.round += 1;
        self.stats.rounds += 1;
        self.round_end_seq = self.next_seq;
        if self.phase == BbrPhase::Startup {
            let bw = self.max_bw_pps();
            if bw >= self.full_bw * 1.25 {
                self.full_bw = bw;
                self.full_bw_rounds = 0;
            } else {
                self.full_bw_rounds += 1;
            }
        }
    }

    /// Process an acknowledgment.
    pub fn on_ack(&mut self, now: SimTime, ack: &BbrAck) {
        debug_assert_eq!(ack.flow, self.flow);
        self.stats.acks_received += 1;

        // RTprop filter: expire the window, then take the new sample.
        let sample = now.since(ack.echo).as_secs_f64();
        if sample > 0.0 {
            let expired = now.since(self.min_rtt_stamp) > self.cfg.rtt_window;
            if !self.have_rtt || expired || sample < self.min_rtt_s {
                self.min_rtt_s = sample;
                self.min_rtt_stamp = now;
                self.have_rtt = true;
            }
        }

        // Free newly delivered segments, taking one delivery-rate sample
        // per freed segment: packets delivered since it was sent over the
        // time since it was sent.
        let mut freed: Vec<(u32, SentState)> = Vec::new();
        if ack.cum_ack > self.cum_ack {
            for (&s, &st) in self.outstanding.range(..ack.cum_ack) {
                freed.push((s, st));
            }
            for &(s, _) in &freed {
                self.outstanding.remove(&s);
            }
            self.sacked = self.sacked.split_off(&ack.cum_ack);
            self.cum_ack = ack.cum_ack;
            self.rto_backoff = 0;
        }
        let mut highest_sacked = None;
        for r in &ack.sack {
            for s in r.iter() {
                if s >= self.cum_ack && self.sacked.insert(s) {
                    if let Some(&st) = self.outstanding.get(&s) {
                        freed.push((s, st));
                    }
                }
                highest_sacked = Some(highest_sacked.map_or(s, |h: u32| h.max(s)));
            }
        }
        self.delivered += freed.len() as u64;
        for &(_, st) in &freed {
            let dt = now.since(st.sent_at).as_secs_f64();
            if dt > 0.0 {
                let bw = (self.delivered - st.delivered_at_send) as f64 / dt;
                self.record_bw_sample(bw);
            }
        }
        if ack.cum_ack > self.round_end_seq || self.cum_ack >= self.total {
            self.on_round_end();
        }

        // SACK loss inference with DUPTHRESH (RFC 6675), as in `tcp.rs` —
        // queues the retransmission but leaves the path model untouched.
        const DUPTHRESH: usize = 3;
        if highest_sacked.is_some() {
            let lost: Vec<u32> = self
                .outstanding
                .keys()
                .copied()
                .filter(|s| {
                    !self.sacked.contains(s) && self.sacked.range((s + 1)..).count() >= DUPTHRESH
                })
                .collect();
            for s in lost {
                if !self.rtx_queue.contains(&s) {
                    self.rtx_queue.push_back(s);
                }
            }
        }

        self.advance_phase(now);
        self.update_rate();
        self.arm_rto(now);
    }

    fn update_rate(&mut self) {
        let bw = self.max_bw_pps();
        let r = if bw > 0.0 {
            self.pacing_gain * bw
        } else {
            // No model yet: pace the initial window over the initial RTT.
            self.pacing_gain * self.cfg.min_cwnd / self.min_rtt_s.max(1e-3)
        };
        self.rate_pps = r.clamp(self.cfg.min_rate_pps, self.cfg.max_rate_pps);
    }

    /// Fire the retransmission timer if due: earliest outstanding segment
    /// is queued for retransmission with exponential back-off. The path
    /// model is kept — BBR does not infer congestion from loss.
    pub fn on_timer(&mut self, now: SimTime) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        if let Some((&seq, _)) = self.outstanding.iter().next() {
            if !self.rtx_queue.contains(&seq) {
                self.rtx_queue.push_front(seq);
            }
            self.stats.timeouts += 1;
            self.rto_backoff += 1;
            self.next_send = now; // retransmit immediately
        }
        self.arm_rto(now);
    }

    /// Bytes on the wire for a data segment.
    pub fn data_wire_bytes(&self) -> usize {
        self.cfg.header_bytes + self.cfg.payload_bytes as usize
    }
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BbrReceiverStats {
    /// Distinct segments delivered.
    pub delivered_packets: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
}

/// The BBR receiver: delayed ACKs, immediate SACK on reordering — the
/// same contract as the TCP-SACK receiver.
#[derive(Clone, Debug)]
pub struct BbrReceiver {
    flow: FlowId,
    cfg: BbrConfig,
    prefix: u32,
    ooo: BTreeSet<u32>,
    unacked_data: u32,
    last_echo: SimTime,
    stats: BbrReceiverStats,
}

impl BbrReceiver {
    /// Create the receiving endpoint.
    pub fn new(flow: FlowId, cfg: BbrConfig) -> Self {
        BbrReceiver {
            flow,
            cfg,
            prefix: 0,
            ooo: BTreeSet::new(),
            unacked_data: 0,
            last_echo: SimTime::ZERO,
            stats: BbrReceiverStats::default(),
        }
    }

    /// The flow this endpoint terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BbrReceiverStats {
        self.stats
    }

    /// Cumulative delivery point.
    pub fn cum_ack(&self) -> u32 {
        self.prefix
    }

    /// Process a data segment; ACK per delayed-ACK policy.
    pub fn on_data(&mut self, _now: SimTime, data: &BbrData) -> Option<BbrAck> {
        debug_assert_eq!(data.flow, self.flow);
        let fresh = data.seq >= self.prefix && self.ooo.insert(data.seq);
        if fresh {
            self.stats.delivered_packets += 1;
            self.stats.delivered_bytes += data.payload_len as u64;
            while self.ooo.remove(&self.prefix) {
                self.prefix += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        self.last_echo = data.sent_at;
        self.unacked_data += 1;
        let out_of_order = !self.ooo.is_empty();
        if out_of_order || self.unacked_data >= self.cfg.delayed_ack_every {
            Some(self.make_ack())
        } else {
            None
        }
    }

    fn make_ack(&mut self) -> BbrAck {
        self.unacked_data = 0;
        self.stats.acks_sent += 1;
        let sacked: Vec<u32> = self.ooo.iter().copied().collect();
        BbrAck {
            flow: self.flow,
            cum_ack: self.prefix,
            sack: compress_ranges(&sacked),
            echo: self.last_echo,
        }
    }

    /// Force a pending delayed ACK out.
    pub fn flush_ack(&mut self) -> Option<BbrAck> {
        (self.unacked_data > 0).then(|| self.make_ack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(total: u32) -> BbrSender {
        BbrSender::new(FlowId(1), total, BbrConfig::default())
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let s = sender(100);
        assert_eq!(s.phase(), BbrPhase::Startup);
        assert!((s.pacing_gain() - STARTUP_GAIN).abs() < 1e-9);
    }

    #[test]
    fn bw_filter_takes_windowed_max() {
        let mut s = sender(100);
        s.record_bw_sample(5.0);
        s.record_bw_sample(12.0);
        s.record_bw_sample(8.0);
        assert!((s.max_bw_pps() - 12.0).abs() < 1e-9);
        // Old samples age out of the round window.
        s.round += s.cfg.bw_window_rounds + 1;
        s.record_bw_sample(3.0);
        assert!((s.max_bw_pps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn inflight_cap_blocks_fresh_sends() {
        let mut s = sender(1000);
        // No bw model yet: cwnd = min_cwnd = 4.
        let mut t = SimTime::ZERO;
        let mut sent = 0;
        for _ in 0..100 {
            if s.poll_send(t).is_some() {
                sent += 1;
            }
            t += SimDuration::from_secs(5);
        }
        assert_eq!(sent, 4, "inflight capped at min_cwnd without a model");
    }

    #[test]
    fn ack_frees_inflight_and_samples_bw() {
        let mut s = sender(100);
        let mut t = SimTime::ZERO;
        for _ in 0..4 {
            s.poll_send(t).unwrap();
            t += SimDuration::from_secs(5);
        }
        let ack = BbrAck {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert_eq!(s.inflight(), 2);
        assert!(s.max_bw_pps() > 0.0);
    }

    #[test]
    fn retransmission_bypasses_inflight_cap() {
        let mut s = sender(1000);
        let mut t = SimTime::ZERO;
        for _ in 0..4 {
            s.poll_send(t).unwrap();
            t += SimDuration::from_secs(5);
        }
        // Cap reached; a SACK hole queues seq 0 for retransmission.
        let ack = BbrAck {
            flow: FlowId(1),
            cum_ack: 0,
            sack: vec![SeqRange { start: 1, end: 3 }],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        let rtx = s.poll_send(t + SimDuration::from_secs(5)).expect("rtx");
        assert_eq!(rtx.seq, 0);
        assert_eq!(s.stats().retransmissions, 1);
    }

    #[test]
    fn rto_backstop_fires() {
        let mut s = sender(10);
        s.poll_send(SimTime::ZERO).unwrap();
        let deadline = s.next_wakeup().unwrap();
        let late = deadline + SimDuration::from_secs(30);
        s.on_timer(late);
        assert_eq!(s.stats().timeouts, 1);
        let rtx = s.poll_send(late).unwrap();
        assert_eq!(rtx.seq, 0);
    }

    #[test]
    fn completes_on_full_cum_ack() {
        let mut s = sender(2);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(5);
        }
        let ack = BbrAck {
            flow: FlowId(1),
            cum_ack: 2,
            sack: vec![],
            echo: SimTime::ZERO,
        };
        s.on_ack(t, &ack);
        assert!(s.is_complete());
        assert!(s.poll_send(t + SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn receiver_contract_matches_tcp() {
        let mut r = BbrReceiver::new(FlowId(1), BbrConfig::default());
        let d = |seq| BbrData {
            flow: FlowId(1),
            seq,
            sent_at: SimTime::ZERO,
            payload_len: 800,
        };
        assert!(r.on_data(SimTime::ZERO, &d(0)).is_none(), "first: delayed");
        let ack = r.on_data(SimTime::ZERO, &d(2)).expect("gap => immediate");
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(ack.sack, vec![SeqRange::single(2)]);
    }
}
