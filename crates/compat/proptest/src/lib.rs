//! Minimal, std-only stand-in for `proptest`.
//!
//! The build environment is fully offline, so the workspace vendors the
//! subset its property tests use: the `proptest!` macro, `prop_assert*`,
//! numeric-range / `any::<T>()` / tuple / `prop_map` / `collection::vec`
//! strategies, and simple `[class]{lo,hi}` string patterns.
//!
//! Differences from the real crate: values are generated from a fixed
//! deterministic seed schedule (per test name × case index), and failures
//! are reported by panic **without shrinking** — the failing case index is
//! printed so a failure reproduces exactly on re-run.

#![forbid(unsafe_code)]

/// Deterministic generator state (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [0, n). `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Landing exactly on `hi` has probability ~2^-53; nudge a
                // small fraction of draws onto the endpoint so inclusive
                // bounds are actually exercised.
                if rng.below(64) == 0 {
                    return hi;
                }
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Full-type-range generation, proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types [`any`] can generate.
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `&str` patterns act as string strategies: supports sequences of
/// literal characters and `[a-z0-9_]`-style classes, each optionally
/// followed by `{lo,hi}` / `{n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let alphabet: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {self:?}"));
                    match c {
                        ']' => break,
                        '-' => {
                            let lo = prev
                                .take()
                                .unwrap_or_else(|| panic!("bad range in pattern {self:?}"));
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("bad range in pattern {self:?}"));
                            set.pop();
                            for x in lo..=hi {
                                set.push(x);
                            }
                        }
                        c => {
                            set.push(c);
                            prev = Some(c);
                        }
                    }
                }
                set
            } else {
                vec![c]
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {self:?}")),
                        b.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {self:?}")),
                    ),
                    None => {
                        let n: usize = spec
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {self:?}"));
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` strategy with a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generate `Vec`s whose length lies in `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-loop driver used by the expansion of [`proptest!`].
pub fn run_cases<F: FnMut(&mut TestRng)>(cases: u32, name: &str, mut body: F) {
    // Stable per-test seed: FNV-1a of the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases {
        let mut rng = TestRng::new(h ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("proptest stand-in: property {name:?} failed at case {case}/{cases} (deterministic; re-run reproduces)");
            std::panic::resume_unwind(e);
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert within a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Bind `pat in strategy` arguments, then run the body.
#[macro_export]
#[doc(hidden)]
macro_rules! __bind_args {
    ($rng:ident, ($($pat:pat_param in $strat:expr),+ $(,)?), $body:block) => {
        {
            $(let $pat = $crate::Strategy::generate(&($strat), $rng);)+
            $body
        }
    };
}

/// Define property tests: a block of `#[test] fn name(pat in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg); $($rest)*}
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, stringify!($name), |__proptest_rng| {
                    $crate::__bind_args!{__proptest_rng, ($($args)*), $body}
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::ProptestConfig::default()); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0.5f64..=1.0, mut v in crate::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..=1.0).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5);
            v.push(0);
        }

        #[test]
        fn tuples_and_map(t in (0u16..4, any::<bool>()).prop_map(|(a, b)| (a + 1, b))) {
            prop_assert!((1..=4).contains(&t.0));
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn determinism() {
        let strat = crate::collection::vec(any::<u64>(), 1..10);
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
