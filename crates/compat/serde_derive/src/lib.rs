//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no syn/quote). Supports the shapes this workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are all unit variants (serialized as strings).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (JSON emission) for a struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`), doc comments and visibility.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let k = id.to_string();
                i += 1;
                break k;
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".into()),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize) stand-in: `{name}` is generic, which is unsupported"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "`{name}`: expected a braced body (tuple structs unsupported)"
            ))
        }
    };

    if kind == "struct" {
        let fields = named_fields(body)?;
        let mut calls = String::new();
        for f in &fields {
            calls.push_str(&format!("out.field({f:?}, &self.{f});\n"));
        }
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::serde::JsonWriter) {{\n\
             out.begin_object();\n{calls}out.end_object();\n}}\n}}"
        ))
    } else {
        let variants = unit_variants(&name, body)?;
        let mut arms = String::new();
        for v in &variants {
            arms.push_str(&format!("{name}::{v} => out.write_escaped({v:?}),\n"));
        }
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::serde::JsonWriter) {{\n\
             match self {{\n{arms}}}\n}}\n}}"
        ))
    }
}

/// Field names of a named-field struct body, honouring nested generics.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut angle_depth = 0usize;
    let mut toks = body.into_iter().peekable();
    while let Some(t) = toks.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Field attribute: skip the bracket group too.
                toks.next();
            }
            TokenTree::Ident(id) if expecting_name && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            TokenTree::Ident(id) if expecting_name => {
                fields.push(id.to_string());
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expecting_name = true;
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Variant names of an all-unit-variant enum body.
fn unit_variants(name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut expecting_name = true;
    let mut toks = body.into_iter().peekable();
    while let Some(t) = toks.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                toks.next();
            }
            TokenTree::Ident(id) if expecting_name => {
                variants.push(id.to_string());
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expecting_name = true,
            TokenTree::Group(_) => {
                return Err(format!(
                    "derive(Serialize) stand-in: enum `{name}` has non-unit variants, which is unsupported"
                ));
            }
            _ => {}
        }
    }
    Ok(variants)
}
