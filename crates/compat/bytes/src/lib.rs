//! Minimal, std-only stand-in for the `bytes` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! small API subset the JTP codecs use: big-endian `get_*`/`put_*` cursors
//! over byte buffers. Semantics (network byte order, consuming reads)
//! match the real crate for the covered surface.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

/// A growable byte buffer with big-endian append operations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(std::sync::Arc::new(self.buf))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` we use).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append `count` copies of `byte`.
    fn put_bytes(&mut self, byte: u8, count: usize);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a u16, network byte order.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a u32, network byte order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a u64, network byte order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append an f32, network byte order.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.buf.resize(self.buf.len() + count, byte);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.resize(self.len() + count, byte);
    }
}

/// Big-endian consuming reads (the subset of `bytes::Buf` we use).
///
/// Implemented for `&[u8]`: each read advances the slice.
///
/// # Panics
/// Like the real crate, reads panic when the buffer is too short; callers
/// length-check before decoding.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Consume and return `n` leading bytes as an array.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Read a u16, network byte order.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Read a u32, network byte order.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Read a u64, network byte order.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Read an f32, network byte order.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_array())
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.split_at(N);
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        *self = rest;
        out
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xA1B2C3D4);
        b.put_u64(42);
        b.put_f32(1.5);
        b.put_bytes(0, 3);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 4 + 3);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xA1B2C3D4);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn byte_order_is_network_order() {
        let mut b = BytesMut::new();
        b.put_u16(0x0102);
        assert_eq!(&b[..], &[0x01, 0x02]);
    }
}
