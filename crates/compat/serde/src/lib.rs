//! Minimal, std-only stand-in for `serde`'s serialize half.
//!
//! The build environment is fully offline, so the workspace vendors the
//! subset it uses: `#[derive(Serialize)]` on plain structs (and unit-only
//! enums) plus JSON emission through `serde_json::to_string_pretty`.
//! Instead of serde's visitor architecture, [`Serialize`] writes directly
//! into a [`JsonWriter`]; the derive macro (re-exported from
//! `serde_derive`) generates the field-by-field calls.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut JsonWriter);
}

/// Incremental JSON emitter with optional pretty-printing.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    pretty: bool,
    depth: usize,
    /// Whether a value has already been written at each nesting level
    /// (controls comma placement).
    has_item: Vec<bool>,
}

impl JsonWriter {
    /// A writer producing compact JSON.
    pub fn compact() -> Self {
        JsonWriter {
            buf: String::new(),
            pretty: false,
            depth: 0,
            has_item: vec![false],
        }
    }

    /// A writer producing 2-space-indented JSON.
    pub fn pretty() -> Self {
        JsonWriter {
            buf: String::new(),
            pretty: true,
            depth: 0,
            has_item: vec![false],
        }
    }

    /// Consume the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.buf
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..self.depth {
                self.buf.push_str("  ");
            }
        }
    }

    /// Mark the start of an element/field, emitting the separator.
    fn elem_prefix(&mut self) {
        if *self.has_item.last().expect("level") {
            self.buf.push(',');
        }
        *self.has_item.last_mut().expect("level") = true;
        if self.depth > 0 {
            self.newline_indent();
        }
    }

    /// Begin a JSON object.
    pub fn begin_object(&mut self) {
        self.buf.push('{');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End a JSON object.
    pub fn end_object(&mut self) {
        let had = self.has_item.pop().expect("unbalanced end_object");
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.buf.push('}');
    }

    /// Begin a JSON array.
    pub fn begin_array(&mut self) {
        self.buf.push('[');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End a JSON array.
    pub fn end_array(&mut self) {
        let had = self.has_item.pop().expect("unbalanced end_array");
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.buf.push(']');
    }

    /// Write one named object field.
    pub fn field(&mut self, name: &str, value: &dyn Serialize) {
        self.elem_prefix();
        self.write_escaped(name);
        self.buf.push(':');
        if self.pretty {
            self.buf.push(' ');
        }
        value.serialize_json(self);
    }

    /// Write one array element.
    pub fn element(&mut self, value: &dyn Serialize) {
        self.elem_prefix();
        value.serialize_json(self);
    }

    /// Write a raw scalar token (already valid JSON).
    pub fn raw(&mut self, token: &str) {
        self.buf.push_str(token);
    }

    /// Write an escaped JSON string.
    pub fn write_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut JsonWriter) {
                out.raw(&self.to_string());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut JsonWriter) {
                // JSON has no NaN/Infinity; emit null like lenient emitters.
                if self.is_finite() {
                    let s = self.to_string();
                    out.raw(&s);
                } else {
                    out.raw("null");
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut JsonWriter) {
        out.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut JsonWriter) {
        out.write_escaped(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut JsonWriter) {
        out.write_escaped(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut JsonWriter) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut JsonWriter) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut JsonWriter) {
        out.begin_array();
        for v in self {
            out.element(v);
        }
        out.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut JsonWriter) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut JsonWriter) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut JsonWriter) {
                out.begin_array();
                $(out.element(&self.$idx);)+
                out.end_array();
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        let mut w = JsonWriter::compact();
        w.begin_array();
        w.element(&1u32);
        w.element(&2.5f64);
        w.element(&true);
        w.element(&"a\"b");
        w.element(&Option::<u32>::None);
        w.element(&f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), r#"[1,2.5,true,"a\"b",null,null]"#);
    }

    #[test]
    fn nested_containers() {
        let mut w = JsonWriter::compact();
        (vec![(1u32, 2u32)], "x").serialize_json(&mut w);
        assert_eq!(w.finish(), r#"[[[1,2]],"x"]"#);
    }

    #[test]
    fn pretty_objects_indent() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field("a", &1u32);
        w.field("b", &vec![1u32, 2]);
        w.end_object();
        let s = w.finish();
        assert!(s.contains("\n  \"a\": 1,"));
        assert!(s.ends_with('}'));
    }
}
