//! Minimal, std-only stand-in for `serde_json`: serialization to compact
//! and pretty JSON text, backed by the vendored `serde` stand-in.

#![forbid(unsafe_code)]

use serde::{JsonWriter, Serialize};

/// Serialization error (the vendored emitter is infallible, but the type
/// keeps call sites source-compatible with the real crate).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::compact();
    value.serialize_json(&mut w);
    Ok(w.finish())
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::pretty();
    value.serialize_json(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty_agree_modulo_whitespace() {
        let v = vec![(1u32, "a"), (2, "b")];
        let c = super::to_string(&v).unwrap();
        let p = super::to_string_pretty(&v).unwrap();
        assert_eq!(c, r#"[[1,"a"],[2,"b"]]"#);
        let squashed: String = p.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(squashed, c);
    }
}
