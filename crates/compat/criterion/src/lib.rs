//! Minimal, std-only stand-in for `criterion`.
//!
//! Provides the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock harness: a short warm-up, then timed batches, reporting the
//! best (lowest-noise) ns/iter to stdout. Statistical rigor is traded for
//! zero dependencies; trends remain comparable run to run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Apply `--bench <filter>`-style CLI filtering (substring match on
    /// bench names; `--bench`/`--exact` flags from `cargo bench` are
    /// ignored).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with("--"));
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.enabled(&name) {
            let mut b = Bencher::default();
            f(&mut b);
            b.report(&name);
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (`group/name` reporting).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.c.bench_function(full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Best observed mean ns/iter across batches.
    best_ns_per_iter: Option<f64>,
    /// Total iterations executed.
    iters: u64,
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(1200);

impl Bencher {
    /// Time `f`, called repeatedly in growing batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Batch size targeting ~50 ms per sample, at least 1 iteration.
        let batch = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let run_start = Instant::now();
        let mut best = f64::INFINITY;
        while run_start.elapsed() < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            self.iters += batch;
        }
        self.best_ns_per_iter = Some(best);
    }

    fn report(&self, name: &str) {
        match self.best_ns_per_iter {
            Some(ns) => {
                let per_sec = 1e9 / ns.max(1e-9);
                println!(
                    "bench: {name:<44} {ns:>14.1} ns/iter ({per_sec:>14.0} iters/s, {} iters)",
                    self.iters
                );
            }
            None => println!("bench: {name:<44} (no measurement)"),
        }
    }
}

/// Define a bench group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from bench group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
