//! JTP packet formats and wire codecs.
//!
//! Figure 2 of the paper defines two headers:
//!
//! * the **JTP header**, attached to every packet, whose three novel fields
//!   are *available rate*, *loss tolerance* and *energy budget* (§2.1.1) —
//!   the optimised layout is 28 bytes and our wire codec packs exactly that;
//! * the optional **ACK header** carrying cumulative + selective negative
//!   acknowledgments (SNACK), the locally-recovered list, the receiver's
//!   feedback timeout and the new sending rate / energy budget (§2.1.2). The
//!   paper's prototype reserves 200 bytes for it (Table 1); our codec packs
//!   variable-length SNACK/recovered ranges into that budget.
//!
//! The simulation exchanges the typed [`DataPacket`] / [`AckPacket`] structs
//! for speed, but the codecs are real and round-trip tested — the structs
//! *are* serialisable to the byte layouts below, smoltcp-style.
//!
//! ```text
//! JTP data header (28 bytes, network byte order):
//!  0      1      2             4                8
//!  +------+------+-------------+----------------+
//!  | ver  | type | flow id     | sequence num   |
//!  +------+------+-------------+----------------+
//!  | rate (f32 pps)            | loss tol (u16) | remaining hops (u16)
//!  +---------------------------+----------------+
//!  | energy budget (u32 nJ)    | energy used (u32 nJ)
//!  +---------------------------+----------------+
//!  | deadline (u32 ms)         |
//!  +---------------------------+  = 28 bytes
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use jtp_sim::{FlowId, SimDuration};

/// Protocol version encoded in the header.
pub const JTP_VERSION: u8 = 1;
/// Wire size of the JTP data header (paper: "the JTP header is 28 bytes").
pub const DATA_HEADER_BYTES: usize = 28;
/// Wire budget for the ACK packet (paper Table 1: 200 bytes, unoptimised).
pub const ACK_PACKET_BYTES: usize = 200;
/// Fixed part of the ACK packet; the rest holds SNACK/recovered ranges.
pub const ACK_FIXED_BYTES: usize = 28;
/// Each SNACK or locally-recovered range costs 8 bytes on the wire.
pub const RANGE_BYTES: usize = 8;
/// Maximum ranges (SNACK + recovered combined) fitting the 200-byte ACK.
pub const MAX_ACK_RANGES: usize = (ACK_PACKET_BYTES - ACK_FIXED_BYTES) / RANGE_BYTES;

/// Packet discriminator on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketType {
    /// Application data.
    Data = 0,
    /// Feedback (cumulative ACK + SNACK + control parameters).
    Ack = 1,
}

/// Errors from the wire codecs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown packet type byte.
    BadType(u8),
    /// Range count inconsistent with buffer length or over budget.
    BadRangeCount,
    /// A range had `start > end`.
    BadRange,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported JTP version {v}"),
            CodecError::BadType(t) => write!(f, "unknown packet type {t}"),
            CodecError::BadRangeCount => write!(f, "inconsistent SNACK range count"),
            CodecError::BadRange => write!(f, "descending sequence range"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An inclusive range of sequence numbers `[start, end]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SeqRange {
    /// First missing/recovered sequence number.
    pub start: u32,
    /// Last missing/recovered sequence number (inclusive).
    pub end: u32,
}

impl SeqRange {
    /// A single-sequence range.
    pub fn single(seq: u32) -> Self {
        SeqRange {
            start: seq,
            end: seq,
        }
    }

    /// Number of sequence numbers covered.
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Never empty by construction, but mirrors the std convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `seq` lies inside the range.
    pub fn contains(&self, seq: u32) -> bool {
        (self.start..=self.end).contains(&seq)
    }

    /// Iterate the covered sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        self.start..=self.end
    }
}

/// Compress a sorted, deduplicated slice of sequence numbers into ranges.
pub fn compress_ranges(sorted: &[u32]) -> Vec<SeqRange> {
    let mut out: Vec<SeqRange> = Vec::new();
    for &s in sorted {
        match out.last_mut() {
            Some(r) if s == r.end + 1 => r.end = s,
            Some(r) if s <= r.end => {} // duplicate
            _ => out.push(SeqRange::single(s)),
        }
    }
    out
}

/// Expand ranges back into a sorted sequence list.
pub fn expand_ranges(ranges: &[SeqRange]) -> Vec<u32> {
    let mut out = Vec::new();
    for r in ranges {
        out.extend(r.iter());
    }
    out
}

/// A JTP data packet: 28-byte header plus payload.
///
/// The three novel per-packet fields of §2.1.1 travel here:
/// `rate_pps` (available rate, min-stamped along the path), `loss_tolerance`
/// (remaining end-to-end tolerance, updated hop by hop) and
/// `energy_budget_nj`/`energy_used_nj` (the per-packet energy account).
#[derive(Clone, PartialEq, Debug)]
pub struct DataPacket {
    /// Connection this packet belongs to.
    pub flow: FlowId,
    /// Sequence number (per-flow, starting at 0).
    pub seq: u32,
    /// Minimum *effective* available rate observed so far along the path
    /// (packets/second). Stamped down by iJTP at every hop.
    pub rate_pps: f32,
    /// Remaining end-to-end loss tolerance for the rest of the path, in
    /// [0, 1]. Encoded on the wire as u16 fixed-point (x/65535).
    pub loss_tolerance: f64,
    /// Hops left to the destination according to the last forwarder's view.
    pub remaining_hops: u16,
    /// Energy the network may still spend on this packet (nanojoules).
    pub energy_budget_nj: u32,
    /// Energy spent on this packet so far (nanojoules).
    pub energy_used_nj: u32,
    /// Delivery deadline for real-time traffic, ms (0 = none; carried for
    /// completeness as in the paper, unused by bulk transfers).
    pub deadline_ms: u32,
    /// Application payload length in bytes (payload content is opaque to
    /// the protocol; the simulator does not materialise it).
    pub payload_len: u16,
}

impl DataPacket {
    /// Total wire size: header + payload.
    pub fn wire_bytes(&self) -> usize {
        DATA_HEADER_BYTES + self.payload_len as usize
    }

    /// Loss tolerance quantised exactly as the wire carries it.
    pub fn quantised_tolerance(&self) -> f64 {
        let q = (self.loss_tolerance.clamp(0.0, 1.0) * 65535.0).round() as u16;
        q as f64 / 65535.0
    }

    /// Encode header + a zero payload into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_bytes());
        buf.put_u8(JTP_VERSION);
        buf.put_u8(PacketType::Data as u8);
        buf.put_u16(self.flow.0);
        buf.put_u32(self.seq);
        buf.put_f32(self.rate_pps);
        buf.put_u16((self.loss_tolerance.clamp(0.0, 1.0) * 65535.0).round() as u16);
        buf.put_u16(self.remaining_hops);
        buf.put_u32(self.energy_budget_nj);
        buf.put_u32(self.energy_used_nj);
        buf.put_u32(self.deadline_ms);
        buf.put_u16(self.payload_len);
        // Note: the real system appends payload_len bytes of application
        // data here; the codec emits zeros so sizes are faithful.
        buf.put_bytes(0, self.payload_len as usize);
    }

    /// Encode to a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        b.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut buf: &[u8]) -> Result<DataPacket, CodecError> {
        if buf.len() < DATA_HEADER_BYTES + 2 {
            return Err(CodecError::Truncated);
        }
        let ver = buf.get_u8();
        if ver != JTP_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let ty = buf.get_u8();
        if ty != PacketType::Data as u8 {
            return Err(CodecError::BadType(ty));
        }
        let flow = FlowId(buf.get_u16());
        let seq = buf.get_u32();
        let rate_pps = buf.get_f32();
        let loss_tolerance = buf.get_u16() as f64 / 65535.0;
        let remaining_hops = buf.get_u16();
        let energy_budget_nj = buf.get_u32();
        let energy_used_nj = buf.get_u32();
        let deadline_ms = buf.get_u32();
        let payload_len = buf.get_u16();
        if buf.len() < payload_len as usize {
            return Err(CodecError::Truncated);
        }
        Ok(DataPacket {
            flow,
            seq,
            rate_pps,
            loss_tolerance,
            remaining_hops,
            energy_budget_nj,
            energy_used_nj,
            deadline_ms,
            payload_len,
        })
    }
}

/// A JTP feedback packet (§2.1.2).
///
/// Carries a positive cumulative acknowledgment, a selective negative
/// acknowledgment (missing sequences the receiver still wants), the
/// locally-recovered list (sequences some cache already resent — appended by
/// iJTP as the ACK travels toward the source), and the receiver-chosen
/// transmission parameters: sending rate, energy budget and the feedback
/// timeout the sender should arm.
#[derive(Clone, PartialEq, Debug)]
pub struct AckPacket {
    /// Connection being acknowledged.
    pub flow: FlowId,
    /// All sequences `< cum_ack` are delivered or no longer wanted.
    pub cum_ack: u32,
    /// Missing sequences requested for retransmission (SNACK).
    pub snack: Vec<SeqRange>,
    /// Sequences already retransmitted by an in-network cache on the
    /// source's behalf.
    pub locally_recovered: Vec<SeqRange>,
    /// New sending rate for the source (packets/second).
    pub rate_pps: f32,
    /// New per-packet energy budget (nanojoules).
    pub energy_budget_nj: u32,
    /// The receiver's current feedback period T: if the sender hears no
    /// feedback for ~this long it must assume loss and back off (§5.1,
    /// "the value of T is used to set the sender's timeout field").
    pub timeout: SimDuration,
}

impl AckPacket {
    /// Wire size: the prototype always reserves the full 200-byte ACK
    /// packet (Table 1), so energy accounting uses that constant.
    pub fn wire_bytes(&self) -> usize {
        ACK_PACKET_BYTES
    }

    /// Sequences listed in the SNACK field, expanded.
    pub fn snack_seqs(&self) -> Vec<u32> {
        expand_ranges(&self.snack)
    }

    /// Sequences listed as locally recovered, expanded.
    pub fn recovered_seqs(&self) -> Vec<u32> {
        expand_ranges(&self.locally_recovered)
    }

    /// True if `seq` is requested in the SNACK and not already marked
    /// locally recovered.
    pub fn wants_retransmission(&self, seq: u32) -> bool {
        self.snack.iter().any(|r| r.contains(seq))
            && !self.locally_recovered.iter().any(|r| r.contains(seq))
    }

    /// Move `seq` from the SNACK set into the locally-recovered set
    /// (performed by iJTP when a cache answers the request). Returns false
    /// if `seq` was not SNACKed or was already recovered.
    pub fn mark_locally_recovered(&mut self, seq: u32) -> bool {
        if !self.wants_retransmission(seq) {
            return false;
        }
        // Remove from snack ranges (splitting as needed)…
        let mut new_snack = Vec::with_capacity(self.snack.len() + 1);
        for r in &self.snack {
            if !r.contains(seq) {
                new_snack.push(*r);
                continue;
            }
            if r.start < seq {
                new_snack.push(SeqRange {
                    start: r.start,
                    end: seq - 1,
                });
            }
            if r.end > seq {
                new_snack.push(SeqRange {
                    start: seq + 1,
                    end: r.end,
                });
            }
        }
        self.snack = new_snack;
        // …and add to the recovered ranges.
        let mut seqs = self.recovered_seqs();
        seqs.push(seq);
        seqs.sort_unstable();
        seqs.dedup();
        self.locally_recovered = compress_ranges(&seqs);
        true
    }

    /// Encode into the fixed 200-byte ACK layout. Ranges beyond the wire
    /// budget are silently dropped (SNACK first, then recovered), exactly
    /// the truncation a fixed-size header forces on a real system.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(ACK_PACKET_BYTES);
        let start = buf.len();
        buf.put_u8(JTP_VERSION);
        buf.put_u8(PacketType::Ack as u8);
        buf.put_u16(self.flow.0);
        buf.put_u32(self.cum_ack);
        buf.put_f32(self.rate_pps);
        buf.put_u32(self.energy_budget_nj);
        buf.put_u64(self.timeout.as_micros());
        let n_snack = self.snack.len().min(MAX_ACK_RANGES);
        let n_rec = self.locally_recovered.len().min(MAX_ACK_RANGES - n_snack);
        buf.put_u8(n_snack as u8);
        buf.put_u8(n_rec as u8);
        buf.put_bytes(0, 2); // reserved/padding to the 28-byte fixed part
        for r in self.snack.iter().take(n_snack) {
            buf.put_u32(r.start);
            buf.put_u32(r.end);
        }
        for r in self.locally_recovered.iter().take(n_rec) {
            buf.put_u32(r.start);
            buf.put_u32(r.end);
        }
        // Pad to the full reserved ACK size.
        let used = buf.len() - start;
        buf.put_bytes(0, ACK_PACKET_BYTES - used);
    }

    /// Encode to a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        b.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut buf: &[u8]) -> Result<AckPacket, CodecError> {
        if buf.len() < ACK_FIXED_BYTES {
            return Err(CodecError::Truncated);
        }
        let ver = buf.get_u8();
        if ver != JTP_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let ty = buf.get_u8();
        if ty != PacketType::Ack as u8 {
            return Err(CodecError::BadType(ty));
        }
        let flow = FlowId(buf.get_u16());
        let cum_ack = buf.get_u32();
        let rate_pps = buf.get_f32();
        let energy_budget_nj = buf.get_u32();
        let timeout = SimDuration::from_micros(buf.get_u64());
        let n_snack = buf.get_u8() as usize;
        let n_rec = buf.get_u8() as usize;
        buf.advance(2);
        if n_snack + n_rec > MAX_ACK_RANGES {
            return Err(CodecError::BadRangeCount);
        }
        if buf.len() < (n_snack + n_rec) * RANGE_BYTES {
            return Err(CodecError::Truncated);
        }
        let read_ranges = |n: usize, buf: &mut &[u8]| -> Result<Vec<SeqRange>, CodecError> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let start = buf.get_u32();
                let end = buf.get_u32();
                if start > end {
                    return Err(CodecError::BadRange);
                }
                v.push(SeqRange { start, end });
            }
            Ok(v)
        };
        let snack = read_ranges(n_snack, &mut buf)?;
        let locally_recovered = read_ranges(n_rec, &mut buf)?;
        Ok(AckPacket {
            flow,
            cum_ack,
            snack,
            locally_recovered,
            rate_pps,
            energy_budget_nj,
            timeout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> DataPacket {
        DataPacket {
            flow: FlowId(3),
            seq: 1234,
            rate_pps: 2.5,
            loss_tolerance: 0.10,
            remaining_hops: 4,
            energy_budget_nj: 5_000_000,
            energy_used_nj: 1_200_000,
            deadline_ms: 0,
            payload_len: 800,
        }
    }

    fn sample_ack() -> AckPacket {
        AckPacket {
            flow: FlowId(3),
            cum_ack: 100,
            snack: vec![
                SeqRange {
                    start: 101,
                    end: 103,
                },
                SeqRange::single(110),
            ],
            locally_recovered: vec![SeqRange::single(105)],
            rate_pps: 3.25,
            energy_budget_nj: 7_000_000,
            timeout: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn data_roundtrip() {
        let p = sample_data();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 28 + 2 + 800); // header(26 used)+len+payload
        let q = DataPacket::decode(&bytes).unwrap();
        assert_eq!(q.flow, p.flow);
        assert_eq!(q.seq, p.seq);
        assert_eq!(q.rate_pps, p.rate_pps);
        assert!((q.loss_tolerance - p.loss_tolerance).abs() < 1e-4);
        assert_eq!(q.remaining_hops, p.remaining_hops);
        assert_eq!(q.energy_budget_nj, p.energy_budget_nj);
        assert_eq!(q.energy_used_nj, p.energy_used_nj);
        assert_eq!(q.payload_len, p.payload_len);
    }

    #[test]
    fn ack_roundtrip() {
        let a = sample_ack();
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), ACK_PACKET_BYTES);
        let b = AckPacket::decode(&bytes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn data_decode_rejects_garbage() {
        assert_eq!(DataPacket::decode(&[]), Err(CodecError::Truncated));
        let mut bytes = sample_data().to_bytes().to_vec();
        bytes[0] = 99;
        assert_eq!(DataPacket::decode(&bytes), Err(CodecError::BadVersion(99)));
        let mut bytes = sample_data().to_bytes().to_vec();
        bytes[1] = 7;
        assert_eq!(DataPacket::decode(&bytes), Err(CodecError::BadType(7)));
    }

    #[test]
    fn ack_decode_rejects_descending_range() {
        let mut a = sample_ack();
        a.snack = vec![SeqRange { start: 5, end: 5 }];
        let mut bytes = a.to_bytes().to_vec();
        // Corrupt the single snack range: start=9 > end=5.
        bytes[ACK_FIXED_BYTES] = 0;
        bytes[ACK_FIXED_BYTES + 1] = 0;
        bytes[ACK_FIXED_BYTES + 2] = 0;
        bytes[ACK_FIXED_BYTES + 3] = 9;
        assert_eq!(AckPacket::decode(&bytes), Err(CodecError::BadRange));
    }

    #[test]
    fn wants_retransmission_respects_recovered() {
        let a = sample_ack();
        assert!(a.wants_retransmission(102));
        assert!(!a.wants_retransmission(105), "already recovered");
        assert!(!a.wants_retransmission(999), "never snacked");
    }

    #[test]
    fn mark_locally_recovered_splits_ranges() {
        let mut a = sample_ack();
        assert!(a.mark_locally_recovered(102));
        // 101..=103 splits into 101 and 103.
        assert!(a.wants_retransmission(101));
        assert!(!a.wants_retransmission(102));
        assert!(a.wants_retransmission(103));
        assert!(a.recovered_seqs().contains(&102));
        // Double-marking fails.
        assert!(!a.mark_locally_recovered(102));
    }

    #[test]
    fn mark_recovered_merges_adjacent() {
        let mut a = AckPacket {
            snack: vec![SeqRange { start: 10, end: 12 }],
            locally_recovered: vec![],
            ..sample_ack()
        };
        a.mark_locally_recovered(10);
        a.mark_locally_recovered(11);
        a.mark_locally_recovered(12);
        assert_eq!(a.locally_recovered, vec![SeqRange { start: 10, end: 12 }]);
        assert!(a.snack.is_empty());
    }

    #[test]
    fn compress_and_expand_are_inverse() {
        let seqs = vec![1, 2, 3, 7, 9, 10, 11, 20];
        let ranges = compress_ranges(&seqs);
        assert_eq!(
            ranges,
            vec![
                SeqRange { start: 1, end: 3 },
                SeqRange::single(7),
                SeqRange { start: 9, end: 11 },
                SeqRange::single(20)
            ]
        );
        assert_eq!(expand_ranges(&ranges), seqs);
    }

    #[test]
    fn compress_handles_duplicates_and_empty() {
        assert!(compress_ranges(&[]).is_empty());
        assert_eq!(
            compress_ranges(&[4, 4, 5, 5]),
            vec![SeqRange { start: 4, end: 5 }]
        );
    }

    #[test]
    fn ack_encoding_truncates_over_budget() {
        let mut a = sample_ack();
        a.snack = (0..50u32).map(|i| SeqRange::single(i * 10)).collect();
        a.locally_recovered = (0..50u32).map(|i| SeqRange::single(i * 10 + 5)).collect();
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), ACK_PACKET_BYTES);
        let b = AckPacket::decode(&bytes).unwrap();
        assert!(b.snack.len() <= MAX_ACK_RANGES);
        assert_eq!(b.snack.len() + b.locally_recovered.len(), MAX_ACK_RANGES);
        // SNACK has priority over the recovered list.
        assert_eq!(b.snack.len(), 21);
    }

    #[test]
    fn tolerance_quantisation_error_is_small() {
        for &t in &[0.0, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let p = DataPacket {
                loss_tolerance: t,
                ..sample_data()
            };
            assert!((p.quantised_tolerance() - t).abs() < 1e-4);
        }
    }

    #[test]
    fn seq_range_basics() {
        let r = SeqRange { start: 5, end: 8 };
        assert_eq!(r.len(), 4);
        assert!(r.contains(5) && r.contains(8) && !r.contains(9));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![5, 6, 7, 8]);
        assert!(!r.is_empty());
    }
}
