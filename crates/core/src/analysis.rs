//! Closed-form analysis of the in-network caching gain (§4.1, eqs 5–6).
//!
//! * **JTP with caching** (infinite caches, symmetric path): every lost
//!   packet is recovered by the last node that has it, so each link behaves
//!   like an independent geometric process —
//!   `E[T_tot^JTP] = k · H / (1 − p)` (eq. 5).
//! * **JTP without caching (JNC)**: a packet lost after `n` failed attempts
//!   on any link must be resent from the source —
//!   `E[T_tot^JNC] = k·(1−pⁿ)·(1−(1−pⁿ)^H) / ((1−pⁿ)^H (1−p) pⁿ)`
//!   `≈ k·H / ((1−pⁿ)^{H−1} (1−p))` (eq. 6).
//!
//! The `bench` crate's `analysis` binary checks these against simulation;
//! the tests below check internal consistency (the degeneracies the paper
//! points out).

/// Expected total node transmissions to deliver `k` packets over `H` hops
/// with per-attempt loss `p`, **with** in-network caching (eq. 5).
pub fn expected_tx_with_caching(k: u64, hops: u32, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
    k as f64 * hops as f64 / (1.0 - p)
}

/// Expected node transmissions per received packet on one link when at
/// most `n` attempts are made (the `E[T_l^JNC]` term):
/// `(1 − pⁿ) / (1 − p)`.
pub fn expected_tx_per_link_jnc(p: f64, n: u32) -> f64 {
    assert!((0.0..1.0).contains(&p));
    assert!(n >= 1);
    (1.0 - p.powi(n as i32)) / (1.0 - p)
}

/// Expected total node transmissions to deliver `k` packets over `H` hops
/// with per-attempt loss `p` and per-link attempt cap `n`, **without**
/// caching (eq. 6, exact form).
pub fn expected_tx_without_caching(k: u64, hops: u32, p: f64, n: u32) -> f64 {
    assert!((0.0..1.0).contains(&p));
    assert!(n >= 1 && hops >= 1);
    let q = 1.0 - p.powi(n as i32); // per-link success with n attempts
    if p == 0.0 {
        // Perfect links: exactly one transmission per hop per packet.
        return k as f64 * hops as f64;
    }
    let q_e2e = q.powi(hops as i32);
    // E[S] = k / q_e2e source sends; a packet reaching link i (prob q^i)
    // triggers E[T_l] transmissions there.
    let e_s = k as f64 / q_e2e;
    let e_t_l = expected_tx_per_link_jnc(p, n);
    let sum_qi: f64 = (0..hops).map(|i| q.powi(i as i32)).sum();
    e_s * e_t_l * sum_qi
}

/// The paper's approximation of eq. 6:
/// `k·H / ((1−pⁿ)^{H−1}·(1−p))`.
pub fn expected_tx_without_caching_approx(k: u64, hops: u32, p: f64, n: u32) -> f64 {
    assert!((0.0..1.0).contains(&p));
    let q = 1.0 - p.powi(n as i32);
    k as f64 * hops as f64 / (q.powi(hops as i32 - 1) * (1.0 - p))
}

/// The caching gain factor `E[T^JNC] / E[T^JTP]` — the paper notes the JNC
/// cost is `1/(1−pⁿ)^{H−1}` times higher.
pub fn caching_gain(hops: u32, p: f64, n: u32) -> f64 {
    expected_tx_without_caching(1, hops, p, n) / expected_tx_with_caching(1, hops, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_basic_values() {
        // Perfect channel: k*H.
        assert_eq!(expected_tx_with_caching(10, 5, 0.0), 50.0);
        // p = 0.5 doubles the per-link cost.
        assert_eq!(expected_tx_with_caching(1, 1, 0.5), 2.0);
    }

    #[test]
    fn eq6_degenerates_to_eq5_for_single_hop() {
        // Paper: "For H = 1, equation (6) degenerates to (5)" — with
        // unlimited retries per link. With finite n the equality holds in
        // the limit; for H = 1 exact: E[S]*E[T_l] = (1/q)*(1-p^n)/(1-p)
        // = 1/(1-p) since q = 1-p^n.
        for &p in &[0.1, 0.3, 0.6] {
            for &n in &[1u32, 3, 5] {
                let jnc = expected_tx_without_caching(7, 1, p, n);
                let jtp = expected_tx_with_caching(7, 1, p);
                assert!(
                    (jnc - jtp).abs() < 1e-9,
                    "H=1 mismatch p={p} n={n}: {jnc} vs {jtp}"
                );
            }
        }
    }

    #[test]
    fn jnc_always_at_least_jtp() {
        for &p in &[0.05, 0.2, 0.4] {
            for hops in 1..10u32 {
                for &n in &[1u32, 2, 5] {
                    let jnc = expected_tx_without_caching(5, hops, p, n);
                    let jtp = expected_tx_with_caching(5, hops, p);
                    assert!(
                        jnc >= jtp - 1e-9,
                        "caching hurt: p={p} H={hops} n={n}: {jnc} < {jtp}"
                    );
                }
            }
        }
    }

    #[test]
    fn gain_grows_with_path_length() {
        let mut prev = 0.0;
        for hops in 1..12u32 {
            let g = caching_gain(hops, 0.3, 3);
            assert!(g >= prev - 1e-12, "gain fell at H={hops}");
            prev = g;
        }
        assert!(prev > 1.05, "long paths should show real gains");
    }

    #[test]
    fn gain_grows_with_loss() {
        let mut prev = 0.0;
        for &p in &[0.05, 0.1, 0.2, 0.3, 0.5] {
            let g = caching_gain(6, p, 3);
            assert!(g >= prev, "gain fell at p={p}");
            prev = g;
        }
    }

    #[test]
    fn approx_tracks_exact_for_reliable_links() {
        // For small p the approximation in the paper is tight.
        for hops in 2..8u32 {
            let exact = expected_tx_without_caching(100, hops, 0.1, 5);
            let approx = expected_tx_without_caching_approx(100, hops, 0.1, 5);
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.05, "H={hops}: exact {exact} vs approx {approx}");
        }
    }

    #[test]
    fn per_link_tx_bounded_by_n() {
        for &p in &[0.1, 0.5, 0.9] {
            for n in 1..10u32 {
                let e = expected_tx_per_link_jnc(p, n);
                assert!(e >= 1.0 - 1e-12 && e <= n as f64 + 1e-12);
            }
        }
    }
}
