//! Adjustable reliability for energy conservation (§3 of the paper).
//!
//! The application expresses an end-to-end loss tolerance `l_e2e`; JTP
//! translates it, hop by hop, into the *minimum* number of MAC transmission
//! attempts that still meets the target:
//!
//! * eq. (1): `l_e2e = 1 − Π q_i` over per-hop success probabilities `q_i`,
//! * eq. (4): JTP assigns equal per-hop success `q = (1 − lt_i)^(1/H_i)`
//!   where `lt_i` is the tolerance remaining in the header at node `i` and
//!   `H_i` the remaining hop count from this node's topology view,
//! * eq. (2): with per-attempt link loss `p_i`, the attempt budget is
//!   `M_i = max(1, min(log(1−q_i)/log(p_i), MAX_ATTEMPTS))`,
//! * eq. (3): before forwarding, the header tolerance is updated to
//!   `lt_{i+1} = 1 − (1 − lt_i)/q_i` so that left-over budget at this hop is
//!   *not* re-spent downstream ("reducing the variability in energy
//!   consumption across nodes along the path").

/// How the remaining loss tolerance is split across the remaining hops.
///
/// §3 of the paper: *"there are many different strategies that might be
/// employed to compute qi on each link — e.g. imposing higher successful
/// delivery requirement on less loaded links or on nodes with higher
/// available energy — in this paper we assume that JTP attempts to assign
/// the same qi = q for all the links."* We implement the paper's equal
/// share plus a loss-aware variant (named future work), compared in the
/// `ablation` harness.
///
/// Any local choice remains end-to-end safe because the header tolerance
/// is updated with the success probability the hop *actually achieves*
/// (eq. 3), so downstream hops always compensate.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum AllocationStrategy {
    /// eq. (4): `q = (1 − lt)^(1/H)` on every hop.
    #[default]
    EqualShare,
    /// Spend less effort where reliability is expensive: on a link with
    /// per-attempt loss `p`, the equal-share target is raised to the power
    /// `θ = clamp(1 + shift·(p − ref_loss), 0.25, 3)` — lossier-than-
    /// reference links accept a lower local success target (θ > 1 ⇒
    /// smaller q) and cleaner links a higher one, reducing the marginal
    /// cost of the end-to-end requirement.
    LossAware {
        /// Sensitivity of the exponent to the loss deviation.
        shift: f64,
        /// Reference per-attempt loss considered "typical".
        ref_loss: f64,
    },
}

impl AllocationStrategy {
    /// The per-hop success target for this strategy.
    pub fn q_target(&self, loss_tolerance: f64, remaining_hops: u32, link_loss: f64) -> f64 {
        let base = per_hop_success_target(loss_tolerance, remaining_hops);
        match *self {
            AllocationStrategy::EqualShare => base,
            AllocationStrategy::LossAware { shift, ref_loss } => {
                // The final hop has no downstream to compensate a lowered
                // target: it must meet the remaining requirement exactly.
                if remaining_hops <= 1 {
                    return base;
                }
                let theta = (1.0 + shift * (link_loss - ref_loss)).clamp(0.25, 3.0);
                base.powf(theta)
            }
        }
    }
}

/// Per-hop success probability target for equal allocation across the
/// remaining `remaining_hops` hops (eq. 4). A tolerance ≥ 1 means the
/// application does not care — any success probability (0) is acceptable.
pub fn per_hop_success_target(loss_tolerance: f64, remaining_hops: u32) -> f64 {
    if remaining_hops == 0 {
        return 1.0;
    }
    let lt = loss_tolerance.clamp(0.0, 1.0);
    if lt >= 1.0 {
        return 0.0;
    }
    (1.0 - lt).powf(1.0 / remaining_hops as f64)
}

/// Number of MAC transmission attempts needed on a link with per-attempt
/// loss probability `p_link` to achieve success probability `q` (eq. 2):
/// `M = ⌈log(1−q)/log(p)⌉`, clamped into `[1, max_attempts]`.
///
/// Edge cases follow the physics: a perfect link (`p = 0`) needs one
/// attempt; a target of `q = 0` needs only the mandatory single attempt; a
/// dead link (`p = 1`) can never achieve `q > 0`, so the budget saturates at
/// `max_attempts` (and the packet will be dropped there, as the paper
/// intends for hopeless links).
pub fn max_attempts_for(q: f64, p_link: f64, max_attempts: u32) -> u32 {
    let max_attempts = max_attempts.max(1);
    let q = q.clamp(0.0, 1.0);
    let p = p_link.clamp(0.0, 1.0);
    if q <= 0.0 || p <= 0.0 {
        return 1;
    }
    if q >= 1.0 || p >= 1.0 {
        return max_attempts;
    }
    // M = log(1 - q) / log(p); both logs are negative, ratio positive.
    let m = ((1.0 - q).ln() / p.ln()).ceil();
    if !m.is_finite() || m >= max_attempts as f64 {
        max_attempts
    } else {
        (m as u32).max(1)
    }
}

/// Success probability actually achieved by `attempts` tries on a link with
/// per-attempt loss `p` (footnote 6: `q = 1 − p^M`).
pub fn achieved_success(p_link: f64, attempts: u32) -> f64 {
    let p = p_link.clamp(0.0, 1.0);
    1.0 - p.powi(attempts as i32)
}

/// Update the header's loss tolerance before forwarding (eq. 3):
/// `lt_{i+1} = 1 − (1 − lt_i) / q_i`, clamped to `[0, 1]`.
///
/// `q_i` is the success probability *planned* for this hop. When the plan
/// over-achieves (link better than needed), the remaining tolerance shrinks
/// so downstream hops don't spend the spare budget.
pub fn update_loss_tolerance(lt_i: f64, q_i: f64) -> f64 {
    if q_i <= 0.0 {
        // Hop expected to fail outright: downstream tolerance irrelevant,
        // keep it permissive.
        return 1.0;
    }
    (1.0 - (1.0 - lt_i.clamp(0.0, 1.0)) / q_i).clamp(0.0, 1.0)
}

/// End-to-end success probability of a path with per-hop attempt budgets
/// `attempts[i]` and per-attempt losses `p[i]` — the composition the paper
/// checks against eq. (1).
pub fn path_success(p: &[f64], attempts: &[u32]) -> f64 {
    assert_eq!(p.len(), attempts.len());
    p.iter()
        .zip(attempts)
        .map(|(&pi, &mi)| achieved_success(pi, mi))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_target_equal_allocation() {
        // 10% e2e tolerance over 3 hops: q = 0.9^(1/3).
        let q = per_hop_success_target(0.10, 3);
        assert!((q - 0.9f64.powf(1.0 / 3.0)).abs() < 1e-12);
        // One hop: q = 1 - lt.
        assert!((per_hop_success_target(0.2, 1) - 0.8).abs() < 1e-12);
        // Zero tolerance requires q = 1 per hop.
        assert_eq!(per_hop_success_target(0.0, 5), 1.0);
        // Fully tolerant flows need no success at all.
        assert_eq!(per_hop_success_target(1.0, 5), 0.0);
        // Degenerate: at the destination.
        assert_eq!(per_hop_success_target(0.1, 0), 1.0);
    }

    #[test]
    fn attempts_formula_matches_closed_form() {
        // q = 0.9, p = 0.3: M = ceil(ln(0.1)/ln(0.3)) = ceil(1.912) = 2.
        assert_eq!(max_attempts_for(0.9, 0.3, 5), 2);
        // q = 0.99, p = 0.3: ceil(ln 0.01 / ln 0.3) = ceil(3.82) = 4.
        assert_eq!(max_attempts_for(0.99, 0.3, 5), 4);
        // Cap at MAX_ATTEMPTS.
        assert_eq!(max_attempts_for(0.999999, 0.5, 5), 5);
    }

    #[test]
    fn attempts_edge_cases() {
        assert_eq!(max_attempts_for(0.9, 0.0, 5), 1, "perfect link");
        assert_eq!(max_attempts_for(0.0, 0.3, 5), 1, "no requirement");
        assert_eq!(max_attempts_for(0.9, 1.0, 5), 5, "dead link saturates");
        assert_eq!(max_attempts_for(1.0, 0.3, 5), 5, "full reliability");
        assert_eq!(max_attempts_for(0.5, 0.5, 0), 1, "max_attempts floor");
    }

    #[test]
    fn attempts_monotone_in_requirement_and_loss() {
        let mut prev = 0;
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let m = max_attempts_for(q, 0.4, 10);
            assert!(m >= prev);
            prev = m;
        }
        let mut prev = 0;
        for p in [0.05, 0.2, 0.4, 0.6, 0.8] {
            let m = max_attempts_for(0.95, p, 10);
            assert!(m >= prev, "more loss, more attempts");
            prev = m;
        }
    }

    #[test]
    fn achieved_success_matches_budget() {
        // The attempts chosen by eq. 2 really achieve the target.
        for &p in &[0.1, 0.3, 0.5, 0.7] {
            for &q in &[0.5, 0.9, 0.99] {
                let m = max_attempts_for(q, p, 50);
                assert!(
                    achieved_success(p, m) >= q - 1e-9,
                    "p={p} q={q} m={m} got {}",
                    achieved_success(p, m)
                );
            }
        }
    }

    #[test]
    fn tolerance_update_composition_preserves_e2e_target() {
        // Walk a 4-hop path, allocating per eq. 4 and updating per eq. 3;
        // the composed success must meet the original 1 - l_e2e.
        let e2e_tol = 0.15;
        let losses = [0.2, 0.1, 0.35, 0.05];
        let mut lt = e2e_tol;
        let mut q_planned = Vec::new();
        for i in 0..4 {
            let remaining = 4 - i as u32;
            let q = per_hop_success_target(lt, remaining);
            q_planned.push(q);
            lt = update_loss_tolerance(lt, q);
        }
        let _ = losses;
        let composed: f64 = q_planned.iter().product();
        assert!(
            composed >= (1.0 - e2e_tol) - 1e-9,
            "composed {composed} < target {}",
            1.0 - e2e_tol
        );
    }

    #[test]
    fn tolerance_update_shrinks_when_overachieving() {
        // Plan q=0.95 but the hop only needed 0.9 => downstream tolerance
        // smaller than naive residual.
        let lt1 = update_loss_tolerance(0.1, 0.95);
        assert!(lt1 < 0.1 && lt1 > 0.0, "lt1 = {lt1}");
        // Exactly-achieving hop passes residual tolerance through.
        let lt_exact = update_loss_tolerance(0.1, 1.0);
        assert!((lt_exact - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tolerance_update_clamps() {
        assert_eq!(update_loss_tolerance(0.0, 0.5), 0.0);
        assert_eq!(update_loss_tolerance(1.0, 0.5), 1.0);
        assert_eq!(update_loss_tolerance(0.5, 0.0), 1.0);
    }

    #[test]
    fn loss_aware_allocation_shifts_effort_off_lossy_links() {
        let s = AllocationStrategy::LossAware {
            shift: 3.0,
            ref_loss: 0.1,
        };
        let equal = AllocationStrategy::EqualShare;
        let (lt, hops) = (0.2, 4);
        let q_clean = s.q_target(lt, hops, 0.02);
        let q_lossy = s.q_target(lt, hops, 0.5);
        let q_ref = s.q_target(lt, hops, 0.1);
        let q_eq = equal.q_target(lt, hops, 0.5);
        assert!(q_lossy < q_eq, "lossy link should get a lower target");
        assert!(q_clean > q_eq, "clean link should get a higher target");
        assert!(
            (q_ref - q_eq).abs() < 1e-12,
            "at reference loss: equal share"
        );
    }

    #[test]
    fn loss_aware_composition_still_meets_e2e() {
        // Walk a path of mixed link qualities; the achieved-q tolerance
        // update compensates local choices (uncapped attempts).
        let s = AllocationStrategy::LossAware {
            shift: 2.0,
            ref_loss: 0.1,
        };
        let losses = [0.05, 0.4, 0.1, 0.3];
        let e2e = 0.15;
        let mut lt = e2e;
        let mut product = 1.0;
        for (i, &p) in losses.iter().enumerate() {
            let remaining = (losses.len() - i) as u32;
            let q_t = s.q_target(lt, remaining, p);
            let m = max_attempts_for(q_t, p, 100); // effectively uncapped
            let q_a = achieved_success(p, m).max(q_t.min(1.0));
            product *= q_a;
            lt = update_loss_tolerance(lt, q_a.max(f64::MIN_POSITIVE));
        }
        assert!(
            product >= (1.0 - e2e) - 1e-9,
            "loss-aware path success {product} misses target {}",
            1.0 - e2e
        );
    }

    #[test]
    fn path_success_composes() {
        let p = [0.3, 0.3];
        let m = [2, 2];
        let q_hop = 1.0 - 0.09;
        assert!((path_success(&p, &m) - q_hop * q_hop).abs() < 1e-12);
    }
}
