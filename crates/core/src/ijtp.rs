//! iJTP — the hop-by-hop JTP module (§2.2.2, Algorithms 1 and 2).
//!
//! iJTP is the soft-state plug-in the MAC invokes *exactly before the
//! transmission* and *exactly after the reception* of every JTP packet. It
//! owns the node's packet cache and performs the per-packet header
//! operations:
//!
//! **PreXmit (Algorithm 1)** — on every transmission attempt:
//! 1. charge the attempt to the packet's `energy_used` account and drop the
//!    packet if it exceeds its `energy_budget` (the energy-conscious TTL),
//! 2. on the *first* attempt at this node: derive the per-hop success
//!    target from the header's loss tolerance and the remaining hop count
//!    (eq. 4), convert it to a MAC attempt budget using the link's measured
//!    loss rate (eq. 2), and update the header tolerance for the rest of
//!    the path (eq. 3),
//! 3. stamp the header's rate field with the minimum *effective* available
//!    rate so far: `min(rate, avail / avg_attempts)`.
//!
//! **PostRcv (Algorithm 2)** — after every reception:
//! * data packets are cached (LRU, §4),
//! * ACK packets have their SNACK checked against the cache: hits are
//!   re-injected toward the destination and moved into the ACK's
//!   locally-recovered field so upstream nodes and the source do not
//!   retransmit them again.

use crate::cache::{CacheStats, PacketCache};
use crate::packet::{AckPacket, DataPacket};
use crate::reliability;

/// Per-link state the MAC hands to iJTP at transmission time.
#[derive(Clone, Copy, Debug)]
pub struct LinkInfo {
    /// Estimated per-attempt loss probability on this link (MAC statistic).
    pub loss_rate: f64,
    /// Available transmission rate to this neighbour, packets/second
    /// (idle-slot statistic).
    pub avail_rate_pps: f64,
    /// Average MAC attempts per delivered frame on this link — normalises
    /// the available rate ("the available rate value must be normalized by
    /// the average number of MAC-level transmissions", §2.1.1).
    pub avg_attempts: f64,
    /// Energy one transmission attempt of this packet will cost (nJ).
    pub tx_energy_nj: u32,
    /// Links remaining to the destination *including this one*, from the
    /// node's (possibly stale) topology view.
    pub remaining_hops: u32,
}

/// Verdict of the PreXmit hook.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreXmitVerdict {
    /// Transmit. On the first attempt, carries the MAC attempt budget for
    /// this packet on this link.
    Forward {
        /// Maximum MAC transmissions for this packet on this link (eq. 2).
        max_attempts: u32,
    },
    /// Drop: the packet's energy budget is exhausted.
    DropEnergyExhausted,
}

/// Counters for the harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct IjtpStats {
    /// Packets dropped because `energy_used > energy_budget`.
    pub energy_drops: u64,
    /// Local (cache) retransmissions injected on behalf of sources.
    pub local_retransmissions: u64,
    /// ACKs processed.
    pub acks_seen: u64,
}

/// Per-node iJTP module.
#[derive(Clone, Debug)]
pub struct IjtpModule {
    cache: PacketCache,
    max_attempts_cap: u32,
    allocation: reliability::AllocationStrategy,
    stats: IjtpStats,
}

impl IjtpModule {
    /// Create with the node's cache capacity (0 = JNC, no caching) and the
    /// MAC's global attempt cap (Table 1: 5). Eviction is LRU.
    pub fn new(cache_capacity: usize, max_attempts_cap: u32) -> Self {
        Self::with_cache_policy(
            cache_capacity,
            max_attempts_cap,
            crate::cache::CachePolicy::Lru,
        )
    }

    /// Create with an explicit cache eviction policy (the paper's named
    /// future work; compared in the `ablation` harness).
    pub fn with_cache_policy(
        cache_capacity: usize,
        max_attempts_cap: u32,
        policy: crate::cache::CachePolicy,
    ) -> Self {
        IjtpModule {
            cache: PacketCache::with_policy(cache_capacity, policy),
            max_attempts_cap: max_attempts_cap.max(1),
            allocation: reliability::AllocationStrategy::EqualShare,
            stats: IjtpStats::default(),
        }
    }

    /// Select the per-hop reliability allocation strategy (§3: the paper
    /// uses the equal share; alternatives are its named future work).
    pub fn set_allocation(&mut self, strategy: reliability::AllocationStrategy) {
        self.allocation = strategy;
    }

    /// Algorithm 1. Call before *every* MAC transmission attempt of a data
    /// packet; `first_attempt` is true only for the first try of this
    /// packet at this node.
    pub fn pre_xmit_data(
        &mut self,
        packet: &mut DataPacket,
        link: &LinkInfo,
        first_attempt: bool,
    ) -> PreXmitVerdict {
        // 1: increaseEnergyUsed(packet)
        packet.energy_used_nj = packet.energy_used_nj.saturating_add(link.tx_energy_nj);
        // 2-3: budget check — the energy-conscious replacement for TTL.
        if packet.energy_used_nj > packet.energy_budget_nj {
            self.stats.energy_drops += 1;
            return PreXmitVerdict::DropEnergyExhausted;
        }
        let mut max_attempts = self.max_attempts_cap;
        if first_attempt {
            // 5-8: reliability allocation for this hop.
            let q_target = self.allocation.q_target(
                packet.loss_tolerance,
                link.remaining_hops.max(1),
                link.loss_rate,
            );
            max_attempts =
                reliability::max_attempts_for(q_target, link.loss_rate, self.max_attempts_cap);
            // Update the tolerance for the remainder of the path using the
            // success probability these attempts actually achieve, so any
            // over-achievement is not re-spent downstream.
            let q_achieved =
                reliability::achieved_success(link.loss_rate, max_attempts).max(q_target.min(1.0));
            packet.loss_tolerance = reliability::update_loss_tolerance(
                packet.loss_tolerance,
                q_achieved.max(f64::MIN_POSITIVE),
            );
            packet.remaining_hops = link.remaining_hops.saturating_sub(1) as u16;
        }
        // 10-12: stamp the minimum effective available rate.
        let effective = if link.avg_attempts > 0.0 {
            link.avail_rate_pps / link.avg_attempts
        } else {
            link.avail_rate_pps
        };
        if (effective as f32) < packet.rate_pps {
            packet.rate_pps = effective as f32;
        }
        PreXmitVerdict::Forward { max_attempts }
    }

    /// Algorithm 2, DATA branch: cache the traversing packet.
    pub fn post_rcv_data(&mut self, packet: &DataPacket) {
        self.cache.insert(packet.clone());
    }

    /// Algorithm 2, ACK branch: answer SNACK entries from the local cache.
    ///
    /// Returns the data packets to re-inject toward the destination; the
    /// ACK is modified in place (hits move from `snack` to
    /// `locally_recovered`) before it continues toward the source.
    pub fn post_rcv_ack(&mut self, ack: &mut AckPacket) -> Vec<DataPacket> {
        self.stats.acks_seen += 1;
        let mut retransmissions = Vec::new();
        for seq in ack.snack_seqs() {
            if !ack.wants_retransmission(seq) {
                continue; // already recovered by a node closer to the dest
            }
            if let Some(mut pkt) = self.cache.lookup(ack.flow, seq) {
                // Fresh delivery effort: the recovered copy starts a new
                // energy account (the original's spend is already sunk) and
                // the header rate is re-stamped from here on.
                pkt.energy_used_nj = 0;
                pkt.rate_pps = f32::MAX;
                ack.mark_locally_recovered(seq);
                self.stats.local_retransmissions += 1;
                retransmissions.push(pkt);
            }
        }
        retransmissions
    }

    /// The node's cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// iJTP counters.
    pub fn stats(&self) -> IjtpStats {
        self.stats
    }

    /// Direct cache access (tests, eviction experiments).
    pub fn cache(&self) -> &PacketCache {
        &self.cache
    }

    /// Mutable cache access.
    pub fn cache_mut(&mut self) -> &mut PacketCache {
        &mut self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtp_sim::FlowId;

    fn pkt(seq: u32, tolerance: f64, budget_nj: u32) -> DataPacket {
        DataPacket {
            flow: FlowId(1),
            seq,
            rate_pps: f32::MAX,
            loss_tolerance: tolerance,
            remaining_hops: 4,
            energy_budget_nj: budget_nj,
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: 800,
        }
    }

    fn link(loss: f64, hops: u32) -> LinkInfo {
        LinkInfo {
            loss_rate: loss,
            avail_rate_pps: 4.0,
            avg_attempts: 1.25,
            tx_energy_nj: 320_000, // 0.32 mJ
            remaining_hops: hops,
        }
    }

    #[test]
    fn energy_budget_drops_packet() {
        let mut m = IjtpModule::new(100, 5);
        let mut p = pkt(0, 0.0, 500_000);
        // First attempt: 320k of 500k used.
        assert!(matches!(
            m.pre_xmit_data(&mut p, &link(0.1, 3), true),
            PreXmitVerdict::Forward { .. }
        ));
        // Second attempt would reach 640k > 500k.
        assert_eq!(
            m.pre_xmit_data(&mut p, &link(0.1, 3), false),
            PreXmitVerdict::DropEnergyExhausted
        );
        assert_eq!(m.stats().energy_drops, 1);
    }

    #[test]
    fn zero_tolerance_gets_max_attempts_on_lossy_link() {
        let mut m = IjtpModule::new(100, 5);
        let mut p = pkt(0, 0.0, u32::MAX);
        match m.pre_xmit_data(&mut p, &link(0.4, 3), true) {
            PreXmitVerdict::Forward { max_attempts } => assert_eq!(max_attempts, 5),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn tolerant_packets_get_fewer_attempts() {
        let mut m = IjtpModule::new(100, 5);
        let mut strict = pkt(0, 0.0, u32::MAX);
        let mut loose = pkt(1, 0.9, u32::MAX);
        let l = link(0.3, 2);
        let a_strict = match m.pre_xmit_data(&mut strict, &l, true) {
            PreXmitVerdict::Forward { max_attempts } => max_attempts,
            _ => unreachable!(),
        };
        let a_loose = match m.pre_xmit_data(&mut loose, &l, true) {
            PreXmitVerdict::Forward { max_attempts } => max_attempts,
            _ => unreachable!(),
        };
        assert!(a_loose < a_strict, "loose {a_loose} !< strict {a_strict}");
    }

    #[test]
    fn tolerance_field_is_consumed_along_path() {
        let mut m = IjtpModule::new(100, 5);
        let mut p = pkt(0, 0.2, u32::MAX);
        let before = p.loss_tolerance;
        m.pre_xmit_data(&mut p, &link(0.1, 4), true);
        assert!(
            p.loss_tolerance <= before,
            "tolerance grew: {before} -> {}",
            p.loss_tolerance
        );
        assert_eq!(p.remaining_hops, 3);
    }

    #[test]
    fn rate_field_is_min_stamped() {
        let mut m = IjtpModule::new(100, 5);
        let mut p = pkt(0, 0.0, u32::MAX);
        // avail 4 pps / 1.25 attempts = 3.2 effective.
        m.pre_xmit_data(&mut p, &link(0.1, 3), true);
        assert!((p.rate_pps - 3.2).abs() < 1e-6);
        // A faster link downstream must not raise the stamp.
        let fast = LinkInfo {
            avail_rate_pps: 100.0,
            ..link(0.1, 2)
        };
        m.pre_xmit_data(&mut p, &fast, true);
        assert!((p.rate_pps - 3.2).abs() < 1e-6, "min is sticky");
    }

    #[test]
    fn retry_attempts_do_not_touch_reliability_fields() {
        let mut m = IjtpModule::new(100, 5);
        let mut p = pkt(0, 0.1, u32::MAX);
        m.pre_xmit_data(&mut p, &link(0.2, 3), true);
        let (tol, hops) = (p.loss_tolerance, p.remaining_hops);
        m.pre_xmit_data(&mut p, &link(0.2, 3), false);
        assert_eq!(p.loss_tolerance, tol);
        assert_eq!(p.remaining_hops, hops);
    }

    #[test]
    fn ack_snack_answered_from_cache() {
        let mut m = IjtpModule::new(100, 5);
        m.post_rcv_data(&pkt(7, 0.0, u32::MAX));
        let mut ack = AckPacket {
            flow: FlowId(1),
            cum_ack: 7,
            snack: vec![
                crate::packet::SeqRange::single(7),
                crate::packet::SeqRange::single(9),
            ],
            locally_recovered: vec![],
            rate_pps: 2.0,
            energy_budget_nj: 1_000_000,
            timeout: jtp_sim::SimDuration::from_secs(10),
        };
        let rtx = m.post_rcv_ack(&mut ack);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 7);
        assert_eq!(rtx[0].energy_used_nj, 0, "fresh energy account");
        assert!(!ack.wants_retransmission(7), "moved to recovered");
        assert!(ack.wants_retransmission(9), "cache miss stays snacked");
        assert_eq!(m.stats().local_retransmissions, 1);
    }

    #[test]
    fn recovered_entries_not_served_twice() {
        let mut m = IjtpModule::new(100, 5);
        m.post_rcv_data(&pkt(7, 0.0, u32::MAX));
        let mut ack = AckPacket {
            flow: FlowId(1),
            cum_ack: 7,
            snack: vec![crate::packet::SeqRange::single(7)],
            locally_recovered: vec![],
            rate_pps: 2.0,
            energy_budget_nj: 1_000_000,
            timeout: jtp_sim::SimDuration::from_secs(10),
        };
        // First node on the return path serves it…
        let rtx1 = m.post_rcv_ack(&mut ack);
        assert_eq!(rtx1.len(), 1);
        // …an upstream node with the same packet cached must not.
        let mut upstream = IjtpModule::new(100, 5);
        upstream.post_rcv_data(&pkt(7, 0.0, u32::MAX));
        let rtx2 = upstream.post_rcv_ack(&mut ack);
        assert!(rtx2.is_empty(), "duplicate local retransmission");
    }

    #[test]
    fn jnc_mode_never_recovers() {
        let mut m = IjtpModule::new(0, 5);
        m.post_rcv_data(&pkt(7, 0.0, u32::MAX));
        let mut ack = AckPacket {
            flow: FlowId(1),
            cum_ack: 0,
            snack: vec![crate::packet::SeqRange::single(7)],
            locally_recovered: vec![],
            rate_pps: 2.0,
            energy_budget_nj: 1_000_000,
            timeout: jtp_sim::SimDuration::from_secs(10),
        };
        assert!(m.post_rcv_ack(&mut ack).is_empty());
        assert!(ack.wants_retransmission(7));
    }
}
