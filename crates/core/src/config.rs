//! Protocol configuration with the paper's Table 1 defaults.

use jtp_sim::SimDuration;

/// All tunables of a JTP deployment. Defaults reproduce Table 1 of the
/// paper plus the controller/filter constants described in §5.
#[derive(Clone, Debug)]
pub struct JtpConfig {
    /// MAC cap on link-layer transmissions per packet (Table 1: 5).
    pub max_attempts: u32,
    /// Application payload bytes per packet (Table 1: 800).
    pub packet_payload_bytes: u16,
    /// In-network cache capacity in packets (Table 1: 1000).
    pub cache_capacity: usize,
    /// Cache eviction policy (paper: LRU; alternatives are the paper's
    /// named future work, compared by the ablation harness).
    pub cache_policy: crate::cache::CachePolicy,
    /// Per-hop reliability allocation (paper: equal share, eq. 4).
    pub allocation: crate::reliability::AllocationStrategy,
    /// Lower bound on the regular feedback period (Table 1: 10 s).
    pub t_lower_bound: SimDuration,
    /// Feedback aggregation factor `n` in `T = max(T_lb, n / rate)` (§5.1).
    pub feedback_aggregation: f64,
    /// Integral gain of the PI²/MD rate controller, `0 < K_I < 1` (eq. 9).
    pub k_i: f64,
    /// Multiplicative-decrease factor, `0 < K_D < 1` (eq. 10).
    pub k_d: f64,
    /// Target available-rate margin δ ≥ 0 (pps): decrease when the
    /// monitored available rate drops below it (§5.2.1).
    pub delta_avail_pps: f64,
    /// Energy-budget importance factor β > 1 (eq. 13).
    pub beta_energy: f64,
    /// Minimum spacing between PI² rate *increases*. Decreases apply on
    /// every feedback (timely back-off is the point of early feedback),
    /// but increases are rate-limited in time so the controller's
    /// aggressiveness does not depend on how often feedback happens to be
    /// transported (§5.2.2: lower update frequency still converges).
    pub min_increase_interval: SimDuration,
    /// Stable-filter EWMA weights (α, β of eq. 7).
    pub stable_alpha: f64,
    /// Stable-filter range weight.
    pub stable_beta: f64,
    /// Agile-filter mean weight ("a larger α value … so that x̄ catches
    /// up", §5.1).
    pub agile_alpha: f64,
    /// Consecutive outliers before declaring a persistent change and
    /// triggering early feedback (§5.1).
    pub outlier_trigger: u32,
    /// Minimum spacing between early feedbacks. A persistent excursion
    /// keeps re-triggering (sustained overload needs sustained back-off)
    /// but no more often than this, so a short fade costs one multiplica-
    /// tive decrease rather than one per outlier batch.
    pub min_early_feedback_spacing: SimDuration,
    /// Initial sending rate (pps) before any feedback arrives.
    pub initial_rate_pps: f64,
    /// Ceiling on the sending rate (the receiver also limits by its
    /// delivery rate up the stack; this models that bound).
    pub max_rate_pps: f64,
    /// Floor on the sending rate so a flow can always probe.
    pub min_rate_pps: f64,
    /// Initial per-packet energy budget, nanojoules; refreshed by the
    /// energy-budget controller feedback afterwards.
    pub initial_energy_budget_nj: u32,
    /// Whether intermediate nodes cache data packets (switching this off
    /// yields the paper's JNC comparison protocol).
    pub caching_enabled: bool,
    /// Whether the source backs off for locally recovered packets (§4.2;
    /// switching this off reproduces Fig. 5(b)).
    pub backoff_on_local_recovery: bool,
    /// Use variable-rate feedback (§5.1). When `false` the receiver sends
    /// feedback at the constant rate `1 / constant_feedback_period`
    /// (reproducing Fig. 7's constant-rate sweeps).
    pub variable_feedback: bool,
    /// Feedback period used when `variable_feedback == false`.
    pub constant_feedback_period: SimDuration,
}

impl Default for JtpConfig {
    fn default() -> Self {
        JtpConfig {
            max_attempts: 5,
            packet_payload_bytes: 800,
            cache_capacity: 1000,
            cache_policy: crate::cache::CachePolicy::Lru,
            allocation: crate::reliability::AllocationStrategy::EqualShare,
            t_lower_bound: SimDuration::from_secs(10),
            feedback_aggregation: 8.0,
            k_i: 0.25,
            k_d: 0.85,
            delta_avail_pps: 0.1,
            beta_energy: 2.0,
            min_increase_interval: SimDuration::from_secs(10),
            stable_alpha: 0.1,
            stable_beta: 0.1,
            agile_alpha: 0.6,
            outlier_trigger: 3,
            min_early_feedback_spacing: SimDuration::from_secs(3),
            initial_rate_pps: 1.0,
            max_rate_pps: 50.0,
            min_rate_pps: 0.1,
            initial_energy_budget_nj: 20_000_000, // 20 mJ ≈ many-hop budget
            caching_enabled: true,
            backoff_on_local_recovery: true,
            variable_feedback: true,
            constant_feedback_period: SimDuration::from_secs(10),
        }
    }
}

impl JtpConfig {
    /// The JNC variant: JTP with in-network caching disabled (§4.1).
    pub fn jnc() -> Self {
        JtpConfig {
            caching_enabled: false,
            ..Default::default()
        }
    }

    /// Validate invariants; call after hand-building configs.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1".into());
        }
        if !(self.k_i > 0.0 && self.k_i < 1.0) {
            return Err(format!("K_I must be in (0,1), got {}", self.k_i));
        }
        if !(self.k_d > 0.0 && self.k_d < 1.0) {
            return Err(format!("K_D must be in (0,1), got {}", self.k_d));
        }
        if self.beta_energy <= 1.0 {
            return Err(format!(
                "beta (energy importance) must be > 1, got {}",
                self.beta_energy
            ));
        }
        if !(0.0 < self.stable_alpha
            && self.stable_alpha <= 1.0
            && 0.0 < self.agile_alpha
            && self.agile_alpha <= 1.0)
        {
            return Err("filter weights must be in (0,1]".into());
        }
        if self.agile_alpha <= self.stable_alpha {
            return Err("agile filter must be faster than stable filter".into());
        }
        if self.min_rate_pps <= 0.0 || self.max_rate_pps < self.min_rate_pps {
            return Err("rate bounds must satisfy 0 < min <= max".into());
        }
        if self.outlier_trigger == 0 {
            return Err("outlier_trigger must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_and_validates() {
        let c = JtpConfig::default();
        assert_eq!(c.max_attempts, 5);
        assert_eq!(c.packet_payload_bytes, 800);
        assert_eq!(c.cache_capacity, 1000);
        assert_eq!(c.t_lower_bound, SimDuration::from_secs(10));
        c.validate().unwrap();
    }

    #[test]
    fn jnc_disables_caching_only() {
        let c = JtpConfig::jnc();
        assert!(!c.caching_enabled);
        assert_eq!(c.max_attempts, JtpConfig::default().max_attempts);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_gains() {
        for (ki, kd) in [(0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0)] {
            let c = JtpConfig {
                k_i: ki,
                k_d: kd,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "K_I={ki} K_D={kd} accepted");
        }
    }

    #[test]
    fn validation_rejects_beta_below_one() {
        let c = JtpConfig {
            beta_energy: 0.9,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_slow_agile_filter() {
        let c = JtpConfig {
            agile_alpha: 0.05,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
