//! The in-network packet cache (§4 of the paper).
//!
//! Every intermediate node temporarily stores traversing data packets so a
//! lost packet can be recovered "as close to the receiver as possible"
//! instead of from the source. Eviction is **LRU** — "the packet evicted
//! from the cache is the least recently manipulated" — where *manipulated*
//! means inserted **or** served for a retransmission request.
//!
//! The cache is soft state: nothing breaks if entries vanish (the source
//! still holds every unacknowledged packet, preserving the end-to-end
//! argument); a hit merely saves upstream transmissions.

use crate::packet::DataPacket;
use jtp_sim::FlowId;
use std::collections::HashMap;

/// Key identifying a cached packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub seq: u32,
}

/// Eviction policy. The paper uses LRU and names the study of
/// alternatives as future work (§4); the alternatives are implemented
/// here so the `ablation` harness can compare them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CachePolicy {
    /// Least-recently-manipulated (inserted or served) — the paper's
    /// choice: "it is unlikely that those packets not recently requested
    /// for retransmission would be ever requested in the future".
    #[default]
    Lru,
    /// First-in first-out: age of insertion only; serving a request does
    /// not protect an entry.
    Fifo,
    /// Evict the entry with the deterministic pseudo-random smallest
    /// priority (hash of key) — a baseline strategy with no recency
    /// signal at all.
    Random,
}

/// Counters exposed for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Packets inserted.
    pub insertions: u64,
    /// Retransmission requests answered from the cache.
    pub hits: u64,
    /// Retransmission requests that missed.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
}

/// In-network cache of data packets, bounded by a packet-count capacity
/// (Table 1 default: 1000 packets), with a configurable eviction policy
/// (LRU by default, as in the paper).
#[derive(Clone, Debug)]
pub struct PacketCache {
    capacity: usize,
    policy: CachePolicy,
    map: HashMap<CacheKey, (u64, DataPacket)>,
    /// Logical clock for recency; u64 never wraps in practice.
    clock: u64,
    stats: CacheStats,
}

/// Deterministic priority for the Random policy (FNV-style key hash).
fn key_priority(k: &CacheKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in k
        .flow
        .0
        .to_le_bytes()
        .into_iter()
        .chain(k.seq.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl PacketCache {
    /// Create an LRU cache holding at most `capacity` packets. A capacity
    /// of 0 disables caching entirely (the paper's JNC variant).
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, CachePolicy::Lru)
    }

    /// Create with an explicit eviction policy.
    pub fn with_policy(capacity: usize, policy: CachePolicy) -> Self {
        PacketCache {
            capacity,
            policy,
            map: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Insert (or refresh) a traversing packet, evicting per policy when
    /// full.
    pub fn insert(&mut self, packet: DataPacket) {
        if self.capacity == 0 {
            return;
        }
        let key = CacheKey {
            flow: packet.flow,
            seq: packet.seq,
        };
        let stamp = self.tick();
        if self.map.insert(key, (stamp, packet)).is_none() {
            self.stats.insertions += 1;
            if self.map.len() > self.capacity {
                self.evict_one();
            }
        }
    }

    fn evict_one(&mut self) {
        let victim = match self.policy {
            // Lru and Fifo both evict the smallest stamp; they differ in
            // whether lookups refresh it (see `lookup`).
            CachePolicy::Lru | CachePolicy::Fifo => self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k),
            CachePolicy::Random => self.map.keys().min_by_key(|k| key_priority(k)).copied(),
        };
        if let Some(key) = victim {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Look up a packet for retransmission. Under LRU a hit refreshes
    /// recency (the "recently manipulated" rule); FIFO/Random do not.
    pub fn lookup(&mut self, flow: FlowId, seq: u32) -> Option<DataPacket> {
        let key = CacheKey { flow, seq };
        let stamp = self.tick();
        let refresh = self.policy == CachePolicy::Lru;
        match self.map.get_mut(&key) {
            Some((s, pkt)) => {
                if refresh {
                    *s = stamp;
                }
                self.stats.hits += 1;
                Some(pkt.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without affecting recency or stats (used by tests/inspection).
    pub fn contains(&self, flow: FlowId, seq: u32) -> bool {
        self.map.contains_key(&CacheKey { flow, seq })
    }

    /// Drop every entry of a flow (e.g. on connection teardown).
    pub fn purge_flow(&mut self, flow: FlowId) {
        self.map.retain(|k, _| k.flow != flow);
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u16, seq: u32) -> DataPacket {
        DataPacket {
            flow: FlowId(flow),
            seq,
            rate_pps: 1.0,
            loss_tolerance: 0.0,
            remaining_hops: 2,
            energy_budget_nj: 1_000_000,
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: 800,
        }
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = PacketCache::new(10);
        c.insert(pkt(1, 5));
        assert!(c.contains(FlowId(1), 5));
        let got = c.lookup(FlowId(1), 5).unwrap();
        assert_eq!(got.seq, 5);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn miss_counts() {
        let mut c = PacketCache::new(10);
        assert!(c.lookup(FlowId(1), 9).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = PacketCache::new(3);
        c.insert(pkt(1, 0));
        c.insert(pkt(1, 1));
        c.insert(pkt(1, 2));
        // Touch 0 so 1 becomes the least recently manipulated.
        c.lookup(FlowId(1), 0);
        c.insert(pkt(1, 3));
        assert!(c.contains(FlowId(1), 0), "recently touched survives");
        assert!(!c.contains(FlowId(1), 1), "LRU evicted");
        assert!(c.contains(FlowId(1), 2));
        assert!(c.contains(FlowId(1), 3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut c = PacketCache::new(2);
        c.insert(pkt(1, 0));
        c.insert(pkt(1, 1));
        c.insert(pkt(1, 0)); // refresh
        c.insert(pkt(1, 2)); // should evict 1, not 0
        assert!(c.contains(FlowId(1), 0));
        assert!(!c.contains(FlowId(1), 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PacketCache::new(0);
        c.insert(pkt(1, 0));
        assert!(c.is_empty());
        assert!(c.lookup(FlowId(1), 0).is_none());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn purge_flow_is_selective() {
        let mut c = PacketCache::new(10);
        c.insert(pkt(1, 0));
        c.insert(pkt(2, 0));
        c.purge_flow(FlowId(1));
        assert!(!c.contains(FlowId(1), 0));
        assert!(c.contains(FlowId(2), 0));
    }

    #[test]
    fn capacity_is_respected_under_pressure() {
        let mut c = PacketCache::new(5);
        for s in 0..100 {
            c.insert(pkt(1, s));
            assert!(c.len() <= 5);
        }
        assert_eq!(c.stats().evictions, 95);
        // The five most recent survive.
        for s in 95..100 {
            assert!(c.contains(FlowId(1), s));
        }
    }

    #[test]
    fn fifo_does_not_protect_served_entries() {
        let mut c = PacketCache::with_policy(3, CachePolicy::Fifo);
        c.insert(pkt(1, 0));
        c.insert(pkt(1, 1));
        c.insert(pkt(1, 2));
        // Touch 0: under FIFO this must NOT protect it.
        c.lookup(FlowId(1), 0);
        c.insert(pkt(1, 3));
        assert!(!c.contains(FlowId(1), 0), "FIFO evicts oldest insertion");
        assert!(c.contains(FlowId(1), 1));
    }

    #[test]
    fn random_policy_respects_capacity_and_is_deterministic() {
        let mut a = PacketCache::with_policy(4, CachePolicy::Random);
        let mut b = PacketCache::with_policy(4, CachePolicy::Random);
        for s in 0..50 {
            a.insert(pkt(1, s));
            b.insert(pkt(1, s));
            assert!(a.len() <= 4);
        }
        for s in 0..50 {
            assert_eq!(a.contains(FlowId(1), s), b.contains(FlowId(1), s));
        }
        assert_eq!(a.stats().evictions, 46);
    }

    #[test]
    fn policy_accessor() {
        assert_eq!(PacketCache::new(1).policy(), CachePolicy::Lru);
        assert_eq!(
            PacketCache::with_policy(1, CachePolicy::Fifo).policy(),
            CachePolicy::Fifo
        );
    }

    #[test]
    fn flows_do_not_collide() {
        let mut c = PacketCache::new(10);
        c.insert(pkt(1, 7));
        c.insert(pkt(2, 7));
        assert!(c.lookup(FlowId(1), 7).is_some());
        assert!(c.lookup(FlowId(2), 7).is_some());
        assert_eq!(c.len(), 2);
    }
}
