//! Path monitoring with flip-flop filtering (§5.1 of the paper).
//!
//! The destination samples path metrics (minimum available rate along the
//! path, per-packet energy used) and keeps EWMA estimates of mean `x̄` and
//! moving range `R̄` (eq. 7) with Shewhart-style control limits
//! `x̄ ± 3·R̄/1.128` (eq. 8).
//!
//! Under normal operation a **stable** filter (small α, β) smooths away
//! short-term noise. When a configurable number of *consecutive outliers*
//! indicates a significant, persistent change, the monitor (a) signals that
//! an **early feedback** should be sent to the source and (b) flips to an
//! **agile** filter (large α) so the estimate catches up quickly. Once
//! samples fall back inside the limits, the monitor flips back to the
//! stable filter. This stable/agile pair is the *flip-flop filter*.

use jtp_sim::stats::MeanRange;

/// Which filter configuration is currently active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FilterMode {
    /// Small weights: short-term variations are filtered out.
    Stable,
    /// Large mean weight: the estimate chases the signal.
    Agile,
}

/// Outcome of feeding one sample to the monitor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MonitorVerdict {
    /// The sample fell outside the control limits.
    pub outlier: bool,
    /// The consecutive-outlier threshold was crossed by this sample: the
    /// path state changed persistently, send feedback *now*.
    pub trigger_feedback: bool,
}

/// One metric's flip-flop monitor.
#[derive(Clone, Debug)]
pub struct FlipFlopMonitor {
    filter: MeanRange,
    stable_alpha: f64,
    stable_beta: f64,
    agile_alpha: f64,
    outlier_trigger: u32,
    consecutive_outliers: u32,
    mode: FilterMode,
    samples_seen: u64,
}

impl FlipFlopMonitor {
    /// Create a monitor.
    ///
    /// * `stable_alpha`, `stable_beta` — eq. (7) weights of the stable
    ///   filter,
    /// * `agile_alpha` — mean weight while agile (range weight keeps
    ///   `stable_beta`),
    /// * `outlier_trigger` — consecutive outliers indicating persistent
    ///   change (the paper: "a certain number of consecutive outliers").
    pub fn new(
        stable_alpha: f64,
        stable_beta: f64,
        agile_alpha: f64,
        outlier_trigger: u32,
    ) -> Self {
        assert!(outlier_trigger >= 1);
        FlipFlopMonitor {
            filter: MeanRange::new(stable_alpha, stable_beta),
            stable_alpha,
            stable_beta,
            agile_alpha,
            outlier_trigger,
            consecutive_outliers: 0,
            mode: FilterMode::Stable,
            samples_seen: 0,
        }
    }

    /// Feed one sample.
    pub fn observe(&mut self, x: f64) -> MonitorVerdict {
        self.samples_seen += 1;
        // The first sample initialises the filter; it cannot be an outlier.
        if self.samples_seen == 1 {
            self.filter.update(x);
            return MonitorVerdict {
                outlier: false,
                trigger_feedback: false,
            };
        }
        let outlier = self.filter.is_outlier(x);
        let mut trigger = false;
        if outlier {
            self.consecutive_outliers += 1;
            // Outliers move the mean (so the agile filter can catch up) but
            // are excluded from the range estimate (§5.1).
            self.filter.update_mean_only(x);
            // Persistent change: trigger on the k-th consecutive outlier
            // and keep re-triggering every further k outliers while the
            // excursion lasts — sustained overload must produce sustained
            // feedback ("whenever the system load increases, it sends a
            // timely feedback forcing the sender to back off", §5.1).
            if self
                .consecutive_outliers
                .is_multiple_of(self.outlier_trigger)
            {
                trigger = true;
                self.enter_agile();
            }
        } else {
            self.consecutive_outliers = 0;
            self.filter.update(x);
            if self.mode == FilterMode::Agile {
                self.enter_stable();
            }
        }
        MonitorVerdict {
            outlier,
            trigger_feedback: trigger,
        }
    }

    fn enter_agile(&mut self) {
        self.mode = FilterMode::Agile;
        self.filter.set_weights(self.agile_alpha, self.stable_beta);
    }

    fn enter_stable(&mut self) {
        self.mode = FilterMode::Stable;
        self.filter.set_weights(self.stable_alpha, self.stable_beta);
    }

    /// Current filter mode.
    pub fn mode(&self) -> FilterMode {
        self.mode
    }

    /// Current mean estimate x̄.
    pub fn mean(&self) -> Option<f64> {
        self.filter.mean()
    }

    /// Current upper control limit (eq. 8).
    pub fn ucl(&self) -> Option<f64> {
        self.filter.ucl()
    }

    /// Current lower control limit (eq. 8).
    pub fn lcl(&self) -> Option<f64> {
        self.filter.lcl()
    }

    /// Samples observed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> FlipFlopMonitor {
        FlipFlopMonitor::new(0.1, 0.1, 0.6, 3)
    }

    /// Feed a stable signal with small noise.
    fn feed_stable(m: &mut FlipFlopMonitor, level: f64, n: usize) {
        for i in 0..n {
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            m.observe(level + noise);
        }
    }

    #[test]
    fn first_sample_never_outlier() {
        let mut m = monitor();
        let v = m.observe(100.0);
        assert!(!v.outlier && !v.trigger_feedback);
        assert_eq!(m.mean(), Some(100.0));
    }

    #[test]
    fn stable_signal_stays_stable() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 200);
        assert_eq!(m.mode(), FilterMode::Stable);
        assert!((m.mean().unwrap() - 10.0).abs() < 0.1);
    }

    #[test]
    fn level_shift_triggers_after_k_outliers() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 100);
        // Jump far outside the control limits.
        let v1 = m.observe(30.0);
        assert!(v1.outlier && !v1.trigger_feedback);
        let v2 = m.observe(30.0);
        assert!(v2.outlier && !v2.trigger_feedback);
        let v3 = m.observe(30.0);
        assert!(v3.outlier && v3.trigger_feedback, "third outlier triggers");
        assert_eq!(m.mode(), FilterMode::Agile);
    }

    #[test]
    fn agile_filter_catches_up_quickly() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 100);
        for _ in 0..3 {
            m.observe(30.0);
        }
        assert_eq!(m.mode(), FilterMode::Agile);
        // A few agile samples pull the mean most of the way to 30.
        for _ in 0..5 {
            m.observe(30.0);
        }
        assert!(m.mean().unwrap() > 27.0, "mean = {:?}", m.mean());
    }

    #[test]
    fn returns_to_stable_when_back_in_limits() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 100);
        for _ in 0..4 {
            m.observe(30.0);
        }
        assert_eq!(m.mode(), FilterMode::Agile);
        // Keep feeding 30: once the mean has caught up, 30 is inside the
        // limits and the monitor flips back to stable.
        let mut flipped = false;
        for i in 0..50 {
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            m.observe(30.0 + noise);
            if m.mode() == FilterMode::Stable {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "never returned to stable");
    }

    #[test]
    fn isolated_outliers_do_not_trigger() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 100);
        for _ in 0..10 {
            // One outlier, then normal samples: counter must reset.
            let v = m.observe(25.0);
            assert!(!v.trigger_feedback);
            feed_stable(&mut m, 10.0, 5);
        }
        assert_eq!(m.mode(), FilterMode::Stable);
    }

    #[test]
    fn trigger_fires_every_k_outliers_during_excursion() {
        let mut m = monitor();
        feed_stable(&mut m, 10.0, 100);
        let mut triggers = 0;
        for _ in 0..10 {
            if m.observe(40.0).trigger_feedback {
                triggers += 1;
            }
        }
        // k = 3: triggers at the 3rd, 6th and 9th consecutive outlier
        // (unless the agile filter catches up and re-admits the samples).
        assert!(
            (1..=3).contains(&triggers),
            "expected periodic re-triggering, got {triggers}"
        );
        assert!(triggers >= 1, "the threshold crossing must trigger");
    }

    #[test]
    fn control_limits_bracket_mean() {
        let mut m = monitor();
        feed_stable(&mut m, 5.0, 50);
        let mean = m.mean().unwrap();
        assert!(m.ucl().unwrap() > mean);
        assert!(m.lcl().unwrap() < mean);
    }
}
