//! Destination-based congestion avoidance controllers (§5.2 of the paper).
//!
//! * [`RateController`] — the **PI²/MD** sending-rate controller (eqs 9–10):
//!   when the monitored available path rate `A̅` exceeds the target margin
//!   `δ`, increase `r ← r + K_I·A̅/r` (proportional to headroom, inversely
//!   proportional to the current rate for fairness); otherwise decrease
//!   multiplicatively `r ← K_D·r`. §5.2.2 proves Lyapunov stability for any
//!   `K_I > 0`, `K_D < 1`; a property test in this module re-checks the
//!   decrease of `V(r) = |C − r|` on the fixed-capacity model of eqs 11–12.
//! * [`EnergyBudgetController`] — eq. (13): the per-packet energy budget
//!   fed back to the source is `e = β · eUCL`, where `eUCL` is the current
//!   upper control limit of the energy flip-flop monitor and `β > 1` scales
//!   with packet importance.

/// PI²/MD sending-rate controller state (lives at the eJTP destination).
#[derive(Clone, Debug)]
pub struct RateController {
    k_i: f64,
    k_d: f64,
    delta: f64,
    min_rate: f64,
    max_rate: f64,
    rate: f64,
}

impl RateController {
    /// Create with gains `k_i ∈ (0,1)`, `k_d ∈ (0,1)`, available-rate
    /// margin `delta ≥ 0` and rate bounds.
    pub fn new(k_i: f64, k_d: f64, delta: f64, min_rate: f64, max_rate: f64, initial: f64) -> Self {
        assert!(k_i > 0.0 && k_i < 1.0, "K_I must be in (0,1)");
        assert!(k_d > 0.0 && k_d < 1.0, "K_D must be in (0,1)");
        assert!(delta >= 0.0);
        assert!(min_rate > 0.0 && max_rate >= min_rate);
        RateController {
            k_i,
            k_d,
            delta,
            min_rate,
            max_rate,
            rate: initial.clamp(min_rate, max_rate),
        }
    }

    /// Current sending rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Clamp helper.
    fn clamped(&self, r: f64) -> f64 {
        r.clamp(self.min_rate, self.max_rate)
    }

    /// Apply one controller step given the monitored average available
    /// path rate `avail` (pps). Returns the new sending rate.
    pub fn update(&mut self, avail: f64) -> f64 {
        self.rate = if avail > self.delta {
            // PI² increase (eq. 9).
            self.clamped(self.rate + self.k_i * avail / self.rate)
        } else {
            // Multiplicative decrease (eq. 10).
            self.clamped(self.rate * self.k_d)
        };
        self.rate
    }

    /// Multiplicative back-off applied when the sender misses expected
    /// feedback (§2.1.2: "if the sender does not get an ACK within the
    /// expected feedback delay, it backs off its transmission rate").
    pub fn feedback_timeout_backoff(&mut self) -> f64 {
        self.rate = self.clamped(self.rate * self.k_d);
        self.rate
    }

    /// Override the rate (receiver side limits by app delivery rate).
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = self.clamped(rate);
    }
}

/// Energy-budget controller (eq. 13): `e(t+1) = β · eUCL(t)`.
#[derive(Clone, Debug)]
pub struct EnergyBudgetController {
    beta: f64,
    fallback_nj: u32,
}

impl EnergyBudgetController {
    /// `beta > 1` expresses packet importance; `fallback_nj` is used before
    /// the energy monitor has samples.
    pub fn new(beta: f64, fallback_nj: u32) -> Self {
        assert!(
            beta > 1.0,
            "beta must exceed 1 so outliers remain detectable"
        );
        EnergyBudgetController { beta, fallback_nj }
    }

    /// Compute the budget to feed back given the current energy-monitor
    /// upper control limit (in nanojoules), if any.
    pub fn budget_nj(&self, energy_ucl_nj: Option<f64>) -> u32 {
        match energy_ucl_nj {
            Some(ucl) if ucl > 0.0 => {
                let e = self.beta * ucl;
                if e >= u32::MAX as f64 {
                    u32::MAX
                } else {
                    e.round() as u32
                }
            }
            _ => self.fallback_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(initial: f64) -> RateController {
        RateController::new(0.25, 0.85, 0.1, 0.01, 1000.0, initial)
    }

    #[test]
    fn increase_when_headroom() {
        let mut c = ctl(2.0);
        let r = c.update(4.0); // plenty available
        assert!(r > 2.0);
        // Increase magnitude is K_I * A / r.
        assert!((r - (2.0 + 0.25 * 4.0 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn decrease_when_no_headroom() {
        let mut c = ctl(2.0);
        let r = c.update(0.05); // below delta
        assert!((r - 2.0 * 0.85).abs() < 1e-12);
    }

    #[test]
    fn fairness_lower_rate_grows_faster() {
        let mut slow = ctl(1.0);
        let mut fast = ctl(8.0);
        let d_slow = slow.update(4.0) - 1.0;
        let d_fast = fast.update(4.0) - 8.0;
        assert!(d_slow > d_fast, "inverse-proportional increase");
    }

    #[test]
    fn converges_to_capacity_from_below_and_above() {
        // Fixed-capacity model of §5.2.2: avail = C - r (eq. 11) when
        // r < C, multiplicative decrease when r > C (eq. 12).
        let capacity = 10.0;
        for &start in &[1.0, 25.0] {
            let mut c = ctl(start);
            for _ in 0..500 {
                let avail = capacity - c.rate();
                c.update(avail);
            }
            // Steady state is a limit cycle of width ~C·(1−K_D) around C.
            let band = capacity * (1.0 - 0.85) + 0.5;
            assert!(
                (c.rate() - capacity).abs() <= band,
                "from {start}: settled at {}",
                c.rate()
            );
        }
    }

    #[test]
    fn lyapunov_decreases_each_step() {
        // V(r) = |C - r| must not increase (allowing the small K_I
        // overshoot band around C).
        let capacity = 10.0;
        let mut c = ctl(1.0);
        let mut v_prev = (capacity - c.rate()).abs();
        for _ in 0..100 {
            let avail = capacity - c.rate();
            c.update(avail);
            let v = (capacity - c.rate()).abs();
            if v_prev > 0.5 {
                assert!(v < v_prev + 1e-9, "V increased: {v_prev} -> {v}");
            }
            v_prev = v;
        }
    }

    #[test]
    fn rate_respects_bounds() {
        let mut c = RateController::new(0.25, 0.5, 0.1, 1.0, 5.0, 3.0);
        for _ in 0..50 {
            c.update(1000.0);
        }
        assert_eq!(c.rate(), 5.0, "capped at max");
        for _ in 0..50 {
            c.update(0.0);
        }
        assert_eq!(c.rate(), 1.0, "floored at min");
    }

    #[test]
    fn timeout_backoff_is_multiplicative() {
        let mut c = ctl(4.0);
        let r = c.feedback_timeout_backoff();
        assert!((r - 4.0 * 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "K_I must be in (0,1)")]
    fn rejects_bad_ki() {
        RateController::new(1.5, 0.5, 0.0, 0.1, 10.0, 1.0);
    }

    #[test]
    fn energy_budget_scales_ucl() {
        let c = EnergyBudgetController::new(2.0, 5_000);
        assert_eq!(c.budget_nj(Some(1_000_000.0)), 2_000_000);
        assert_eq!(c.budget_nj(None), 5_000, "fallback before samples");
        assert_eq!(c.budget_nj(Some(0.0)), 5_000, "degenerate UCL");
        assert_eq!(c.budget_nj(Some(f64::MAX)), u32::MAX, "saturates");
    }

    #[test]
    #[should_panic(expected = "beta must exceed 1")]
    fn energy_budget_rejects_small_beta() {
        EnergyBudgetController::new(1.0, 0);
    }
}
