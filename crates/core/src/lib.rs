//! # jtp — the JAVeLEN Transport Protocol
//!
//! A from-scratch Rust implementation of **JTP**, the energy-conscious
//! transport protocol of Riga, Matta, Medina, Partridge and Redi
//! (*An Energy-conscious Transport Protocol for Multi-hop Wireless
//! Networks*, CoNEXT 2007 / BU technical report BUCS-2007-014).
//!
//! JTP minimises the **total number of node transmissions** needed to meet
//! an application's delivery requirements, via three coordinated mechanisms:
//!
//! 1. **Balanced end-to-end vs. local retransmission** — per-packet loss
//!    tolerance bounds the MAC retransmission effort on each hop
//!    ([`reliability`], §3 of the paper), and in-network caches retransmit
//!    on the source's behalf ([`cache`], [`ijtp`], §4).
//! 2. **Minimal acknowledgment traffic** — the receiver controls all
//!    transmission parameters and sends feedback at a variable rate set by
//!    path stability ([`monitor`], [`receiver`], §5), combining cumulative
//!    ACKs with selective negative ACKs (SNACKs).
//! 3. **Congestion avoidance instead of congestion control** — explicit
//!    available-rate feedback drives a PI²/MD rate controller so queues are
//!    never deliberately overflowed ([`controller`], §5.2).
//!
//! The crate is split the way the paper splits the protocol:
//!
//! * **eJTP** (end-to-end): [`sender::JtpSender`], [`receiver::JtpReceiver`]
//!   — connection endpoints, path monitoring, rate/energy control,
//! * **iJTP** (hop-by-hop): [`ijtp::IjtpModule`] — the per-node soft-state
//!   module the MAC invokes before transmitting and after receiving every
//!   JTP packet (Algorithms 1 and 2 of the paper).
//!
//! Everything is a passive, deterministic state machine in the smoltcp
//! style: endpoints are *polled* with the current time and return packets to
//! emit plus the next instant they need attention. This keeps the protocol
//! logic independent of any particular simulator, MAC or OS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod controller;
pub mod ijtp;
pub mod monitor;
pub mod packet;
pub mod receiver;
pub mod reliability;
pub mod sender;

pub use cache::{CachePolicy, PacketCache};
pub use config::JtpConfig;
pub use controller::{EnergyBudgetController, RateController};
pub use ijtp::{IjtpModule, LinkInfo, PreXmitVerdict};
pub use monitor::FlipFlopMonitor;
pub use packet::{AckPacket, DataPacket, SeqRange};
pub use receiver::JtpReceiver;
pub use reliability::AllocationStrategy;
pub use sender::JtpSender;
