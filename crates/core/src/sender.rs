//! eJTP source: rate-paced transmission under full receiver control.
//!
//! The sender is deliberately simple — the paper moves all decision making
//! to the destination. The source:
//!
//! * paces data packets at the rate the receiver last fed back (it never
//!   chooses its own rate, §5),
//! * stamps each packet's loss tolerance, energy budget and deadline from
//!   the application profile and the latest feedback,
//! * retains a copy of every packet until the cumulative ACK covers it
//!   (the end-to-end argument: caches are only an optimisation, §4),
//! * retransmits only packets that remain in the SNACK after in-network
//!   caches had their chance (the locally-recovered field),
//! * **backs off** `t_b = Σ s_j / r(t)` for packets recovered inside the
//!   network on its behalf, keeping the aggregate rate fair (§4.2, Fig. 5),
//! * backs off multiplicatively when expected feedback does not arrive
//!   (rate-based control is vulnerable to feedback loss, §2.1.2).

use crate::config::JtpConfig;
use crate::packet::{AckPacket, DataPacket};
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Sender-side statistics for the harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// Fresh data packets transmitted (first transmissions).
    pub fresh_sent: u64,
    /// End-to-end (source) retransmissions.
    pub source_retransmissions: u64,
    /// Packets the network recovered locally on our behalf (as reported by
    /// the locally-recovered ACK field).
    pub locally_recovered: u64,
    /// Feedback packets received.
    pub acks_received: u64,
    /// Feedback-timeout rate back-offs taken.
    pub timeout_backoffs: u64,
    /// Total back-off time inserted for local recoveries.
    pub backoff_time: SimDuration,
}

/// The eJTP source endpoint of one JTP connection.
#[derive(Clone, Debug)]
pub struct JtpSender {
    flow: FlowId,
    cfg: JtpConfig,
    /// Application loss tolerance stamped into each packet.
    loss_tolerance: f64,
    /// Packets the application has asked to transfer.
    total_packets: u32,
    /// Next fresh sequence to transmit.
    next_seq: u32,
    /// Copies retained until cumulatively acknowledged.
    unacked: BTreeMap<u32, DataPacket>,
    /// Sequences queued for end-to-end retransmission.
    rtx_queue: VecDeque<u32>,
    /// Receiver-controlled sending rate (pps).
    rate_pps: f64,
    /// Per-packet energy budget from the latest feedback.
    energy_budget_nj: u32,
    /// Earliest instant the next packet may leave.
    next_send: SimTime,
    /// Deadline for hearing feedback before backing off.
    feedback_deadline: SimTime,
    /// Current expected feedback period (from the ACK timeout field).
    feedback_period: SimDuration,
    cum_ack: u32,
    /// Cumulative ACK value of the previous feedback (tail-probe detector).
    prev_cum_ack: u32,
    /// Doublings applied to the energy budget while the transfer makes no
    /// progress. The paper's source assigns the initial budget from "the
    /// energy the network would typically expend"; when evidence shows the
    /// estimate was too small to deliver anything (so the receiver-side
    /// energy monitor can never correct it), the source revises upward.
    budget_escalation: u32,
    stats: SenderStats,
}

/// Safety factor on the advertised feedback period before the sender
/// declares feedback lost (allows for one-way delay and jitter).
const FEEDBACK_GRACE: f64 = 2.0;

impl JtpSender {
    /// Create a source endpoint that will transfer `total_packets` packets
    /// with the given application loss tolerance.
    pub fn new(flow: FlowId, total_packets: u32, loss_tolerance: f64, cfg: JtpConfig) -> Self {
        cfg.validate().expect("invalid JTP configuration");
        let feedback_period = cfg.t_lower_bound;
        JtpSender {
            flow,
            loss_tolerance: loss_tolerance.clamp(0.0, 1.0),
            total_packets,
            next_seq: 0,
            unacked: BTreeMap::new(),
            rtx_queue: VecDeque::new(),
            rate_pps: cfg.initial_rate_pps,
            energy_budget_nj: cfg.initial_energy_budget_nj,
            next_send: SimTime::ZERO,
            feedback_deadline: SimTime::ZERO
                + SimDuration::from_secs_f64(feedback_period.as_secs_f64() * FEEDBACK_GRACE),
            feedback_period,
            cum_ack: 0,
            prev_cum_ack: 0,
            budget_escalation: 0,
            cfg,
            stats: SenderStats::default(),
        }
    }

    /// The flow this endpoint feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Add more packets to the transfer (streaming applications).
    pub fn extend_transfer(&mut self, additional_packets: u32) {
        self.total_packets = self.total_packets.saturating_add(additional_packets);
    }

    /// Current receiver-assigned rate (pps).
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// True once every sequence is covered by the cumulative ACK.
    pub fn is_complete(&self) -> bool {
        self.cum_ack >= self.total_packets && self.next_seq >= self.total_packets
    }

    /// Sender statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Has data (fresh or retransmission) ready to pace out?
    fn has_backlog(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.total_packets
    }

    /// The budget stamped into packets: receiver-fed value, doubled per
    /// escalation level while the transfer is wedged.
    fn effective_budget_nj(&self) -> u32 {
        let factor = 1u32 << self.budget_escalation.min(16);
        self.energy_budget_nj.saturating_mul(factor)
    }

    fn make_packet(&self, seq: u32) -> DataPacket {
        DataPacket {
            flow: self.flow,
            seq,
            rate_pps: f32::MAX, // min-stamped down by iJTP along the path
            loss_tolerance: self.loss_tolerance,
            remaining_hops: 0, // filled by iJTP from the routing view
            energy_budget_nj: self.effective_budget_nj(),
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: self.cfg.packet_payload_bytes,
        }
    }

    /// Emit at most one packet if the pacing clock allows. Returns the
    /// packet (retransmissions take priority) or `None` when idle/ahead of
    /// schedule.
    pub fn poll_send(&mut self, now: SimTime) -> Option<DataPacket> {
        if now < self.next_send || !self.has_backlog() {
            return None;
        }
        let gap = SimDuration::from_secs_f64(1.0 / self.rate_pps.max(self.cfg.min_rate_pps));
        // Retransmissions first: they are oldest and gate the cum ACK.
        while let Some(seq) = self.rtx_queue.pop_front() {
            // The receiver may have forgiven or received it meanwhile.
            if let Some(pkt) = self.unacked.get(&seq) {
                let mut pkt = pkt.clone();
                // A retransmission opens a fresh energy account and carries
                // the *current* tolerance/budget parameters.
                pkt.energy_used_nj = 0;
                pkt.rate_pps = f32::MAX;
                pkt.energy_budget_nj = self.effective_budget_nj();
                pkt.loss_tolerance = self.loss_tolerance;
                self.stats.source_retransmissions += 1;
                self.next_send = now + gap;
                return Some(pkt);
            }
        }
        if self.next_seq < self.total_packets {
            let pkt = self.make_packet(self.next_seq);
            self.unacked.insert(self.next_seq, pkt.clone());
            self.next_seq += 1;
            self.stats.fresh_sent += 1;
            self.next_send = now + gap;
            return Some(pkt);
        }
        None
    }

    /// When the sender next wants to be polled: the pacing instant while
    /// backlogged, and the feedback deadline always.
    pub fn next_wakeup(&self) -> SimTime {
        if self.has_backlog() {
            self.next_send.min(self.feedback_deadline)
        } else {
            self.feedback_deadline
        }
    }

    /// Process a feedback packet.
    pub fn on_ack(&mut self, now: SimTime, ack: &AckPacket) {
        debug_assert_eq!(ack.flow, self.flow);
        self.stats.acks_received += 1;

        // Receiver-assigned transmission parameters.
        if ack.rate_pps.is_finite() && ack.rate_pps > 0.0 {
            self.rate_pps =
                (ack.rate_pps as f64).clamp(self.cfg.min_rate_pps, self.cfg.max_rate_pps);
        }
        if ack.energy_budget_nj > 0 {
            self.energy_budget_nj = ack.energy_budget_nj;
        }
        if !ack.timeout.is_zero() {
            self.feedback_period = ack.timeout;
        }
        self.feedback_deadline =
            now + SimDuration::from_secs_f64(self.feedback_period.as_secs_f64() * FEEDBACK_GRACE);

        // Cumulative ACK frees retained copies (end-to-end reliability is
        // the source's responsibility until here).
        self.prev_cum_ack = self.cum_ack;
        if ack.cum_ack > self.cum_ack {
            self.cum_ack = ack.cum_ack;
            self.unacked = self.unacked.split_off(&ack.cum_ack);
        }

        // End-to-end retransmissions: only what no cache recovered.
        for seq in ack.snack_seqs() {
            if ack.wants_retransmission(seq)
                && self.unacked.contains_key(&seq)
                && !self.rtx_queue.contains(&seq)
            {
                self.rtx_queue.push_back(seq);
            }
        }

        // Stall handling. "No progress and nothing requested" has two
        // causes, both invisible to SNACK-based recovery:
        //  * the tail of the transfer was lost *above* the receiver's
        //    highest sequence — resend the oldest retained packet to
        //    restart the pipeline (tail probe);
        //  * every packet dies mid-path on its energy budget, so the
        //    receiver has no energy samples to correct the budget with —
        //    escalate the budget (reset on the next sign of progress).
        let progressed = self.cum_ack > self.prev_cum_ack;
        let receiver_idle = ack.snack.is_empty() && ack.locally_recovered.is_empty();
        if progressed {
            self.budget_escalation = 0;
        } else if receiver_idle && self.stats.fresh_sent > 0 && !self.is_complete() {
            self.budget_escalation = (self.budget_escalation + 1).min(16);
        }
        if self.next_seq >= self.total_packets
            && !self.is_complete()
            && !progressed
            && receiver_idle
            && self.rtx_queue.is_empty()
        {
            if let Some((&seq, _)) = self.unacked.iter().next() {
                self.rtx_queue.push_back(seq);
            }
        }

        // Fair-rate back-off for in-network retransmissions done on our
        // behalf (§4.2): t_b = Σ s_j / r(t).
        let recovered = ack.recovered_seqs();
        if !recovered.is_empty() {
            self.stats.locally_recovered += recovered.len() as u64;
            if self.cfg.backoff_on_local_recovery {
                let bytes: u64 = recovered
                    .iter()
                    .map(|s| {
                        self.unacked
                            .get(s)
                            .map(|p| p.wire_bytes() as u64)
                            .unwrap_or(self.cfg.packet_payload_bytes as u64)
                    })
                    .sum();
                let pkt_bytes = (self.cfg.packet_payload_bytes as usize
                    + crate::packet::DATA_HEADER_BYTES) as f64;
                let packets_equiv = bytes as f64 / pkt_bytes;
                // Cap the back-off at one feedback period: the compensation
                // belongs to this epoch. Without the cap, a low-rate sender
                // receiving several recovery reports spirals into
                // ever-longer silences.
                let tb = SimDuration::from_secs_f64(
                    packets_equiv / self.rate_pps.max(self.cfg.min_rate_pps),
                )
                .min(self.feedback_period);
                self.stats.backoff_time += tb;
                let until = now + tb;
                if until > self.next_send {
                    self.next_send = until;
                }
            }
        }
    }

    /// Call when `now` passes the feedback deadline without an ACK: the
    /// sender assumes feedback was lost and multiplicatively backs off.
    pub fn on_feedback_timeout(&mut self, now: SimTime) {
        if now < self.feedback_deadline {
            return; // spurious wakeup
        }
        self.rate_pps = (self.rate_pps * self.cfg.k_d).max(self.cfg.min_rate_pps);
        self.stats.timeout_backoffs += 1;
        self.feedback_deadline =
            now + SimDuration::from_secs_f64(self.feedback_period.as_secs_f64() * FEEDBACK_GRACE);
    }

    /// Number of packets sent but not yet cumulatively acknowledged.
    pub fn unacked_count(&self) -> usize {
        self.unacked.len()
    }

    /// Cumulative acknowledgment received so far.
    pub fn cum_ack(&self) -> u32 {
        self.cum_ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SeqRange;

    fn cfg() -> JtpConfig {
        JtpConfig {
            initial_rate_pps: 2.0,
            ..Default::default()
        }
    }

    fn sender(total: u32) -> JtpSender {
        JtpSender::new(FlowId(1), total, 0.0, cfg())
    }

    fn ack(cum: u32) -> AckPacket {
        AckPacket {
            flow: FlowId(1),
            cum_ack: cum,
            snack: vec![],
            locally_recovered: vec![],
            rate_pps: 2.0,
            energy_budget_nj: 1_000_000,
            timeout: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn pacing_respects_rate() {
        let mut s = sender(10);
        let t0 = SimTime::ZERO;
        let p1 = s.poll_send(t0);
        assert!(p1.is_some());
        // Immediately polling again yields nothing (2 pps => 0.5 s gap).
        assert!(s.poll_send(t0).is_none());
        assert!(s.poll_send(SimTime::from_millis(499)).is_none());
        assert!(s.poll_send(SimTime::from_millis(500)).is_some());
    }

    #[test]
    fn sequences_are_consecutive() {
        let mut s = sender(5);
        let mut seqs = vec![];
        let mut t = SimTime::ZERO;
        while let Some(p) = s.poll_send(t) {
            seqs.push(p.seq);
            t += SimDuration::from_secs(1);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.stats().fresh_sent, 5);
    }

    #[test]
    fn retains_copies_until_cum_acked() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        assert_eq!(s.unacked_count(), 5);
        s.on_ack(t, &ack(3));
        assert_eq!(s.unacked_count(), 2);
        assert!(!s.is_complete());
        s.on_ack(t, &ack(5));
        assert_eq!(s.unacked_count(), 0);
        assert!(s.is_complete());
    }

    #[test]
    fn snack_triggers_source_retransmission() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        let mut a = ack(2);
        a.snack = vec![SeqRange::single(3)];
        s.on_ack(t, &a);
        let p = s.poll_send(t + SimDuration::from_secs(1)).unwrap();
        assert_eq!(p.seq, 3, "retransmission takes priority");
        assert_eq!(p.energy_used_nj, 0, "fresh energy account");
        assert_eq!(s.stats().source_retransmissions, 1);
    }

    #[test]
    fn locally_recovered_not_retransmitted_but_backed_off() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        let mut a = ack(2);
        a.snack = vec![];
        a.locally_recovered = vec![SeqRange::single(3)];
        let before = s.next_send;
        s.on_ack(t, &a);
        assert_eq!(s.stats().source_retransmissions, 0);
        assert_eq!(s.stats().locally_recovered, 1);
        assert!(s.next_send > before, "t_b back-off applied");
        assert!(!s.stats().backoff_time.is_zero());
    }

    #[test]
    fn backoff_disabled_config() {
        let mut s = JtpSender::new(
            FlowId(1),
            5,
            0.0,
            JtpConfig {
                backoff_on_local_recovery: false,
                ..cfg()
            },
        );
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        let mut a = ack(2);
        a.locally_recovered = vec![SeqRange::single(3)];
        let before = s.next_send;
        s.on_ack(t, &a);
        assert_eq!(s.next_send, before, "no back-off when disabled");
    }

    #[test]
    fn feedback_updates_rate_and_budget() {
        let mut s = sender(100);
        let mut a = ack(0);
        a.rate_pps = 7.5;
        a.energy_budget_nj = 42_000;
        s.on_ack(SimTime::from_secs_f64(1.0), &a);
        assert_eq!(s.rate(), 7.5);
        let t = SimTime::from_secs_f64(2.0);
        let p = s.poll_send(t).unwrap();
        assert_eq!(p.energy_budget_nj, 42_000);
    }

    #[test]
    fn feedback_timeout_backs_off_multiplicatively() {
        let mut s = sender(100);
        let r0 = s.rate();
        // Deadline = 2 * 10 s initially.
        s.on_feedback_timeout(SimTime::from_secs_f64(1.0));
        assert_eq!(s.rate(), r0, "before deadline: no-op");
        s.on_feedback_timeout(SimTime::from_secs_f64(25.0));
        assert!((s.rate() - r0 * 0.85).abs() < 1e-12);
        assert_eq!(s.stats().timeout_backoffs, 1);
        // Deadline re-armed: next timeout only after another period.
        s.on_feedback_timeout(SimTime::from_secs_f64(26.0));
        assert_eq!(s.stats().timeout_backoffs, 1);
    }

    #[test]
    fn ack_resets_feedback_deadline() {
        let mut s = sender(100);
        s.on_ack(SimTime::from_secs_f64(5.0), &ack(0));
        s.on_feedback_timeout(SimTime::from_secs_f64(10.0));
        assert_eq!(s.stats().timeout_backoffs, 0, "deadline was pushed out");
    }

    #[test]
    fn stale_snack_for_acked_packet_is_ignored() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        s.on_ack(t, &ack(5)); // everything delivered
        let mut a = ack(5);
        a.snack = vec![SeqRange::single(2)];
        s.on_ack(t, &a);
        assert!(s.poll_send(t + SimDuration::from_secs(1)).is_none());
        assert_eq!(s.stats().source_retransmissions, 0);
    }

    #[test]
    fn duplicate_snack_not_queued_twice() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        let mut a = ack(0);
        a.snack = vec![SeqRange::single(2)];
        s.on_ack(t, &a);
        s.on_ack(t, &a);
        let mut rtx = 0;
        let mut t2 = t;
        while let Some(p) = s.poll_send(t2) {
            if p.seq == 2 {
                rtx += 1;
            }
            t2 += SimDuration::from_secs(1);
        }
        assert_eq!(rtx, 1);
    }

    #[test]
    fn complete_transfer_stops_sending() {
        let mut s = sender(2);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        s.on_ack(t, &ack(2));
        assert!(s.is_complete());
        assert!(s.poll_send(t + SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn budget_escalates_while_wedged_and_resets_on_progress() {
        let mut s = sender(5);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        // The ack helper advertises a 1 mJ receiver-chosen budget; idle
        // feedback with zero progress (nothing delivered, nothing
        // requested) doubles the stamped value every round.
        let base = 1_000_000u32;
        s.on_ack(t, &ack(0));
        assert_eq!(s.effective_budget_nj(), base * 2);
        s.on_ack(t, &ack(0));
        assert_eq!(s.effective_budget_nj(), base * 4);
        // First sign of progress resets the escalation.
        s.on_ack(t, &ack(2));
        assert_eq!(s.effective_budget_nj(), base);
        // Retransmissions carry the effective budget too.
        s.on_ack(t, &ack(2)); // wedged again (cum stuck at 2)
        let mut a = ack(2);
        a.snack = vec![SeqRange::single(3)];
        s.on_ack(t, &a); // snack present: not "idle", no further doubling
        let p = s.poll_send(t + SimDuration::from_secs(1)).unwrap();
        assert_eq!(p.seq, 3);
        assert_eq!(p.energy_budget_nj, base * 2);
    }

    #[test]
    fn tail_probe_fires_for_lost_tail() {
        let mut s = sender(3);
        let mut t = SimTime::ZERO;
        while s.poll_send(t).is_some() {
            t += SimDuration::from_secs(1);
        }
        // Receiver saw 0..=1 but never 2 (the tail): cum=2, empty snack.
        s.on_ack(t, &ack(2));
        // Second idle feedback with no progress triggers the probe.
        s.on_ack(t + SimDuration::from_secs(10), &ack(2));
        let p = s.poll_send(t + SimDuration::from_secs(11)).unwrap();
        assert_eq!(p.seq, 2, "tail packet re-sent");
        assert_eq!(s.stats().source_retransmissions, 1);
    }

    #[test]
    fn extend_transfer_resumes() {
        let mut s = sender(1);
        let mut t = SimTime::ZERO;
        assert!(s.poll_send(t).is_some());
        t += SimDuration::from_secs(1);
        assert!(s.poll_send(t).is_none());
        s.extend_transfer(1);
        assert_eq!(s.poll_send(t).unwrap().seq, 1);
    }
}
