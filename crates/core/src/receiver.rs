//! eJTP destination: path monitoring, destination-based control and
//! variable-rate feedback (§5 of the paper).
//!
//! The receiver is *fully responsible* for all transmission parameters: it
//! monitors the path (minimum available rate and per-packet energy, both
//! read from arriving data headers) with flip-flop filters, runs the PI²/MD
//! rate controller and the energy-budget controller, decides which missing
//! packets are still worth recovering given the application's loss
//! tolerance, and schedules feedback:
//!
//! * **regular feedback** every `T = max(T_lower_bound, n / rate)` seconds
//!   — low-frequency, aggregating ACK information,
//! * **early feedback** the moment a monitor detects a persistent change
//!   in path state (consecutive outliers outside the control limits).
//!
//! The structure is poll-based: the surrounding node calls
//! [`JtpReceiver::on_data`] for every arriving packet (which may return an
//! early feedback to send) and [`JtpReceiver::poll_feedback`] when the
//! regular timer fires; [`JtpReceiver::next_feedback_at`] tells the caller
//! when that is.

use crate::config::JtpConfig;
use crate::controller::{EnergyBudgetController, RateController};
use crate::monitor::FlipFlopMonitor;
use crate::packet::{compress_ranges, AckPacket, DataPacket};
use jtp_sim::{FlowId, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Statistics the harness reads from a receiver.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverStats {
    /// Distinct data packets delivered to the application.
    pub delivered_packets: u64,
    /// Application payload bytes delivered.
    pub delivered_bytes: u64,
    /// Duplicate data packets discarded.
    pub duplicates: u64,
    /// Feedback packets generated (regular + early).
    pub feedbacks_sent: u64,
    /// Early feedbacks among them (monitor-triggered).
    pub early_feedbacks: u64,
    /// Missing packets the receiver chose to forgive (loss tolerance).
    pub forgiven_packets: u64,
}

/// The eJTP destination endpoint of one JTP connection.
#[derive(Clone, Debug)]
pub struct JtpReceiver {
    flow: FlowId,
    cfg: JtpConfig,
    /// Application's end-to-end loss tolerance for this flow, [0, 1].
    loss_tolerance: f64,
    /// All sequences `< prefix` are delivered or forgiven.
    prefix: u32,
    /// Out-of-order deliveries at/above `prefix`.
    ooo: BTreeSet<u32>,
    /// Highest sequence number seen (None before first packet).
    highest_seen: Option<u32>,
    /// Forgiven (tolerated-lost) sequences at/above `prefix`.
    forgiven: BTreeSet<u32>,
    rate_monitor: FlipFlopMonitor,
    energy_monitor: FlipFlopMonitor,
    rate_controller: RateController,
    energy_controller: EnergyBudgetController,
    last_feedback: SimTime,
    /// Current regular feedback period T.
    period: SimDuration,
    /// When the controller last applied a rate increase.
    last_increase: SimTime,
    /// Highest sequence seen when the previous feedback went out. Only
    /// gaps *below* it are treated as losses: younger gaps may simply be
    /// in flight (the feedback period far exceeds the path transit time),
    /// and SNACKing them would trigger duplicate recoveries.
    confirm_below: u32,
    /// Sequences requested in the previous feedback. A request needs a
    /// full round trip (plus the recovery's forward trip) to take effect;
    /// re-requesting in the very next round makes every cache on a
    /// (possibly changed) path retransmit the same packet again. Under
    /// mobility this duplicate-recovery traffic dominated JTP's energy,
    /// so requests for a given sequence are paced to alternate rounds.
    snacked_prev: BTreeSet<u32>,
    stats: ReceiverStats,
}

impl JtpReceiver {
    /// Create the destination endpoint.
    pub fn new(flow: FlowId, loss_tolerance: f64, cfg: JtpConfig) -> Self {
        cfg.validate().expect("invalid JTP configuration");
        let rate_monitor = FlipFlopMonitor::new(
            cfg.stable_alpha,
            cfg.stable_beta,
            cfg.agile_alpha,
            cfg.outlier_trigger,
        );
        let energy_monitor = FlipFlopMonitor::new(
            cfg.stable_alpha,
            cfg.stable_beta,
            cfg.agile_alpha,
            cfg.outlier_trigger,
        );
        let rate_controller = RateController::new(
            cfg.k_i,
            cfg.k_d,
            cfg.delta_avail_pps,
            cfg.min_rate_pps,
            cfg.max_rate_pps,
            cfg.initial_rate_pps,
        );
        let energy_controller =
            EnergyBudgetController::new(cfg.beta_energy, cfg.initial_energy_budget_nj);
        let period = Self::initial_period(&cfg);
        JtpReceiver {
            flow,
            loss_tolerance: loss_tolerance.clamp(0.0, 1.0),
            cfg,
            prefix: 0,
            ooo: BTreeSet::new(),
            highest_seen: None,
            forgiven: BTreeSet::new(),
            rate_monitor,
            energy_monitor,
            rate_controller,
            energy_controller,
            last_feedback: SimTime::ZERO,
            period,
            last_increase: SimTime::ZERO,
            confirm_below: 0,
            snacked_prev: BTreeSet::new(),
            stats: ReceiverStats::default(),
        }
    }

    fn initial_period(cfg: &JtpConfig) -> SimDuration {
        if cfg.variable_feedback {
            cfg.t_lower_bound
        } else {
            cfg.constant_feedback_period
        }
    }

    /// The flow this endpoint terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Process an arriving data packet; returns an early-feedback ACK when
    /// a path monitor crossed its outlier threshold.
    pub fn on_data(&mut self, now: SimTime, pkt: &DataPacket) -> Option<AckPacket> {
        debug_assert_eq!(pkt.flow, self.flow);
        // Bookkeeping of the sequence space.
        let seq = pkt.seq;
        self.highest_seen = Some(self.highest_seen.map_or(seq, |h| h.max(seq)));
        let fresh = if seq < self.prefix || self.forgiven.contains(&seq) {
            false
        } else {
            self.ooo.insert(seq)
        };
        if fresh {
            self.stats.delivered_packets += 1;
            self.stats.delivered_bytes += pkt.payload_len as u64;
            self.forgiven.remove(&seq);
            self.advance_prefix();
        } else {
            self.stats.duplicates += 1;
        }
        // Path monitoring from the header's fields (Dynamic-Packet-State
        // style: the path reports its condition inside the data packets).
        let rate_verdict = if pkt.rate_pps.is_finite() {
            self.rate_monitor.observe(pkt.rate_pps as f64)
        } else {
            crate::monitor::MonitorVerdict {
                outlier: false,
                trigger_feedback: false,
            }
        };
        let energy_verdict = self.energy_monitor.observe(pkt.energy_used_nj as f64);
        if (rate_verdict.trigger_feedback || energy_verdict.trigger_feedback)
            && self.cfg.variable_feedback
            && now.since(self.last_feedback) >= self.cfg.min_early_feedback_spacing
        {
            self.stats.early_feedbacks += 1;
            return Some(self.build_feedback(now));
        }
        None
    }

    /// Advance the delivered-or-forgiven prefix over contiguous entries.
    fn advance_prefix(&mut self) {
        loop {
            if self.ooo.remove(&self.prefix) || self.forgiven.remove(&self.prefix) {
                self.prefix += 1;
            } else {
                break;
            }
        }
    }

    /// Missing sequences in `[prefix, highest_seen]` that are neither
    /// delivered nor forgiven.
    fn gaps(&self) -> Vec<u32> {
        let Some(high) = self.highest_seen else {
            return vec![];
        };
        (self.prefix..=high)
            .filter(|s| !self.ooo.contains(s) && !self.forgiven.contains(s))
            .collect()
    }

    /// Gaps old enough to be losses rather than in-flight packets: below
    /// the highest sequence of the *previous* feedback round.
    fn confirmed_gaps(&self) -> Vec<u32> {
        let limit = self.confirm_below;
        self.gaps().into_iter().filter(|&s| s < limit).collect()
    }

    /// Apply the application's loss tolerance: forgive the *oldest* gaps as
    /// long as the delivered fraction stays within tolerance; the rest are
    /// worth requesting ("retransmission requests only for those missing
    /// packets that are important to the application", §2.2.1).
    fn select_snack(&mut self) -> Vec<u32> {
        let gaps = self.confirmed_gaps();
        if gaps.is_empty() {
            return gaps;
        }
        let Some(high) = self.highest_seen else {
            return vec![];
        };
        let total = (high + 1) as f64;
        let allowed = (self.loss_tolerance * total).floor() as u64;
        // `forgiven_packets` counts every forgiveness ever granted (the
        // set only holds those not yet swept past by the prefix).
        let can_forgive = allowed.saturating_sub(self.stats.forgiven_packets) as usize;
        let (to_forgive, to_request) = gaps.split_at(can_forgive.min(gaps.len()));
        for &s in to_forgive {
            self.forgiven.insert(s);
            self.stats.forgiven_packets += 1;
        }
        self.advance_prefix();
        to_request.to_vec()
    }

    /// Compute the regular feedback period (§5.1):
    /// `T = max(T_lower_bound, n × 1/rate)`, never exceeding the rate at
    /// which data flows. Constant-feedback mode returns the fixed period.
    fn compute_period(&self) -> SimDuration {
        if !self.cfg.variable_feedback {
            return self.cfg.constant_feedback_period;
        }
        let rate = self.rate_controller.rate().max(self.cfg.min_rate_pps);
        let aggregated = SimDuration::from_secs_f64(self.cfg.feedback_aggregation / rate);
        self.cfg.t_lower_bound.max(aggregated)
    }

    /// Build a feedback packet (common to regular and early feedback).
    fn build_feedback(&mut self, now: SimTime) -> AckPacket {
        // Run the controllers on the freshest monitor state. Decreases
        // (no headroom) apply on every feedback — that timeliness is what
        // early feedback buys; increases are spaced at least
        // `min_increase_interval` apart so feedback frequency does not
        // change the controller's ramp aggressiveness.
        let new_rate = match self.rate_monitor.mean() {
            Some(avail) if avail <= self.cfg.delta_avail_pps => self.rate_controller.update(avail),
            Some(avail) if now.since(self.last_increase) >= self.cfg.min_increase_interval => {
                self.last_increase = now;
                self.rate_controller.update(avail)
            }
            _ => self.rate_controller.rate(),
        };
        let budget = self.energy_controller.budget_nj(self.energy_monitor.ucl());
        let mut snack_seqs = self.select_snack();
        // Pace repeat requests: a sequence SNACKed last round is given one
        // round for the recovery to arrive before being requested again.
        snack_seqs.retain(|s| !self.snacked_prev.contains(s));
        self.snacked_prev = snack_seqs.iter().copied().collect();
        self.confirm_below = self.highest_seen.map_or(0, |h| h + 1);
        self.period = self.compute_period();
        self.last_feedback = now;
        self.stats.feedbacks_sent += 1;
        AckPacket {
            flow: self.flow,
            cum_ack: self.prefix,
            snack: compress_ranges(&snack_seqs),
            locally_recovered: Vec::new(),
            rate_pps: new_rate as f32,
            energy_budget_nj: budget,
            timeout: self.period,
        }
    }

    /// Regular feedback timer fired: emit the periodic ACK.
    pub fn poll_feedback(&mut self, now: SimTime) -> AckPacket {
        self.build_feedback(now)
    }

    /// When the next regular feedback is due.
    pub fn next_feedback_at(&self) -> SimTime {
        self.last_feedback + self.period
    }

    /// All sequences `< seq` delivered or forgiven.
    pub fn cum_ack(&self) -> u32 {
        self.prefix
    }

    /// Application-visible statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The monitored mean available path rate, if any samples arrived.
    pub fn monitored_avail_rate(&self) -> Option<f64> {
        self.rate_monitor.mean()
    }

    /// Current receiver-chosen sending rate (pps).
    pub fn current_rate(&self) -> f64 {
        self.rate_controller.rate()
    }

    /// Rate-monitor control limits `(lcl, mean, ucl)` for instrumentation
    /// (Fig. 8's bottom plots).
    pub fn rate_monitor_state(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.rate_monitor.lcl()?,
            self.rate_monitor.mean()?,
            self.rate_monitor.ucl()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u32, rate: f32, energy_nj: u32) -> DataPacket {
        DataPacket {
            flow: FlowId(1),
            seq,
            rate_pps: rate,
            loss_tolerance: 0.0,
            remaining_hops: 0,
            energy_budget_nj: u32::MAX,
            energy_used_nj: energy_nj,
            deadline_ms: 0,
            payload_len: 800,
        }
    }

    fn rx(tolerance: f64) -> JtpReceiver {
        JtpReceiver::new(FlowId(1), tolerance, JtpConfig::default())
    }

    #[test]
    fn in_order_delivery_advances_cum_ack() {
        let mut r = rx(0.0);
        for s in 0..5 {
            r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 3.0, 1000));
        }
        assert_eq!(r.cum_ack(), 5);
        assert_eq!(r.stats().delivered_packets, 5);
        assert!(r.gaps().is_empty());
    }

    #[test]
    fn gaps_are_snacked_for_zero_tolerance() {
        let mut r = rx(0.0);
        for s in [0u32, 1, 3, 5] {
            r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 3.0, 1000));
        }
        // First feedback: the gaps are unconfirmed (could be in flight).
        let ack = r.poll_feedback(SimTime::from_secs_f64(10.0));
        assert_eq!(ack.cum_ack, 2);
        assert!(ack.snack.is_empty(), "unconfirmed gaps not yet SNACKed");
        // Second feedback: the gaps persisted — now requested.
        let ack = r.poll_feedback(SimTime::from_secs_f64(20.0));
        assert_eq!(ack.snack_seqs(), vec![2, 4]);
        assert_eq!(r.stats().forgiven_packets, 0);
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let mut r = rx(0.0);
        r.on_data(SimTime::ZERO, &pkt(0, 3.0, 1000));
        r.on_data(SimTime::ZERO, &pkt(0, 3.0, 1000));
        assert_eq!(r.stats().delivered_packets, 1);
        assert_eq!(r.stats().duplicates, 1);
    }

    #[test]
    fn tolerant_flow_forgives_oldest_gaps() {
        let mut r = rx(0.25);
        // Deliver 0..20 except 3 and 7: 19 delivered of 20, tolerance
        // allows floor(0.25*20)=5 losses => both gaps forgiven, no snack.
        for s in 0..20u32 {
            if s != 3 && s != 7 {
                r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 3.0, 1000));
            }
        }
        r.poll_feedback(SimTime::from_secs_f64(30.0)); // confirmation round
        let ack = r.poll_feedback(SimTime::from_secs_f64(40.0));
        assert!(ack.snack.is_empty(), "snack = {:?}", ack.snack);
        assert_eq!(ack.cum_ack, 20, "forgiven gaps advance cum ack");
        assert_eq!(r.stats().forgiven_packets, 2);
    }

    #[test]
    fn tolerance_budget_is_finite() {
        let mut r = rx(0.10);
        // 20 packets, 5 missing: tolerance allows floor(0.1*20)=2.
        for s in 0..20u32 {
            if ![2u32, 5, 9, 12, 15].contains(&s) {
                r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 3.0, 1000));
            }
        }
        r.poll_feedback(SimTime::from_secs_f64(30.0)); // confirmation round
        let ack = r.poll_feedback(SimTime::from_secs_f64(40.0));
        assert_eq!(r.stats().forgiven_packets, 2, "oldest two forgiven");
        assert_eq!(ack.snack_seqs(), vec![9, 12, 15]);
    }

    #[test]
    fn fully_tolerant_flow_never_snacks() {
        let mut r = rx(1.0);
        for s in [0u32, 5, 9] {
            r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 3.0, 1000));
        }
        let ack = r.poll_feedback(SimTime::from_secs_f64(20.0));
        assert!(ack.snack.is_empty());
        let ack = r.poll_feedback(SimTime::from_secs_f64(30.0));
        assert!(ack.snack.is_empty());
        assert_eq!(ack.cum_ack, 10, "everything below highest forgiven");
    }

    #[test]
    fn late_arrival_of_forgiven_packet_is_duplicate() {
        let mut r = rx(1.0);
        r.on_data(SimTime::ZERO, &pkt(0, 3.0, 1000));
        r.on_data(SimTime::ZERO, &pkt(5, 3.0, 1000));
        r.poll_feedback(SimTime::from_secs_f64(10.0)); // confirmation round
        r.poll_feedback(SimTime::from_secs_f64(20.0)); // forgives 1..=4
        let before = r.stats().delivered_packets;
        r.on_data(SimTime::from_secs_f64(21.0), &pkt(3, 3.0, 1000));
        assert_eq!(
            r.stats().delivered_packets,
            before,
            "forgiven => not delivered"
        );
    }

    #[test]
    fn in_flight_gap_is_not_snacked_but_loss_is() {
        let mut r = rx(0.0);
        r.on_data(SimTime::ZERO, &pkt(0, 3.0, 1000));
        r.poll_feedback(SimTime::from_secs_f64(10.0)); // confirm_below = 1
                                                       // Packets 1..=3 sent; 2 lost; 3 arrives just before feedback.
        r.on_data(SimTime::from_secs_f64(11.0), &pkt(1, 3.0, 1000));
        r.on_data(SimTime::from_secs_f64(12.0), &pkt(3, 3.0, 1000));
        let ack = r.poll_feedback(SimTime::from_secs_f64(20.0));
        // Gap {2} is above confirm_below=1: could still be in flight.
        assert!(
            ack.snack.is_empty(),
            "in-flight gap SNACKed: {:?}",
            ack.snack
        );
        // Next round: 2 still missing below the new confirm point => loss.
        let ack = r.poll_feedback(SimTime::from_secs_f64(30.0));
        assert_eq!(ack.snack_seqs(), vec![2]);
    }

    #[test]
    fn feedback_carries_controller_outputs() {
        let mut r = rx(0.0);
        for s in 0..10 {
            r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 4.0, 500_000));
        }
        let ack = r.poll_feedback(SimTime::from_secs_f64(10.0));
        assert!(ack.rate_pps > 0.0);
        assert!(ack.energy_budget_nj > 0);
        assert!(ack.timeout >= JtpConfig::default().t_lower_bound);
    }

    #[test]
    fn early_feedback_on_rate_collapse() {
        let mut r = rx(0.0);
        // Stable path at 4 pps…
        let mut early = None;
        for s in 0..50 {
            let v = r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 4.0, 1000));
            assert!(v.is_none(), "no early feedback while stable");
        }
        // …then the available rate collapses.
        for s in 50..60 {
            if let Some(a) = r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 0.5, 1000)) {
                early = Some((s, a));
                break;
            }
        }
        let (s, ack) = early.expect("no early feedback on persistent change");
        assert!(s >= 52, "needs outlier_trigger consecutive outliers");
        assert_eq!(r.stats().early_feedbacks, 1);
        assert!(ack.rate_pps > 0.0);
    }

    #[test]
    fn constant_feedback_mode_never_fires_early() {
        let cfg = JtpConfig {
            variable_feedback: false,
            constant_feedback_period: SimDuration::from_secs(2),
            ..Default::default()
        };
        let mut r = JtpReceiver::new(FlowId(1), 0.0, cfg);
        for s in 0..50 {
            r.on_data(SimTime::from_secs_f64(s as f64 * 0.1), &pkt(s, 4.0, 1000));
        }
        for s in 50..80 {
            let v = r.on_data(SimTime::from_secs_f64(s as f64 * 0.1), &pkt(s, 0.1, 1000));
            assert!(v.is_none(), "constant mode must not send early feedback");
        }
        let ack = r.poll_feedback(SimTime::from_secs_f64(8.0));
        assert_eq!(ack.timeout, SimDuration::from_secs(2));
    }

    #[test]
    fn feedback_period_respects_lower_bound() {
        let mut r = rx(0.0);
        for s in 0..20 {
            r.on_data(SimTime::from_secs_f64(s as f64), &pkt(s, 4.0, 1000));
        }
        r.poll_feedback(SimTime::from_secs_f64(20.0));
        assert!(r.next_feedback_at() >= SimTime::from_secs_f64(30.0));
    }
}
