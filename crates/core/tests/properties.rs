//! Property-based tests of the JTP core invariants.

use jtp::packet::{compress_ranges, expand_ranges, AckPacket, DataPacket, SeqRange};
use jtp::reliability::{
    achieved_success, max_attempts_for, per_hop_success_target, update_loss_tolerance,
};
use jtp::{JtpConfig, PacketCache};
use jtp_sim::{FlowId, SimDuration};
use proptest::prelude::*;

fn arb_data_packet() -> impl Strategy<Value = DataPacket> {
    (
        any::<u16>(),
        any::<u32>(),
        0.0f32..1000.0,
        0.0f64..=1.0,
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        0u16..=2000,
    )
        .prop_map(
            |(flow, seq, rate, lt, hops, budget, used, deadline, len)| DataPacket {
                flow: FlowId(flow),
                seq,
                rate_pps: rate,
                loss_tolerance: lt,
                remaining_hops: hops,
                energy_budget_nj: budget,
                energy_used_nj: used,
                deadline_ms: deadline,
                payload_len: len,
            },
        )
}

fn arb_ranges(max_len: usize) -> impl Strategy<Value = Vec<SeqRange>> {
    proptest::collection::vec((0u32..100_000, 0u32..50), 0..max_len).prop_map(|pairs| {
        // Build non-overlapping ascending ranges.
        let mut seqs: Vec<u32> = pairs
            .into_iter()
            .flat_map(|(s, l)| s..=s.saturating_add(l))
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        compress_ranges(&seqs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Data-header codec round-trips every representable packet.
    #[test]
    fn data_codec_roundtrip(pkt in arb_data_packet()) {
        let bytes = pkt.to_bytes();
        let back = DataPacket::decode(&bytes).unwrap();
        prop_assert_eq!(back.flow, pkt.flow);
        prop_assert_eq!(back.seq, pkt.seq);
        prop_assert_eq!(back.remaining_hops, pkt.remaining_hops);
        prop_assert_eq!(back.energy_budget_nj, pkt.energy_budget_nj);
        prop_assert_eq!(back.energy_used_nj, pkt.energy_used_nj);
        prop_assert_eq!(back.payload_len, pkt.payload_len);
        prop_assert!((back.loss_tolerance - pkt.loss_tolerance).abs() < 1e-4);
        // Rate survives bit-exactly (f32 on the wire).
        prop_assert_eq!(back.rate_pps, pkt.rate_pps);
    }

    /// ACK codec round-trips whenever the ranges fit the wire budget.
    #[test]
    fn ack_codec_roundtrip(
        flow in any::<u16>(),
        cum in any::<u32>(),
        snack in arb_ranges(8),
        recovered in arb_ranges(8),
        rate in 0.0f32..1000.0,
        budget in any::<u32>(),
        timeout_us in 0u64..100_000_000,
    ) {
        let ack = AckPacket {
            flow: FlowId(flow),
            cum_ack: cum,
            snack,
            locally_recovered: recovered,
            rate_pps: rate,
            energy_budget_nj: budget,
            timeout: SimDuration::from_micros(timeout_us),
        };
        let bytes = ack.to_bytes();
        prop_assert_eq!(bytes.len(), jtp::packet::ACK_PACKET_BYTES);
        let back = AckPacket::decode(&bytes).unwrap();
        if ack.snack.len() + ack.locally_recovered.len() <= jtp::packet::MAX_ACK_RANGES {
            prop_assert_eq!(back, ack);
        } else {
            // Truncation keeps a prefix, SNACK first.
            prop_assert!(back.snack.len() <= ack.snack.len());
        }
    }

    /// compress/expand are inverses on sorted deduplicated input.
    #[test]
    fn ranges_compress_expand_inverse(mut seqs in proptest::collection::vec(any::<u32>(), 0..200)) {
        seqs.sort_unstable();
        seqs.dedup();
        let ranges = compress_ranges(&seqs);
        prop_assert_eq!(expand_ranges(&ranges), seqs);
        // Ranges are minimal: no two adjacent ranges touch.
        for w in ranges.windows(2) {
            prop_assert!(w[0].end + 1 < w[1].start);
        }
    }

    /// The attempt budget from eq. (2) really achieves the target success
    /// probability (or hits the cap).
    #[test]
    fn attempts_achieve_target(
        q in 0.0f64..0.999,
        p in 0.0f64..0.95,
        cap in 1u32..20,
    ) {
        let m = max_attempts_for(q, p, cap);
        prop_assert!(m >= 1 && m <= cap);
        let uncapped = max_attempts_for(q, p, 1000);
        if uncapped <= cap {
            prop_assert!(achieved_success(p, m) >= q - 1e-9,
                "m={} achieves {} < {}", m, achieved_success(p, m), q);
        }
    }

    /// Composing per-hop targets via eqs (3)+(4) never under-delivers the
    /// end-to-end requirement when each hop achieves its planned success.
    #[test]
    fn tolerance_composition_meets_e2e(
        e2e in 0.0f64..0.9,
        hops in 1u32..12,
    ) {
        let mut lt = e2e;
        let mut product = 1.0;
        for i in 0..hops {
            let remaining = hops - i;
            let q = per_hop_success_target(lt, remaining);
            product *= q;
            lt = update_loss_tolerance(lt, q);
            prop_assert!((0.0..=1.0).contains(&lt));
        }
        prop_assert!(product >= (1.0 - e2e) - 1e-9,
            "path success {} < required {}", product, 1.0 - e2e);
    }

    /// The loss tolerance field never grows along the path (budget is
    /// consumed, not manufactured) when hops meet their targets.
    #[test]
    fn tolerance_monotone_nonincreasing(
        e2e in 0.0f64..0.9,
        hops in 1u32..10,
        overachieve in 0.0f64..0.2,
    ) {
        let mut lt = e2e;
        for i in 0..hops {
            let remaining = hops - i;
            let q = (per_hop_success_target(lt, remaining) + overachieve).min(1.0);
            let next = update_loss_tolerance(lt, q);
            prop_assert!(next <= lt + 1e-12, "tolerance grew: {} -> {}", lt, next);
            lt = next;
        }
    }

    /// LRU cache never exceeds capacity and keeps the most recently
    /// manipulated entries.
    #[test]
    fn cache_capacity_and_recency(
        capacity in 1usize..40,
        ops in proptest::collection::vec((0u32..100, any::<bool>()), 1..300),
    ) {
        let mut cache = PacketCache::new(capacity);
        let mk = |seq: u32| DataPacket {
            flow: FlowId(1),
            seq,
            rate_pps: 1.0,
            loss_tolerance: 0.0,
            remaining_hops: 1,
            energy_budget_nj: 1,
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: 100,
        };
        let mut last_touched = None;
        for (seq, is_insert) in ops {
            if is_insert {
                cache.insert(mk(seq));
                last_touched = Some(seq);
            } else if cache.lookup(FlowId(1), seq).is_some() {
                last_touched = Some(seq);
            }
            prop_assert!(cache.len() <= capacity);
        }
        // The most recently manipulated entry is always present.
        if let Some(seq) = last_touched {
            prop_assert!(cache.contains(FlowId(1), seq));
        }
    }

    /// mark_locally_recovered conserves the SNACK+recovered universe.
    #[test]
    fn snack_recovery_conserves_sequences(
        snack in arb_ranges(6),
        picks in proptest::collection::vec(any::<u32>(), 0..30),
    ) {
        let mut ack = AckPacket {
            flow: FlowId(1),
            cum_ack: 0,
            snack: snack.clone(),
            locally_recovered: vec![],
            rate_pps: 1.0,
            energy_budget_nj: 1,
            timeout: SimDuration::from_secs(1),
        };
        let universe: std::collections::BTreeSet<u32> =
            expand_ranges(&snack).into_iter().collect();
        for p in picks {
            ack.mark_locally_recovered(p);
        }
        let after: std::collections::BTreeSet<u32> = ack
            .snack_seqs()
            .into_iter()
            .chain(ack.recovered_seqs())
            .collect();
        prop_assert_eq!(universe, after);
        // Recovered and snack are disjoint.
        for s in ack.recovered_seqs() {
            prop_assert!(!ack.wants_retransmission(s));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A sender paced at any rate never violates its pacing gap.
    #[test]
    fn sender_pacing_gap(rate in 0.5f64..40.0, n in 2u32..40) {
        use jtp::JtpSender;
        use jtp_sim::SimTime;
        let cfg = JtpConfig {
            initial_rate_pps: rate,
            ..Default::default()
        };
        let mut s = JtpSender::new(FlowId(1), n, 0.0, cfg);
        let mut t = SimTime::ZERO;
        let mut last_emit: Option<SimTime> = None;
        let gap_us = (1e6 / rate) as u64;
        for _ in 0..(n as usize * 4) {
            if let Some(_p) = s.poll_send(t) {
                if let Some(prev) = last_emit {
                    let elapsed = t.since(prev).as_micros();
                    prop_assert!(elapsed + 1 >= gap_us,
                        "emitted after {} us, gap {} us", elapsed, gap_us);
                }
                last_emit = Some(t);
            }
            t += SimDuration::from_micros(gap_us / 3 + 1);
        }
    }
}
