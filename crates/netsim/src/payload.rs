//! The routed transport unit: an end-to-end addressed packet whose payload
//! is one of the three protocols' PDUs.

use jtp::packet::{AckPacket, DataPacket};
use jtp_baselines::atp::{AtpData, AtpFeedback};
use jtp_baselines::bbr::{BbrAck, BbrData};
use jtp_baselines::cubic::{CubicAck, CubicData};
use jtp_baselines::tcp::{TcpAck, TcpData};
use jtp_mac::FrameKind;
use jtp_sim::{FlowId, NodeId};

/// A transport PDU from any of the five protocols.
#[derive(Clone, Debug)]
pub enum Payload {
    /// JTP data packet.
    JtpData(DataPacket),
    /// JTP feedback packet.
    JtpAck(AckPacket),
    /// TCP data segment.
    TcpData(TcpData),
    /// TCP acknowledgment.
    TcpAck(TcpAck),
    /// ATP data packet.
    AtpData(AtpData),
    /// ATP feedback packet.
    AtpFeedback(AtpFeedback),
    /// CUBIC data segment.
    CubicData(CubicData),
    /// CUBIC acknowledgment.
    CubicAck(CubicAck),
    /// BBR data segment.
    BbrData(BbrData),
    /// BBR acknowledgment.
    BbrAck(BbrAck),
}

impl Payload {
    /// The flow this PDU belongs to.
    pub fn flow(&self) -> FlowId {
        match self {
            Payload::JtpData(p) => p.flow,
            Payload::JtpAck(p) => p.flow,
            Payload::TcpData(p) => p.flow,
            Payload::TcpAck(p) => p.flow,
            Payload::AtpData(p) => p.flow,
            Payload::AtpFeedback(p) => p.flow,
            Payload::CubicData(p) => p.flow,
            Payload::CubicAck(p) => p.flow,
            Payload::BbrData(p) => p.flow,
            Payload::BbrAck(p) => p.flow,
        }
    }

    /// Data or feedback, for MAC/energy classification.
    pub fn kind(&self) -> FrameKind {
        match self {
            Payload::JtpData(_)
            | Payload::TcpData(_)
            | Payload::AtpData(_)
            | Payload::CubicData(_)
            | Payload::BbrData(_) => FrameKind::Data,
            _ => FrameKind::Ack,
        }
    }

    /// Bytes this PDU occupies on the wire (headers included).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::JtpData(p) => p.wire_bytes(),
            Payload::JtpAck(p) => p.wire_bytes(),
            // IP+TCP header (40 B) on data; ACK carries SACK options.
            Payload::TcpData(p) => 40 + p.payload_len as usize,
            Payload::TcpAck(_) => 52,
            Payload::AtpData(p) => 32 + p.payload_len as usize,
            Payload::AtpFeedback(_) => 64,
            // CUBIC and BBR ride the same IP+TCP framing as TCP-SACK.
            Payload::CubicData(p) => 40 + p.payload_len as usize,
            Payload::CubicAck(_) => 52,
            Payload::BbrData(p) => 40 + p.payload_len as usize,
            Payload::BbrAck(_) => 52,
        }
    }
}

/// An end-to-end addressed transport packet, hop-forwarded by the nodes.
#[derive(Clone, Debug)]
pub struct TransportPacket {
    /// Originating endpoint.
    pub src_end: NodeId,
    /// Final destination endpoint.
    pub dst_end: NodeId,
    /// The PDU.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_match_paper_prototype() {
        let jd = Payload::JtpData(DataPacket {
            flow: FlowId(0),
            seq: 0,
            rate_pps: 1.0,
            loss_tolerance: 0.0,
            remaining_hops: 0,
            energy_budget_nj: 0,
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: 800,
        });
        assert_eq!(jd.wire_bytes(), 828, "28-byte JTP header + 800 payload");
        let ja = Payload::JtpAck(AckPacket {
            flow: FlowId(0),
            cum_ack: 0,
            snack: vec![],
            locally_recovered: vec![],
            rate_pps: 1.0,
            energy_budget_nj: 0,
            timeout: jtp_sim::SimDuration::from_secs(10),
        });
        assert_eq!(ja.wire_bytes(), 200, "Table 1: 200-byte JTP ACK");
        assert_eq!(jd.kind(), FrameKind::Data);
        assert_eq!(ja.kind(), FrameKind::Ack);
    }

    #[test]
    fn tcp_ack_much_smaller_but_more_frequent() {
        let ta = Payload::TcpAck(TcpAck {
            flow: FlowId(0),
            cum_ack: 0,
            sack: vec![],
            echo: jtp_sim::SimTime::ZERO,
        });
        assert_eq!(ta.wire_bytes(), 52);
    }
}
