//! Differential scenario fuzzing: generated adversarial scenarios checked
//! against the engine's own redundant implementations.
//!
//! The equivalence suites pin hand-picked scenarios; this module generates
//! compositions nobody would hand-write — arbitrary topologies × traffic
//! patterns × dynamics (churn, blackouts, partitions, flapping, area
//! failures, mobility) × energy configs (batteries, duty-cycling,
//! energy-aware routing), including degenerate cases (chains spaced beyond
//! radio range, partitions at t = 0, batteries that die in seconds,
//! zero-packet workloads) — and runs each through a differential-oracle
//! stack:
//!
//! * **skip vs naive engine** — `idle_slot_skipping` off must be
//!   byte-identical,
//! * **incremental vs legacy rebuilds** — `incremental_rebuilds` off must
//!   be byte-identical,
//! * **partitioned vs sequential engine** — the flood plane on
//!   `workers` ∈ {2, 4} threads must produce byte-identical golden
//!   digests (same metrics *and* same reception trace checksum),
//! * **parallel vs sequential batches** — `run_many_on(.., 2)` must equal
//!   `run_many_on(.., 1)` replica for replica,
//! * **metamorphic invariants** — post-horizon dynamics are inert;
//!   shortest-path distances are invariant under node relabelling;
//!   unit-weight energy routing equals hop routing,
//! * **conservation self-checks** — delivered ≤ offered, residual energy
//!   within `[0, capacity]`, a monotone non-increasing alive curve.
//!
//! A deliberately-invalid slice of the generated space (out-of-range
//! endpoints, unordered churn, solid flaps, …) asserts the panic-free
//! front door: those cases must come back as [`ConfigError`], never
//! unwind. Any divergence yields a [`CaseReport`] whose
//! [`repro`](CaseReport::repro) is self-contained: the generator seed +
//! case index + the generated [`Scenario`], ready to paste into a test.
//!
//! Drive it with `cargo run --release -p jtp-bench --bin fuzz_scenarios`.

use crate::config::{
    ConfigError, DynamicsAction, DynamicsEvent, RoutingBackendKind, TopologyKind, TransportKind,
};
use crate::metrics::Metrics;
use crate::network::cluster_spec_for;
use crate::report::ReportRecorder;
use crate::runner::{run_many_on, try_run_digest_events, try_run_digest_with, try_run_experiment};
use crate::scenario::{DynamicsSpec, Scenario, TrafficPattern};
use crate::topology::{adjacency_from_positions, try_place_nodes};
use crate::trace::EventChecksum;
use jtp_events::TimeAccountant;
use jtp_phys::BatteryConfig;
use jtp_routing::{BackendSelect, LinkState, UNREACHABLE};
use jtp_sim::{NodeId, SimRng, SimTime};

/// A seeded generator of adversarial scenarios. Case `i` of seed `s` is a
/// pure function of `(s, i)` — re-running the same coordinates reproduces
/// the same scenario, transport and oracle verdict, which is what makes a
/// one-line repro possible.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioGen {
    /// The generator seed (not the per-scenario simulation seed, which is
    /// drawn from it).
    pub seed: u64,
}

/// One generated case: the scenario, the transport it runs under, and
/// whether the generator deliberately made it invalid (in which case the
/// oracle asserts a clean [`ConfigError`] rejection instead of running).
#[derive(Clone, Debug)]
pub struct GeneratedCase {
    /// The generated scenario.
    pub scenario: Scenario,
    /// Transport the oracle stack runs it under.
    pub transport: TransportKind,
    /// True when the generator injected a definitely-invalid mutation.
    pub expect_reject: bool,
}

/// Verdict of the oracle stack on one case.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// Every oracle and invariant agreed.
    Pass {
        /// Full engine runs the stack executed for this case.
        engine_runs: usize,
    },
    /// Validation rejected the case — the correct outcome for generated
    /// inputs that are malformed (and the asserted one for the
    /// deliberately-invalid slice).
    Rejected {
        /// The typed rejection.
        error: ConfigError,
    },
    /// At least one oracle or invariant disagreed — an engine bug (or,
    /// for the deliberately-invalid slice, a validator hole).
    Diverged {
        /// Human-readable description of each disagreement.
        failures: Vec<String>,
    },
}

/// Outcome of one generated case, carrying everything needed to reproduce
/// it.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Generator seed the case was drawn from.
    pub seed: u64,
    /// Case index under that seed.
    pub index: u64,
    /// Transport the case ran under.
    pub transport: TransportKind,
    /// The generated scenario.
    pub scenario: Scenario,
    /// The oracle verdict.
    pub outcome: CaseOutcome,
    /// For genuine oracle divergences: the scenario greedily shrunk to a
    /// minimal still-diverging reproduction (see [`shrink_scenario`]).
    pub shrunk: Option<Scenario>,
}

impl CaseReport {
    /// True when the case found a bug.
    pub fn is_failure(&self) -> bool {
        matches!(self.outcome, CaseOutcome::Diverged { .. })
    }

    /// A self-contained repro: generator coordinates, the one-line rerun
    /// command, and the generated scenario as code-shaped debug output.
    pub fn repro(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "--- fuzz case seed={} index={} transport={:?} ---\n",
            self.seed, self.index, self.transport
        ));
        out.push_str(&format!(
            "rerun: cargo run --release -p jtp-bench --bin fuzz_scenarios -- \
             --seed {} --start {} --cases 1\n",
            self.seed, self.index
        ));
        if let CaseOutcome::Diverged { failures } = &self.outcome {
            for f in failures {
                out.push_str(&format!("FAIL: {f}\n"));
            }
        }
        out.push_str(&format!("scenario: {:#?}\n", self.scenario));
        if let Some(s) = &self.shrunk {
            out.push_str(&format!(
                "shrunk to {} nodes, {} traffic, {} dynamics — minimal repro:\n\
                 shrunk scenario: {s:#?}\n",
                s.topology.node_count(),
                s.traffic.len(),
                s.dynamics.len()
            ));
        }
        out
    }
}

impl ScenarioGen {
    /// A generator over `seed`.
    pub fn new(seed: u64) -> Self {
        ScenarioGen { seed }
    }

    /// Generate case `index` (pure in `(self.seed, index)`).
    pub fn generate(&self, index: u64) -> GeneratedCase {
        let mut rng = SimRng::derive_indexed(self.seed, "fuzz-case", index);
        let transport = *rng
            .choose(&[
                TransportKind::Jtp,
                TransportKind::Jnc,
                TransportKind::Tcp,
                TransportKind::Atp,
                TransportKind::Cubic,
                TransportKind::Bbr,
            ])
            .expect("non-empty");
        let topology = gen_topology(&mut rng);
        let n = topology.node_count();
        let duration_s = rng.uniform(60.0, 300.0);
        let mut sc = Scenario::new(&format!("fuzz-{}-{index}", self.seed), topology)
            .duration_s(duration_s)
            .seed(rng.u64());

        for _ in 0..rng.below(4) {
            sc = sc.traffic(gen_traffic(&mut rng, n, duration_s));
        }
        for _ in 0..rng.below(4) {
            sc = sc.dynamics(gen_dynamics(&mut rng, n, duration_s));
        }
        if rng.chance(0.2) {
            sc = sc.mobile(rng.uniform(0.1, 5.0));
        }
        if rng.chance(0.3) {
            // Capacities down to 0.05 J die within seconds of boot — the
            // all-nodes-die-early regime the lifetime machinery must
            // absorb without traffic ever flowing.
            sc = sc.battery(BatteryConfig {
                capacity_j: rng.uniform(0.05, 1.2),
                ..BatteryConfig::javelen_small()
            });
            if rng.chance(0.3) {
                sc = sc.duty_cycle(jtp_mac::DutyCycleConfig::half());
            }
            if rng.chance(0.4) {
                sc = sc.energy_routing();
            }
        }

        // Hierarchical cluster routing rides along on a slice of the
        // energy-unweighted cases (validation rejects the combination
        // with energy routing, so the generator never draws it).
        if !sc.energy_routing && rng.chance(0.25) {
            sc = sc.routing_backend(RoutingBackendKind::Hierarchical);
        }

        let expect_reject = rng.chance(0.12);
        if expect_reject {
            sc = inject_invalid(&mut rng, sc, n);
        }
        GeneratedCase {
            scenario: sc,
            transport,
            expect_reject,
        }
    }

    /// Generate case `index` and run it through the oracle stack. A
    /// genuine oracle divergence is automatically shrunk to a minimal
    /// still-diverging reproduction (the `shrunk` field of the report).
    pub fn run_case(&self, index: u64) -> CaseReport {
        let case = self.generate(index);
        let mut outcome = check_scenario(&case.scenario, case.transport);
        if case.expect_reject {
            // The deliberately-invalid slice must be *rejected*; surviving
            // validation means the front door has a hole. (A Rejected
            // outcome already is the pass for this slice.)
            if let CaseOutcome::Pass { .. } = outcome {
                outcome = CaseOutcome::Diverged {
                    failures: vec!["deliberately-invalid scenario passed validation and ran".into()],
                };
            }
        }
        // Shrink genuine engine divergences (not validator holes — those
        // "fail" by *passing*, so dropping components can't preserve the
        // property being debugged). A panic while re-checking a candidate
        // counts as still-failing: the bug is still in there.
        let shrunk = match (&outcome, case.expect_reject) {
            (CaseOutcome::Diverged { .. }, false) => {
                let transport = case.transport;
                Some(shrink_scenario(
                    &case.scenario,
                    |s| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            matches!(check_scenario(s, transport), CaseOutcome::Diverged { .. })
                        }))
                        .unwrap_or(true)
                    },
                    200,
                ))
            }
            _ => None,
        };
        CaseReport {
            seed: self.seed,
            index,
            transport: case.transport,
            scenario: case.scenario,
            outcome,
            shrunk,
        }
    }
}

/// Run `sc` under `transport` through the full differential-oracle stack.
pub fn check_scenario(sc: &Scenario, transport: TransportKind) -> CaseOutcome {
    let cfg = match sc.try_build(transport) {
        Ok(cfg) => cfg,
        Err(error) => return CaseOutcome::Rejected { error },
    };
    // Pre-flight placement for every replica seed the batch below will
    // use: `run_many_on` goes through the panicking entry point, and a
    // hostile Random field can exhaust its resampling budget on any
    // replica's seed. Exhaustion is a validation outcome, not a bug.
    for replica in 0..2u64 {
        if let Err(error) =
            try_place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed.wrapping_add(replica))
        {
            return CaseOutcome::Rejected { error };
        }
    }

    let mut failures = Vec::new();
    let mut engine_runs = 0usize;
    let json = |m: &Metrics| serde_json::to_string(m).expect("metrics serialise");

    // Sequential vs parallel batches (replica 0 doubles as the base run).
    let seq = run_many_on(&cfg, 2, 1);
    let par = run_many_on(&cfg, 2, 2);
    engine_runs += 4;
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        if json(a) != json(b) {
            failures.push(format!(
                "parallel vs sequential run_many diverged at replica {i}"
            ));
        }
    }
    let base = &seq[0];
    let jbase = json(base);

    // Skip vs naive slot engine.
    {
        let mut c = cfg.clone();
        c.idle_slot_skipping = false;
        match try_run_experiment(&c) {
            Ok(m) => {
                engine_runs += 1;
                if json(&m) != jbase {
                    failures.push("idle-slot skipping vs naive engine diverged".into());
                }
            }
            Err(e) => failures.push(format!(
                "naive engine rejected a config the fast one ran: {e}"
            )),
        }
    }

    // Incremental vs legacy from-scratch rebuilds.
    {
        let mut c = cfg.clone();
        c.incremental_rebuilds = false;
        match try_run_experiment(&c) {
            Ok(m) => {
                engine_runs += 1;
                if json(&m) != jbase {
                    failures.push("incremental vs legacy rebuilds diverged".into());
                }
            }
            Err(e) => failures.push(format!("legacy rebuild path rejected the config: {e}")),
        }
    }

    // Partitioned vs sequential flood-plane engine: `workers` must be a
    // pure performance knob — identical golden digests (metrics FNV and
    // reception-trace checksum) *and* identical full event-stream
    // checksums for every worker count.
    match try_run_digest_events(&cfg) {
        Ok((d1, ev1)) => {
            engine_runs += 1;
            let line1 = d1.to_line(&sc.name);
            for workers in [2usize, 4] {
                let mut c = cfg.clone();
                c.workers = workers;
                match try_run_digest_events(&c) {
                    Ok((dw, evw)) => {
                        engine_runs += 1;
                        if dw.to_line(&sc.name) != line1 {
                            failures.push(format!(
                                "partitioned engine (workers={workers}) diverged from the \
                                 sequential digest:\n  seq: {line1}\n  par: {}",
                                dw.to_line(&sc.name)
                            ));
                        }
                        if evw != ev1 {
                            failures.push(format!(
                                "partitioned engine (workers={workers}) diverged on the \
                                 event-stream checksum: {ev1:016x} vs {evw:016x}"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!(
                        "partitioned engine (workers={workers}) rejected a config the \
                         sequential one ran: {e}"
                    )),
                }
            }
            // Subscribers observe, never perturb: stacking the full
            // report pile (recorder + time accountant + event checksum)
            // next to the digest's trace must leave the digest
            // byte-identical — and the event checksum folded inside the
            // stack must equal the standalone one.
            match try_run_digest_with(
                &cfg,
                (
                    ReportRecorder::new(),
                    (TimeAccountant::default(), EventChecksum::default()),
                ),
            ) {
                Ok((ds, (_, (_, evs)))) => {
                    engine_runs += 1;
                    if ds.to_line(&sc.name) != line1 {
                        failures.push(format!(
                            "full subscriber stack perturbed the digest:\n  \
                             off: {line1}\n  on:  {}",
                            ds.to_line(&sc.name)
                        ));
                    }
                    if evs.finish() != ev1 {
                        failures.push(format!(
                            "event checksum differs inside the full subscriber stack: \
                             {ev1:016x} vs {:016x}",
                            evs.finish()
                        ));
                    }
                }
                Err(e) => failures.push(format!(
                    "subscriber stack rejected a config the plain digest ran: {e}"
                )),
            }
        }
        Err(e) => failures.push(format!(
            "digest run rejected a config the plain run accepted: {e}"
        )),
    }

    // Metamorphic: dynamics scheduled past the horizon are never lowered
    // into the event queue, so appending one must be byte-inert.
    {
        let mut c = cfg.clone();
        c.dynamics.push(DynamicsEvent::at_s(
            c.duration.as_secs_f64() + 60.0,
            DynamicsAction::NodeDown(NodeId(0)),
        ));
        match try_run_experiment(&c) {
            Ok(m) => {
                engine_runs += 1;
                if json(&m) != jbase {
                    failures.push("post-horizon dynamics perturbed the run".into());
                }
            }
            Err(e) => failures.push(format!(
                "post-horizon dynamics made the config invalid: {e}"
            )),
        }
    }

    // Routing-layer metamorphics on this case's actual placement.
    match try_place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed) {
        Ok(pts) => {
            let adj = adjacency_from_positions(&pts, &cfg.pathloss);
            failures.extend(relabelling_failures(&adj, cfg.seed));
            failures.extend(unit_weight_failures(&adj, &cfg));
            failures.extend(hierarchical_lawfulness_failures(&adj, &cfg));
        }
        Err(e) => failures.push(format!("placement failed after the engine ran: {e}")),
    }

    // Conservation self-checks on the base run.
    failures.extend(conservation_failures(&cfg, base));

    if failures.is_empty() {
        CaseOutcome::Pass { engine_runs }
    } else {
        CaseOutcome::Diverged { failures }
    }
}

/// Greedily shrink a failing scenario to a minimal reproduction.
///
/// Starting from `sc` (for which `still_fails` must hold), repeatedly try
/// deleting one component at a time — dynamics events first, then traffic
/// flows, then nodes (via topology-shape steps: shorter chain, dropped
/// lattice row/column, dropped cluster), then the engine knobs back to
/// their defaults (`workers` → 1, `routing_backend` → exact) — keeping
/// each reduction only if the shrunk scenario still fails. Runs to a fixpoint: one full pass in
/// which no deletion survives. Candidates that merely become *invalid*
/// (e.g. traffic referencing a dropped node) naturally report not-failing
/// via the predicate (the oracle stack rejects them cleanly), so the
/// shrinker never trades a divergence for a `ConfigError`.
///
/// `max_evals` bounds the number of `still_fails` evaluations — each one
/// typically re-runs the whole oracle stack, so the budget caps total
/// shrink cost on pathological cases. The best scenario found so far is
/// returned when the budget runs out.
pub fn shrink_scenario(
    sc: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
    max_evals: usize,
) -> Scenario {
    let mut cur = sc.clone();
    let mut evals = 0usize;
    let mut try_shrink = |cur: &mut Scenario, cand: Scenario, evals: &mut usize| -> bool {
        if *evals >= max_evals {
            return false;
        }
        *evals += 1;
        if still_fails(&cand) {
            *cur = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut progressed = false;
        // Dynamics, back to front so surviving indices stay valid.
        for i in (0..cur.dynamics.len()).rev() {
            let mut cand = cur.clone();
            cand.dynamics.remove(i);
            progressed |= try_shrink(&mut cur, cand, &mut evals);
        }
        // Traffic flows.
        for i in (0..cur.traffic.len()).rev() {
            let mut cand = cur.clone();
            cand.traffic.remove(i);
            progressed |= try_shrink(&mut cur, cand, &mut evals);
        }
        // Nodes, one topology-shape step at a time.
        for topo in shrunk_topologies(&cur.topology) {
            let mut cand = cur.clone();
            cand.topology = topo;
            progressed |= try_shrink(&mut cur, cand, &mut evals);
        }
        // Engine knobs toward their defaults: a repro that survives on
        // one worker and the exact backend implicates neither the
        // flood-plane partitioning nor the hierarchical tables.
        if cur.workers != 1 {
            let mut cand = cur.clone();
            cand.workers = 1;
            progressed |= try_shrink(&mut cur, cand, &mut evals);
        }
        if cur.routing_backend != RoutingBackendKind::Exact {
            let mut cand = cur.clone();
            cand.routing_backend = RoutingBackendKind::Exact;
            progressed |= try_shrink(&mut cur, cand, &mut evals);
        }
        if !progressed || evals >= max_evals {
            return cur;
        }
    }
}

/// One-step node-count reductions of a topology, preserving its shape and
/// the two-node minimum the scenario validator requires.
fn shrunk_topologies(t: &TopologyKind) -> Vec<TopologyKind> {
    let mut out = Vec::new();
    match *t {
        TopologyKind::Linear { n, spacing_m } if n > 2 => {
            out.push(TopologyKind::Linear {
                n: n - 1,
                spacing_m,
            });
        }
        TopologyKind::Random { n, field_side_m } if n > 2 => {
            out.push(TopologyKind::Random {
                n: n - 1,
                field_side_m,
            });
        }
        TopologyKind::Grid {
            cols,
            rows,
            spacing_m,
        } => {
            if rows > 1 && (rows - 1) * cols >= 2 {
                out.push(TopologyKind::Grid {
                    cols,
                    rows: rows - 1,
                    spacing_m,
                });
            }
            if cols > 1 && rows * (cols - 1) >= 2 {
                out.push(TopologyKind::Grid {
                    cols: cols - 1,
                    rows,
                    spacing_m,
                });
            }
        }
        TopologyKind::Clustered {
            clusters,
            per_cluster,
            spread_m,
            cluster_spacing_m,
        } => {
            if clusters > 1 && (clusters - 1) * per_cluster >= 2 {
                out.push(TopologyKind::Clustered {
                    clusters: clusters - 1,
                    per_cluster,
                    spread_m,
                    cluster_spacing_m,
                });
            }
            if per_cluster > 1 && clusters * (per_cluster - 1) >= 2 {
                out.push(TopologyKind::Clustered {
                    clusters,
                    per_cluster: per_cluster - 1,
                    spread_m,
                    cluster_spacing_m,
                });
            }
        }
        _ => {}
    }
    out
}

/// Shortest-path distances are label-independent: relabelling the nodes by
/// a random permutation must permute the distance matrix exactly. (Next
/// *hops* are not checked — ties legitimately break on node id.)
fn relabelling_failures(adj: &jtp_routing::Adjacency, seed: u64) -> Vec<String> {
    let n = adj.len();
    let mut perm: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    SimRng::derive(seed, "fuzz-relabel").shuffle(&mut perm);
    let relabelled = adj.permuted(&perm);
    let d = adj.all_pairs_distances();
    let dp = relabelled.all_pairs_distances();
    for a in 0..n {
        for b in 0..n {
            if d[a][b] != dp[perm[a].index()][perm[b].index()] {
                return vec![format!(
                    "shortest-path distance {a}->{b} changed under node relabelling \
                     ({} vs {})",
                    d[a][b],
                    dp[perm[a].index()][perm[b].index()]
                )];
            }
        }
    }
    Vec::new()
}

/// Hierarchical cluster routing must be *lawful* on every placement the
/// engine accepts, whatever backend the case itself runs under: routes
/// are loop-free, deliver exactly when the exact backend's do, stay
/// within `exact distance + destination-cluster diameter` hops, and the
/// remaining-hops estimate never under-counts the walked route. The
/// oracle mirrors the engine's own cluster derivation
/// ([`cluster_spec_for`]), so it exercises precisely the structure a
/// hierarchical run would route on — including disconnected placements
/// (chains spaced beyond radio range), where unreachable pairs must stay
/// unreachable.
fn hierarchical_lawfulness_failures(
    adj: &jtp_routing::Adjacency,
    cfg: &crate::config::ExperimentConfig,
) -> Vec<String> {
    let n = adj.len();
    let select = BackendSelect::Hierarchical(cluster_spec_for(&cfg.topology));
    let mut hier = LinkState::with_backend(adj, cfg.routing_refresh, &select);
    hier.force_refresh_all(SimTime::ZERO, adj);
    let back = hier.hierarchical().expect("hierarchical backend selected");
    let d = adj.all_pairs_distances();
    for (a, row) in d.iter().enumerate() {
        for (b, &exact) in row.iter().enumerate() {
            if a == b {
                continue;
            }
            let (src, dst) = (NodeId(a as u32), NodeId(b as u32));
            let reachable = exact != UNREACHABLE;
            let path = match (hier.trace_path(src, dst), reachable) {
                (None, true) => {
                    return vec![format!(
                        "hierarchical route {a}->{b} fails or loops (exact distance {exact})"
                    )]
                }
                (Some(_), false) => {
                    return vec![format!(
                        "hierarchical route {a}->{b} exists for an exact-unreachable pair"
                    )]
                }
                (None, false) => continue,
                (Some(p), true) => p,
            };
            let mut seen = vec![false; n];
            for v in &path {
                if seen[v.index()] {
                    return vec![format!("hierarchical route {a}->{b} revisits {v}")];
                }
                seen[v.index()] = true;
            }
            let hops = (path.len() - 1) as u32;
            let bound = exact as u32 + back.cluster_diameter(dst);
            if hops < exact as u32 || hops > bound {
                return vec![format!(
                    "hierarchical stretch violated at {a}->{b}: {hops} hops, exact \
                     {exact}, bound {bound}"
                )];
            }
            match hier.remaining_hops(src, dst) {
                Some(est) if est >= hops => {}
                other => {
                    return vec![format!(
                        "hierarchical remaining-hops estimate {other:?} under-counts \
                         the {hops}-hop route {a}->{b}"
                    )]
                }
            }
        }
    }
    Vec::new()
}

/// Energy-weighted routing with all weights = 1 must agree with plain
/// hop-count routing, next hop for next hop.
fn unit_weight_failures(
    adj: &jtp_routing::Adjacency,
    cfg: &crate::config::ExperimentConfig,
) -> Vec<String> {
    let n = adj.len();
    let mut hop = LinkState::new(adj, cfg.routing_refresh);
    let mut unit = LinkState::new(adj, cfg.routing_refresh);
    unit.set_node_weights(Some(vec![1u16; n]));
    hop.force_refresh_all(SimTime::ZERO, adj);
    unit.force_refresh_all(SimTime::ZERO, adj);
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a == b {
                continue;
            }
            let (h, u) = (
                hop.next_hop(NodeId(a), NodeId(b)),
                unit.next_hop(NodeId(a), NodeId(b)),
            );
            if h != u {
                return vec![format!(
                    "unit-weight energy routing disagrees with hop routing at \
                     {a}->{b}: {h:?} vs {u:?}"
                )];
            }
        }
    }
    Vec::new()
}

/// Physical-plausibility invariants every run must satisfy, however
/// degenerate the scenario.
fn conservation_failures(cfg: &crate::config::ExperimentConfig, m: &Metrics) -> Vec<String> {
    let mut f = Vec::new();
    let n = cfg.topology.node_count();
    let offered: u64 = m.flows.iter().map(|fl| fl.offered_packets as u64).sum();
    if m.delivered_packets > offered {
        f.push(format!(
            "delivered {} exceeds offered {offered}",
            m.delivered_packets
        ));
    }
    for fl in &m.flows {
        if fl.delivered_packets > fl.offered_packets as u64 {
            f.push(format!(
                "flow {}: delivered {} exceeds offered {}",
                fl.flow, fl.delivered_packets, fl.offered_packets
            ));
        }
    }
    let ratio = m.delivery_ratio();
    if !(0.0..=1.0 + 1e-9).contains(&ratio) {
        f.push(format!("delivery ratio {ratio} outside [0, 1]"));
    }
    if !m.energy_total_j.is_finite() || m.energy_total_j < 0.0 {
        f.push(format!(
            "total energy {} not finite/non-negative",
            m.energy_total_j
        ));
    }
    for (i, e) in m.per_node_energy_j.iter().enumerate() {
        if !e.is_finite() || *e < 0.0 {
            f.push(format!("node {i} energy {e} not finite/non-negative"));
            break;
        }
    }
    if let Some(b) = &cfg.battery {
        for (i, r) in m.residual_j.iter().enumerate() {
            if !(-1e-9..=b.capacity_j + 1e-9).contains(r) {
                f.push(format!(
                    "node {i} residual {r} J outside [0, capacity {} J]",
                    b.capacity_j
                ));
                break;
            }
        }
        if m.battery_deaths > n as u64 {
            f.push(format!(
                "{} battery deaths among {n} nodes",
                m.battery_deaths
            ));
        }
    }
    let mut prev_t = f64::NEG_INFINITY;
    let mut prev_alive = u32::MAX;
    for &(t, alive) in &m.alive_curve {
        if t < prev_t {
            f.push(format!("alive curve time went backwards at t={t}"));
            break;
        }
        if alive > prev_alive {
            f.push(format!("alive curve rose to {alive} at t={t}"));
            break;
        }
        if alive as usize > n {
            f.push(format!("alive count {alive} exceeds {n} nodes"));
            break;
        }
        prev_t = t;
        prev_alive = alive;
    }
    let horizon = cfg.duration.as_secs_f64();
    if m.duration_s < 0.0 || m.duration_s > horizon + 1e-9 {
        f.push(format!(
            "harvest time {} s outside [0, horizon {horizon} s]",
            m.duration_s
        ));
    }
    for (what, t) in [
        ("first death", m.first_death_s),
        ("first partition", m.first_partition_s),
    ] {
        if let Some(t) = t {
            if !(0.0..=horizon + 1e-9).contains(&t) {
                f.push(format!("{what} at {t} s outside [0, horizon {horizon} s]"));
            }
        }
    }
    f
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

fn gen_topology(rng: &mut SimRng) -> TopologyKind {
    match rng.below(4) {
        0 => {
            // Spacing occasionally beyond the 100 m radio range: a chain
            // disconnected at t = 0 (a *valid* scenario that must run to
            // clean zero-delivery metrics).
            let spacing_m = if rng.chance(0.1) {
                rng.uniform(105.0, 140.0)
            } else {
                rng.uniform(35.0, 70.0)
            };
            TopologyKind::Linear {
                n: 2 + rng.below(8),
                spacing_m,
            }
        }
        1 => {
            let spacing_m = if rng.chance(0.1) {
                rng.uniform(105.0, 130.0) // fully disconnected lattice
            } else {
                rng.uniform(60.0, 95.0)
            };
            // rows >= 2 keeps the lattice at >= 2 nodes even when cols = 1.
            TopologyKind::Grid {
                cols: 1 + rng.below(4),
                rows: 2 + rng.below(3),
                spacing_m,
            }
        }
        2 => {
            let n = 4 + rng.below(7);
            // Occasionally a field too sparse to ever connect: placement
            // must fail with ConfigError::Placement, not a panic.
            let factor = if rng.chance(0.05) { 200.0 } else { 60.0 };
            TopologyKind::Random {
                n,
                field_side_m: factor * (n as f64).sqrt(),
            }
        }
        _ => {
            let cluster_spacing_m = rng.uniform(70.0, 110.0);
            TopologyKind::Clustered {
                clusters: 2 + rng.below(2),
                per_cluster: 2 + rng.below(3),
                spread_m: rng.uniform(5.0, cluster_spacing_m / 2.0),
                cluster_spacing_m,
            }
        }
    }
}

fn pair(rng: &mut SimRng, n: usize) -> (NodeId, NodeId) {
    let a = rng.below(n);
    let b = loop {
        let b = rng.below(n);
        if b != a {
            break b;
        }
    };
    (NodeId(a as u32), NodeId(b as u32))
}

fn gen_traffic(rng: &mut SimRng, n: usize, duration_s: f64) -> TrafficPattern {
    let start_s = rng.uniform(0.0, duration_s * 0.5);
    match rng.below(9) {
        0 => {
            let (src, dst) = pair(rng, n);
            TrafficPattern::Bulk {
                src,
                dst,
                // Zero-packet workloads included: the lowering clamps to
                // one packet, and the oracles must agree on that too.
                packets: rng.below(61) as u32,
                start_s,
                loss_tolerance: if rng.chance(0.3) {
                    rng.uniform(0.0, 0.5)
                } else {
                    0.0
                },
            }
        }
        1 => {
            let (src, dst) = pair(rng, n);
            TrafficPattern::Cbr {
                src,
                dst,
                rate_pps: rng.uniform(0.2, 3.0),
                start_s,
                duration_s: rng.uniform(5.0, 60.0),
                loss_tolerance: 0.0,
            }
        }
        2 => {
            let (src, dst) = pair(rng, n);
            TrafficPattern::OnOff {
                src,
                dst,
                rate_pps: rng.uniform(0.5, 3.0),
                on_s: rng.uniform(5.0, 20.0),
                off_s: rng.uniform(5.0, 40.0),
                start_s,
                cycles: 1 + rng.below(3) as u32,
                loss_tolerance: 0.0,
            }
        }
        3 => {
            let sink = NodeId(rng.below(n) as u32);
            let mut sources: Vec<NodeId> =
                (0..n as u32).map(NodeId).filter(|v| *v != sink).collect();
            rng.shuffle(&mut sources);
            sources.truncate(1 + rng.below(3));
            TrafficPattern::Convergecast {
                sink,
                sources,
                packets: 5 + rng.below(20) as u32,
                start_s,
                stagger_s: rng.uniform(0.0, 10.0),
            }
        }
        4 => {
            let (a, b) = pair(rng, n);
            TrafficPattern::CrossTraffic {
                a,
                b,
                packets: 5 + rng.below(35) as u32,
                start_s,
            }
        }
        5 => TrafficPattern::Poisson {
            flows: 1 + rng.below(4) as u32,
            rate_per_s: rng.uniform(0.01, 0.1),
            packets: 3 + rng.below(12) as u32,
            start_s,
            loss_tolerance: 0.0,
        },
        6 => TrafficPattern::FlashCrowd {
            bursts: 1 + rng.below(3) as u32,
            burst_rate_per_s: rng.uniform(0.005, 0.05),
            flows_per_burst: 1 + rng.below(4) as u32,
            packets: 2 + rng.below(8) as u32,
            start_s,
            loss_tolerance: if rng.chance(0.3) {
                rng.uniform(0.0, 0.4)
            } else {
                0.0
            },
        },
        7 => {
            let min_packets = 1 + rng.below(5) as u32;
            TrafficPattern::ParetoBulk {
                flows: 1 + rng.below(6) as u32,
                alpha: rng.uniform(1.05, 2.5),
                min_packets,
                max_packets: min_packets + rng.below(40) as u32,
                start_s,
                window_s: rng.uniform(0.0, duration_s * 0.4),
                loss_tolerance: 0.0,
            }
        }
        _ => {
            let sink = NodeId(rng.below(n) as u32);
            let mut sources: Vec<NodeId> =
                (0..n as u32).map(NodeId).filter(|v| *v != sink).collect();
            rng.shuffle(&mut sources);
            sources.truncate(1 + rng.below(4));
            let waves = 1 + rng.below(3) as u32;
            TrafficPattern::Incast {
                sink,
                sources,
                packets: 1 + rng.below(8) as u32,
                start_s,
                waves,
                period_s: rng.uniform(5.0, 60.0),
            }
        }
    }
}

fn gen_dynamics(rng: &mut SimRng, n: usize, duration_s: f64) -> DynamicsSpec {
    match rng.below(4) {
        0 => {
            let fail_at_s = rng.uniform(0.0, duration_s * 0.7);
            DynamicsSpec::NodeChurn {
                node: NodeId(rng.below(n) as u32),
                fail_at_s,
                recover_at_s: fail_at_s + rng.uniform(1.0, duration_s * 0.3),
            }
        }
        1 => {
            // Partitions that start at t = 0 yield a network disconnected
            // from the first instant — one of the ISSUE's named degenerate
            // compositions.
            let start_s = if rng.chance(0.3) {
                0.0
            } else {
                rng.uniform(0.0, duration_s * 0.6)
            };
            let mut members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            rng.shuffle(&mut members);
            members.truncate(1 + rng.below(n - 1));
            DynamicsSpec::Partition {
                group: members,
                start_s,
                end_s: start_s + rng.uniform(5.0, duration_s * 0.4),
            }
        }
        2 => DynamicsSpec::AreaFailure {
            x_m: rng.uniform(0.0, 600.0),
            y_m: rng.uniform(0.0, 600.0),
            radius_m: rng.uniform(20.0, 150.0),
            at_s: rng.uniform(0.0, duration_s),
        },
        _ => {
            let (a, b) = pair(rng, n);
            let down_s = rng.uniform(2.0, 15.0);
            DynamicsSpec::LinkFlap {
                a,
                b,
                first_down_s: rng.uniform(0.0, duration_s * 0.5),
                down_s,
                period_s: down_s + rng.uniform(2.0, 60.0),
                cycles: 1 + rng.below(3) as u32,
            }
        }
    }
}

/// Replace or append something definitely invalid; the front door must
/// refuse it with a [`ConfigError`], never a panic.
fn inject_invalid(rng: &mut SimRng, sc: Scenario, n: usize) -> Scenario {
    match rng.below(9) {
        0 => sc.traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(n as u32), // one past the end
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 0.0,
        }),
        1 => sc.traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(0), // self-loop
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 0.0,
        }),
        2 => sc.traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(1),
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 1.5, // outside [0, 1]
        }),
        3 => sc.dynamics(DynamicsSpec::NodeChurn {
            node: NodeId(0),
            fail_at_s: 50.0,
            recover_at_s: 20.0, // heals before failing
        }),
        4 => sc.traffic(TrafficPattern::Poisson {
            flows: 3,
            rate_per_s: 0.0, // no arrivals ever
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 0.0,
        }),
        5 => sc.dynamics(DynamicsSpec::LinkFlap {
            a: NodeId(0),
            b: NodeId(1),
            first_down_s: 10.0,
            down_s: 30.0,
            period_s: 30.0, // zero up-time
            cycles: 2,
        }),
        6 => sc.dynamics(DynamicsSpec::Partition {
            group: (0..n as u32).map(NodeId).collect(), // not a proper subset
            start_s: 10.0,
            end_s: 50.0,
        }),
        7 => {
            // Energy routing with nothing to advertise.
            let mut sc = sc.energy_routing();
            sc.battery = None;
            sc
        }
        _ => {
            let mut sc = sc;
            sc.topology = TopologyKind::Linear {
                n: 1, // no destination exists
                spacing_m: 55.0,
            };
            sc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = ScenarioGen::new(7);
        for i in 0..20 {
            let a = g.generate(i);
            let b = g.generate(i);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "case {i} not pure");
        }
        // Different indices and seeds explore different scenarios.
        let a = format!("{:?}", g.generate(0).scenario);
        let b = format!("{:?}", g.generate(1).scenario);
        let c = format!("{:?}", ScenarioGen::new(8).generate(0).scenario);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generator_covers_the_adversarial_slices() {
        let g = ScenarioGen::new(3);
        let cases: Vec<GeneratedCase> = (0..200).map(|i| g.generate(i)).collect();
        assert!(cases.iter().any(|c| c.expect_reject), "no invalid slice");
        assert!(
            cases.iter().any(|c| c.scenario.battery.is_some()),
            "no battery cases"
        );
        assert!(
            cases.iter().any(|c| c.scenario.mobile_mps.is_some()),
            "no mobile cases"
        );
        assert!(
            cases
                .iter()
                .any(|c| c.scenario.routing_backend == RoutingBackendKind::Hierarchical),
            "no hierarchical-backend cases"
        );
        // Outside the deliberately-invalid slice the generator must never
        // draw the combination validation rejects (inject_invalid may).
        assert!(
            cases.iter().filter(|c| !c.expect_reject).all(|c| {
                c.scenario.routing_backend == RoutingBackendKind::Exact
                    || !c.scenario.energy_routing
            }),
            "generator drew the rejected hierarchical + energy-routing combination"
        );
        assert!(
            cases
                .iter()
                .any(|c| !c.expect_reject && c.scenario.dynamics.len() >= 2),
            "no composed-dynamics cases"
        );
        assert!(
            cases.iter().any(|c| match c.scenario.topology {
                TopologyKind::Linear { spacing_m, .. } => spacing_m > 100.0,
                TopologyKind::Grid { spacing_m, .. } => spacing_m > 100.0,
                _ => false,
            }),
            "no disconnected-at-t0 cases"
        );
        // All six transports appear.
        for t in [
            TransportKind::Jtp,
            TransportKind::Jnc,
            TransportKind::Tcp,
            TransportKind::Atp,
            TransportKind::Cubic,
            TransportKind::Bbr,
        ] {
            assert!(cases.iter().any(|c| c.transport == t), "{t:?} never drawn");
        }
        // The heavy-traffic family flows through the generator too.
        let has = |f: fn(&TrafficPattern) -> bool| {
            cases.iter().any(|c| c.scenario.traffic.iter().any(&f))
        };
        assert!(
            has(|p| matches!(p, TrafficPattern::FlashCrowd { .. })),
            "no flash-crowd cases"
        );
        assert!(
            has(|p| matches!(p, TrafficPattern::ParetoBulk { .. })),
            "no pareto-bulk cases"
        );
        assert!(
            has(|p| matches!(p, TrafficPattern::Incast { .. })),
            "no incast cases"
        );
    }

    #[test]
    fn oracle_stack_passes_a_window_of_cases() {
        // A smoke window; the fuzz_scenarios binary (and CI's fuzz-smoke
        // job) sweep hundreds.
        let g = ScenarioGen::new(1);
        for i in 0..6 {
            let r = g.run_case(i);
            assert!(!r.is_failure(), "case {i} diverged:\n{}", r.repro());
        }
    }

    #[test]
    fn deliberately_invalid_cases_are_rejected_not_run() {
        let g = ScenarioGen::new(11);
        let mut seen = 0;
        for i in 0..120 {
            let case = g.generate(i);
            if !case.expect_reject {
                continue;
            }
            seen += 1;
            let r = g.run_case(i);
            assert!(
                matches!(r.outcome, CaseOutcome::Rejected { .. }),
                "invalid case {i} was not rejected:\n{}",
                r.repro()
            );
        }
        assert!(seen >= 5, "only {seen} invalid cases in the window");
    }

    #[test]
    fn repro_output_is_self_contained() {
        let g = ScenarioGen::new(5);
        let r = g.run_case(0);
        let repro = r.repro();
        assert!(repro.contains("--seed 5"));
        assert!(repro.contains("--start 0"));
        assert!(repro.contains("Scenario"));
    }

    #[test]
    fn shrinker_reaches_the_minimal_failing_core() {
        // A bulky scenario whose "failure" is caused by exactly one
        // dynamics component: the shrinker must strip every flow, every
        // other dynamics event and every spare node.
        let sc = Scenario::new(
            "shrink-me",
            TopologyKind::Linear {
                n: 7,
                spacing_m: 50.0,
            },
        )
        .traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(3),
            packets: 10,
            start_s: 1.0,
            loss_tolerance: 0.0,
        })
        .traffic(TrafficPattern::CrossTraffic {
            a: NodeId(1),
            b: NodeId(2),
            packets: 5,
            start_s: 2.0,
        })
        .dynamics(DynamicsSpec::NodeChurn {
            node: NodeId(1),
            fail_at_s: 5.0,
            recover_at_s: 10.0,
        })
        .dynamics(DynamicsSpec::AreaFailure {
            x_m: 0.0,
            y_m: 0.0,
            radius_m: 30.0,
            at_s: 8.0,
        })
        .dynamics(DynamicsSpec::LinkFlap {
            a: NodeId(0),
            b: NodeId(1),
            first_down_s: 3.0,
            down_s: 2.0,
            period_s: 10.0,
            cycles: 2,
        });
        let mut evals = 0usize;
        let fails = |s: &Scenario| {
            s.dynamics
                .iter()
                .any(|d| matches!(d, DynamicsSpec::AreaFailure { .. }))
        };
        let min = shrink_scenario(
            &sc,
            |s| {
                evals += 1;
                fails(s)
            },
            1000,
        );
        assert!(fails(&min), "shrinker lost the failing core");
        assert!(min.traffic.is_empty(), "flows survived: {:?}", min.traffic);
        assert_eq!(min.dynamics.len(), 1, "dynamics: {:?}", min.dynamics);
        assert!(matches!(min.topology, TopologyKind::Linear { n: 2, .. }));
        assert!(evals <= 40, "greedy shrink took {evals} evaluations");
    }

    #[test]
    fn shrinker_resets_engine_knobs_to_defaults() {
        // The failing core is one dynamics event; the worker count and
        // routing backend are innocent bystanders the shrinker must
        // return to their defaults.
        let sc = Scenario::new(
            "knobs",
            TopologyKind::Linear {
                n: 4,
                spacing_m: 50.0,
            },
        )
        .workers(4)
        .routing_backend(RoutingBackendKind::Hierarchical)
        .dynamics(DynamicsSpec::AreaFailure {
            x_m: 0.0,
            y_m: 0.0,
            radius_m: 30.0,
            at_s: 8.0,
        });
        let min = shrink_scenario(
            &sc,
            |s| {
                s.dynamics
                    .iter()
                    .any(|d| matches!(d, DynamicsSpec::AreaFailure { .. }))
            },
            1000,
        );
        assert_eq!(min.workers, 1, "workers not reduced");
        assert_eq!(
            min.routing_backend,
            RoutingBackendKind::Exact,
            "backend not reduced"
        );
        assert!(matches!(min.topology, TopologyKind::Linear { n: 2, .. }));
    }

    #[test]
    fn shrinker_respects_the_evaluation_budget() {
        let sc = Scenario::new(
            "budget",
            TopologyKind::Linear {
                n: 8,
                spacing_m: 50.0,
            },
        )
        .dynamics(DynamicsSpec::AreaFailure {
            x_m: 0.0,
            y_m: 0.0,
            radius_m: 30.0,
            at_s: 8.0,
        });
        let mut evals = 0usize;
        let min = shrink_scenario(
            &sc,
            |_| {
                evals += 1;
                true // everything "fails" — an unbounded shrinker would churn
            },
            3,
        );
        assert_eq!(evals, 3);
        // Budget-limited, but every accepted candidate still failed.
        assert!(min.topology.node_count() < 8);
    }

    #[test]
    fn shrunk_topologies_never_drop_below_two_nodes() {
        let shapes = [
            TopologyKind::Linear {
                n: 2,
                spacing_m: 50.0,
            },
            TopologyKind::Random {
                n: 2,
                field_side_m: 80.0,
            },
            TopologyKind::Grid {
                cols: 1,
                rows: 2,
                spacing_m: 80.0,
            },
            TopologyKind::Grid {
                cols: 2,
                rows: 1,
                spacing_m: 80.0,
            },
            TopologyKind::Clustered {
                clusters: 1,
                per_cluster: 2,
                spread_m: 10.0,
                cluster_spacing_m: 80.0,
            },
            TopologyKind::Clustered {
                clusters: 2,
                per_cluster: 1,
                spread_m: 10.0,
                cluster_spacing_m: 80.0,
            },
        ];
        for t in &shapes {
            for s in shrunk_topologies(t) {
                assert!(s.node_count() >= 2, "{t:?} shrank to {s:?}");
            }
            assert!(
                shrunk_topologies(t).is_empty() || t.node_count() > 2,
                "{t:?} at the 2-node floor must not shrink"
            );
        }
    }
}
