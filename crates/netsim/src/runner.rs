//! Experiment execution: single runs, traced runs and multi-seed batches
//! with 95 % confidence intervals (the paper averages 10–20 independent
//! runs per point).
//!
//! Batches run replicas in parallel with scoped OS threads over a shared
//! work counter, so any number of seeds saturates every core without an
//! external thread-pool dependency. Determinism: each replica depends only
//! on its own seed, so batch results are independent of thread scheduling.

use crate::config::{ConfigError, ExperimentConfig};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::trace::{TraceConfig, TraceLog, TraceSubscriber};
use jtp_events::{NoopSubscriber, Subscriber};
use jtp_sim::stats::ci95_halfwidth;
use jtp_sim::{run_until, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run one experiment to completion and return its metrics.
///
/// Panics on an invalid configuration; [`try_run_experiment`] reports
/// the [`ConfigError`] instead.
pub fn run_experiment(cfg: &ExperimentConfig) -> Metrics {
    // `NoopSubscriber` monomorphizes every event emission away — this is
    // the zero-overhead hot path (pinned by the `events` bench section).
    run_subscribed(cfg, NoopSubscriber).0
}

/// [`run_experiment`] with invalid configurations reported as
/// [`ConfigError`] — the panic-free entry point for generated scenarios.
pub fn try_run_experiment(cfg: &ExperimentConfig) -> Result<Metrics, ConfigError> {
    try_run_subscribed(cfg, NoopSubscriber).map(|(m, _)| m)
}

/// Run one experiment with an arbitrary event [`Subscriber`] attached and
/// return it alongside the metrics — the generic core every other entry
/// point wraps. Subscribers observe the run; they never perturb it
/// (enforced by the subscriber-equivalence tests).
///
/// Panics on an invalid configuration; [`try_run_subscribed`] reports the
/// [`ConfigError`] instead.
pub fn run_subscribed<S: Subscriber>(cfg: &ExperimentConfig, sub: S) -> (Metrics, S) {
    try_run_subscribed(cfg, sub).expect("invalid experiment configuration")
}

/// [`run_subscribed`] with invalid configurations reported as
/// [`ConfigError`].
pub fn try_run_subscribed<S: Subscriber>(
    cfg: &ExperimentConfig,
    sub: S,
) -> Result<(Metrics, S), ConfigError> {
    run_harvest(cfg, sub).map(|(m, sub, _)| (m, sub))
}

/// The run-and-harvest core: like [`try_run_subscribed`] but also hands
/// back the routing layer's flood-plane [`ParStats`] (wall-clock fan-out
/// accounting the report layer folds into its time breakdown).
pub(crate) fn run_harvest<S: Subscriber>(
    cfg: &ExperimentConfig,
    sub: S,
) -> Result<(Metrics, S, jtp_sim::par::ParStats), ConfigError> {
    let (mut net, mut queue) = Network::try_with_subscriber(cfg, sub)?;
    let horizon = net.horizon();
    run_until(&mut net, &mut queue, horizon);
    // Account any TDMA slots the idle-skipping engine elided at the tail.
    net.finalize(horizon);
    // Deterministic harvest time: if every flow completed, the drain time
    // of the queue (identical with idle-slot skipping on or off, since
    // only no-op events remain pending at completion); otherwise the
    // configured horizon — incomplete flows were active to the end.
    let now = if net.all_flows_completed() {
        queue.now().min(horizon)
    } else {
        horizon
    };
    let m = net.metrics(now);
    let par = net.parallel_stats();
    Ok((m, net.into_subscriber(), par))
}

/// Run one experiment with tracing enabled.
///
/// Panics on an invalid configuration; [`try_run_traced`] reports the
/// [`ConfigError`] instead.
pub fn run_traced(cfg: &ExperimentConfig, trace: TraceConfig) -> (Metrics, TraceLog) {
    try_run_traced(cfg, trace).expect("invalid experiment configuration")
}

/// [`run_traced`] with invalid configurations reported as [`ConfigError`].
pub fn try_run_traced(
    cfg: &ExperimentConfig,
    trace: TraceConfig,
) -> Result<(Metrics, TraceLog), ConfigError> {
    let (m, sub) = try_run_subscribed(cfg, TraceSubscriber::new(trace))?;
    Ok((m, sub.into_log()))
}

/// A batch summary of one scalar metric across independent seeds.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// 95 % confidence half-width.
    pub ci95: f64,
    /// Number of runs.
    pub runs: usize,
}

impl Summary {
    /// Summarise a sample set.
    pub fn of(samples: &[f64]) -> Summary {
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        Summary {
            mean,
            ci95: ci95_halfwidth(samples),
            runs: samples.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95)
    }
}

/// Run `runs` independent replicas (seeds `base_seed..base_seed+runs`) in
/// parallel across all available cores, work-stealing style: threads pull
/// the next replica index from a shared atomic counter, so uneven replica
/// durations don't leave cores idle the way fixed chunking does.
pub fn run_many(cfg: &ExperimentConfig, runs: usize) -> Vec<Metrics> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    run_many_on(cfg, runs, threads)
}

/// [`run_many`] with an explicit thread count (1 = fully sequential).
/// Results are identical for any thread count; exposed so the parallel
/// path stays testable on single-core machines.
pub fn run_many_on(cfg: &ExperimentConfig, runs: usize, threads: usize) -> Vec<Metrics> {
    assert!(runs >= 1 && threads >= 1);
    let threads = threads.min(runs);
    if threads == 1 {
        return (0..runs)
            .map(|i| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i as u64);
                run_experiment(&c)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<Metrics>>> = (0..runs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= runs {
                    break;
                }
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i as u64);
                let m = run_experiment(&c);
                *out[i].lock().expect("replica slot") = Some(m);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("all replicas ran")
        })
        .collect()
}

/// A compact, byte-stable fingerprint of one run: the headline metrics a
/// human compares, plus two checksums that pin *everything* — the full
/// metrics encoding and the trace event stream. Golden-trace regression
/// tests commit one digest line per canonical scenario; any engine change
/// that perturbs observable behaviour flips at least one field.
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenDigest {
    /// Distinct packets delivered.
    pub delivered: u64,
    /// Fraction of offered packets delivered.
    pub delivery_ratio: f64,
    /// Mean per-flow goodput (kbit/s).
    pub goodput_kbps: f64,
    /// Energy per delivered bit (µJ/bit).
    pub energy_per_bit_uj: f64,
    /// FNV-1a over the full JSON encoding of [`Metrics`] (every counter,
    /// every per-node energy bit pattern).
    pub metrics_fnv: u64,
    /// [`TraceLog::checksum`] of the reception event stream.
    pub trace_checksum: u64,
}

impl GoldenDigest {
    /// One-line encoding (space-separated, fixed field order) used by the
    /// committed golden file.
    pub fn to_line(&self, name: &str) -> String {
        format!(
            "{name} delivered={} ratio={:.6} goodput={:.6} epb={:.6} metrics={:016x} trace={:016x}",
            self.delivered,
            self.delivery_ratio,
            self.goodput_kbps,
            self.energy_per_bit_uj,
            self.metrics_fnv,
            self.trace_checksum,
        )
    }
}

/// Run `cfg` with reception tracing and digest the outcome (see
/// [`GoldenDigest`]).
pub fn run_digest(cfg: &ExperimentConfig) -> GoldenDigest {
    try_run_digest(cfg).expect("invalid experiment configuration")
}

/// [`run_digest`] with invalid configurations reported as [`ConfigError`].
pub fn try_run_digest(cfg: &ExperimentConfig) -> Result<GoldenDigest, ConfigError> {
    try_run_digest_with(cfg, NoopSubscriber).map(|(d, _)| d)
}

/// [`try_run_digest`] with an extra subscriber stacked next to the
/// digest's reception trace. The digest is computed from the trace half
/// of the stack exactly as [`try_run_digest`] computes it, so for any
/// `extra` the digest must be byte-identical to the plain one — the
/// subscriber-equivalence tests and the fuzz oracle pin exactly that.
pub fn try_run_digest_with<S: Subscriber>(
    cfg: &ExperimentConfig,
    extra: S,
) -> Result<(GoldenDigest, S), ConfigError> {
    let trace = TraceSubscriber::new(TraceConfig {
        receptions: true,
        ..Default::default()
    });
    let (m, (trace, extra)) = try_run_subscribed(cfg, (trace, extra))?;
    Ok((digest_from_parts(&m, trace.log().checksum()), extra))
}

/// Assemble a [`GoldenDigest`] from harvested metrics and the reception
/// trace checksum (shared by the plain and stacked digest runners).
fn digest_from_parts(m: &Metrics, trace_checksum: u64) -> GoldenDigest {
    let json = serde_json::to_string(m).expect("metrics serialise");
    let mut fnv = crate::trace::Fnv64::default();
    fnv.write(json.as_bytes());
    GoldenDigest {
        delivered: m.delivered_packets,
        delivery_ratio: m.delivery_ratio(),
        goodput_kbps: m.avg_goodput_kbps(),
        energy_per_bit_uj: m.energy_per_bit_uj(),
        metrics_fnv: fnv.finish(),
        trace_checksum,
    }
}

/// [`run_digest`] plus the [`crate::trace::EventChecksum`] over the full
/// typed event stream — the third golden surface (`events.txt`) next to
/// the digest's metrics FNV and reception-trace checksum. The digest half
/// is byte-identical to [`run_digest`]'s (subscriber equivalence), so the
/// pair extends the pinned surface without touching existing golden lines.
///
/// Panics on an invalid configuration; [`try_run_digest_events`] reports
/// the [`ConfigError`] instead.
pub fn run_digest_events(cfg: &ExperimentConfig) -> (GoldenDigest, u64) {
    try_run_digest_events(cfg).expect("invalid experiment configuration")
}

/// [`run_digest_events`] with invalid configurations reported as
/// [`ConfigError`].
pub fn try_run_digest_events(cfg: &ExperimentConfig) -> Result<(GoldenDigest, u64), ConfigError> {
    let (d, ev) = try_run_digest_with(cfg, crate::trace::EventChecksum::default())?;
    Ok((d, ev.finish()))
}

/// [`try_run_digest`] on the partitioned engine: run `cfg` with
/// [`ExperimentConfig::workers`] overridden to `workers`. The byte-identity
/// rule makes this a pure performance knob — the digest must equal the
/// sequential one for every worker count, which is exactly what the
/// partitioned-vs-sequential differential oracle and the
/// `engine_equivalence` worker sweeps assert.
pub fn try_run_digest_on(
    cfg: &ExperimentConfig,
    workers: usize,
) -> Result<GoldenDigest, ConfigError> {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    try_run_digest(&cfg)
}

/// Convenience: batch-run and summarise energy-per-bit and goodput, the
/// paper's two headline metrics.
pub fn summarize_runs(metrics: &[Metrics]) -> (Summary, Summary) {
    let epb: Vec<f64> = metrics
        .iter()
        .map(|m| m.energy_per_bit_uj())
        .filter(|v| v.is_finite())
        .collect();
    let gp: Vec<f64> = metrics.iter().map(|m| m.avg_goodput_kbps()).collect();
    (Summary::of(&epb), Summary::of(&gp))
}

/// Format a simulated end time for logs.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:.1}s", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, TransportKind};

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert_eq!(s.runs, 3);
        let empty = Summary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.runs, 0);
        assert!(format!("{s}").contains('±'));
    }

    #[test]
    fn run_many_uses_distinct_seeds_and_is_deterministic() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Jtp)
            .duration_s(200.0)
            .seed(55)
            .bulk_flow(20, 2.0, 0.0);
        let a = run_many(&cfg, 3);
        let b = run_many(&cfg, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mac_attempts, y.mac_attempts, "batch not reproducible");
        }
        // Replica 0 must equal a direct run with the same seed.
        let direct = run_experiment(&cfg);
        assert_eq!(a[0].mac_attempts, direct.mac_attempts);
        // Different replicas see different channel realisations.
        assert!(
            a.iter().any(|m| m.mac_attempts != a[0].mac_attempts) || a[0].delivered_packets == 0,
            "all replicas identical — seeds not varied"
        );
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Force the scoped-thread work-stealing path even on single-core
        // machines; replicas must be identical to the sequential path.
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Jtp)
            .duration_s(150.0)
            .seed(60)
            .bulk_flow(15, 2.0, 0.0);
        let seq = run_many_on(&cfg, 4, 1);
        let par = run_many_on(&cfg, 4, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.mac_attempts, b.mac_attempts);
            assert_eq!(a.delivered_packets, b.delivered_packets);
            assert_eq!(a.energy_total_j.to_bits(), b.energy_total_j.to_bits());
        }
    }

    #[test]
    fn summarize_runs_filters_infinite_energy() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Jtp)
            .duration_s(150.0)
            .seed(56)
            .bulk_flow(10, 2.0, 0.0);
        let ms = run_many(&cfg, 2);
        let (epb, gp) = summarize_runs(&ms);
        assert!(epb.mean.is_finite());
        assert!(gp.mean >= 0.0);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let cfg = ExperimentConfig::linear(4)
            .transport(TransportKind::Jtp)
            .duration_s(300.0)
            .seed(57)
            .bulk_flow(30, 2.0, 0.0);
        let plain = run_experiment(&cfg);
        let (traced, log) = run_traced(
            &cfg,
            crate::trace::TraceConfig {
                receptions: true,
                ..Default::default()
            },
        );
        assert_eq!(
            plain.mac_attempts, traced.mac_attempts,
            "tracing must not perturb"
        );
        assert_eq!(log.receptions.len() as u64, traced.delivered_packets);
    }
}
