//! Experiment execution: single runs, traced runs and multi-seed batches
//! with 95 % confidence intervals (the paper averages 10–20 independent
//! runs per point).

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::network::Network;
use crate::trace::{TraceConfig, TraceLog};
use jtp_sim::stats::ci95_halfwidth;
use jtp_sim::{run_until, SimTime};

/// Run one experiment to completion and return its metrics.
pub fn run_experiment(cfg: &ExperimentConfig) -> Metrics {
    run_traced(cfg, TraceConfig::default()).0
}

/// Run one experiment with tracing enabled.
pub fn run_traced(cfg: &ExperimentConfig, trace: TraceConfig) -> (Metrics, TraceLog) {
    let (mut net, mut queue) = Network::new(cfg, trace);
    let horizon = net.horizon();
    run_until(&mut net, &mut queue, horizon);
    let now = queue.now().min(horizon);
    let m = net.metrics(now);
    (m, net.trace)
}

/// A batch summary of one scalar metric across independent seeds.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// 95 % confidence half-width.
    pub ci95: f64,
    /// Number of runs.
    pub runs: usize,
}

impl Summary {
    /// Summarise a sample set.
    pub fn of(samples: &[f64]) -> Summary {
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        Summary {
            mean,
            ci95: ci95_halfwidth(samples),
            runs: samples.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95)
    }
}

/// Run `runs` independent replicas (seeds `base_seed..base_seed+runs`),
/// in parallel across threads. Determinism: each replica depends only on
/// its own seed, so the batch result is independent of thread scheduling.
pub fn run_many(cfg: &ExperimentConfig, runs: usize) -> Vec<Metrics> {
    assert!(runs >= 1);
    let mut out: Vec<Option<Metrics>> = vec![None; runs];
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(runs);
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(runs.div_ceil(threads)).enumerate() {
            let cfg = cfg.clone();
            scope.spawn(move |_| {
                let per = chunk.len();
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let run_idx = chunk_idx * per + i;
                    let mut c = cfg.clone();
                    c.seed = cfg.seed.wrapping_add(run_idx as u64);
                    *slot = Some(run_experiment(&c));
                }
            });
        }
    })
    .expect("replica thread panicked");
    out.into_iter().map(|m| m.expect("all replicas ran")).collect()
}

/// Convenience: batch-run and summarise energy-per-bit and goodput, the
/// paper's two headline metrics.
pub fn summarize_runs(metrics: &[Metrics]) -> (Summary, Summary) {
    let epb: Vec<f64> = metrics
        .iter()
        .map(|m| m.energy_per_bit_uj())
        .filter(|v| v.is_finite())
        .collect();
    let gp: Vec<f64> = metrics.iter().map(|m| m.avg_goodput_kbps()).collect();
    (Summary::of(&epb), Summary::of(&gp))
}

/// Format a simulated end time for logs.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:.1}s", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, TransportKind};

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert_eq!(s.runs, 3);
        let empty = Summary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.runs, 0);
        assert!(format!("{s}").contains('±'));
    }

    #[test]
    fn run_many_uses_distinct_seeds_and_is_deterministic() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Jtp)
            .duration_s(200.0)
            .seed(55)
            .bulk_flow(20, 2.0, 0.0);
        let a = run_many(&cfg, 3);
        let b = run_many(&cfg, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mac_attempts, y.mac_attempts, "batch not reproducible");
        }
        // Replica 0 must equal a direct run with the same seed.
        let direct = run_experiment(&cfg);
        assert_eq!(a[0].mac_attempts, direct.mac_attempts);
        // Different replicas see different channel realisations.
        assert!(
            a.iter().any(|m| m.mac_attempts != a[0].mac_attempts)
                || a[0].delivered_packets == 0,
            "all replicas identical — seeds not varied"
        );
    }

    #[test]
    fn summarize_runs_filters_infinite_energy() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Jtp)
            .duration_s(150.0)
            .seed(56)
            .bulk_flow(10, 2.0, 0.0);
        let ms = run_many(&cfg, 2);
        let (epb, gp) = summarize_runs(&ms);
        assert!(epb.mean.is_finite());
        assert!(gp.mean >= 0.0);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let cfg = ExperimentConfig::linear(4)
            .transport(TransportKind::Jtp)
            .duration_s(300.0)
            .seed(57)
            .bulk_flow(30, 2.0, 0.0);
        let plain = run_experiment(&cfg);
        let (traced, log) = run_traced(
            &cfg,
            crate::trace::TraceConfig {
                receptions: true,
                ..Default::default()
            },
        );
        assert_eq!(plain.mac_attempts, traced.mac_attempts, "tracing must not perturb");
        assert_eq!(log.receptions.len() as u64, traced.delivered_packets);
    }
}
