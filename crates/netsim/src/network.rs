//! The assembled network: nodes (MAC + iJTP + energy meter), channel,
//! routing, flows and the event loop gluing them together.
//!
//! One [`Network`] is one experiment run. The event loop follows the
//! paper's system structure:
//!
//! * a TDMA slot event fires for every slot owned by a **backlogged**
//!   node; the pseudo-random schedule names the owner, which transmits the
//!   head of its MAC queue (after the iJTP PreXmit hook — Algorithm 1 —
//!   has charged energy, set the attempt budget and stamped the available
//!   rate). Slots owned by idle nodes are *skipped*: the engine jumps
//!   straight to the next busy slot and replays the skipped owners'
//!   idle-slot statistics exactly, so results are byte-identical to the
//!   naive slot-per-event loop at a fraction of the event count
//!   (`ExperimentConfig::idle_slot_skipping` toggles this),
//! * delivered frames either terminate at their endpoint (eJTP / TCP /
//!   ATP state machines) or pass through the iJTP PostRcv hook
//!   (Algorithm 2 — caching and SNACK-triggered local recovery) and are
//!   forwarded along the link-state route,
//! * sender wakeups pace data out at the receiver-assigned rate; receiver
//!   timers emit regular feedback; mobility ticks move nodes and refresh
//!   (staleness permitting) the routing views,
//! * scheduled **dynamics** events crash/heal nodes, black out links,
//!   open/heal partitions and blast whole discs: the effective ground
//!   truth is the geometric connectivity masked by the substrate state,
//!   and each action floods a routing refresh while in-flight traffic
//!   fails at the channel — identically in the skipping and naive
//!   engines,
//! * with finite **batteries**, every radio charge plus a per-frame
//!   idle/sleep baseline draw (charged at each owned slot, so the
//!   idle-slot replay reproduces the naive drain sequence exactly)
//!   depletes the node's reservoir; depletion kills the node for good
//!   through the same masked-truth machinery, at a slot event the
//!   skipping engine *aims* at the predicted death slot (an analytic
//!   lower bound far out, the exactly-replayed crossing once near).
//!   Duty-cycled nodes sleep whole frames (they transmit but don't
//!   receive), and energy-aware routing periodically floods quantised
//!   residual fractions as per-node forwarding weights.
//!
//! Hot-path notes: per-link Gilbert-Elliott fading processes live in a
//! flat `Vec` indexed by a dense triangular pair index (no per-frame
//! hashing), and slot events are scheduled in event class 0 so a slot
//! boundary always precedes same-instant timers regardless of *when* the
//! slot event was (re)scheduled — the invariant the skipping engine's
//! equivalence proof rests on.

use crate::config::{
    ConfigError, DynamicsAction, DynamicsEvent, EnergyRoutingConfig, ExperimentConfig,
    MobilityConfig, RoutingBackendKind, TopologyKind, TransportKind,
};
use crate::metrics::{FlowMetrics, Metrics};
use crate::partition::{FloodSync, TopologyCut};
use crate::payload::{Payload, TransportPacket};
use crate::topology::{
    adjacency_from_positions, adjacency_from_positions_brute, field_for, geometry_edge_diff,
    try_place_nodes, EdgeScratch,
};
use crate::trace::{TraceConfig, TraceLog, TraceSubscriber};
use crate::truth::MaskedTruth;
use jtp::{IjtpModule, JtpReceiver, JtpSender, LinkInfo, PreXmitVerdict};
use jtp_baselines::atp::{AtpReceiver, AtpSender};
use jtp_baselines::bbr::{BbrReceiver, BbrSender};
use jtp_baselines::cubic::{CubicReceiver, CubicSender};
use jtp_baselines::tcp::{TcpReceiver, TcpSender};
use jtp_events::{
    AttemptBudget, BatteryDeath, Delivery, DropCause, DynamicsApplied, FloodCause, FloodEnd,
    FloodStart, MonitorUpdate, NoopSubscriber, PacketDrop, PacketKind, PacketSend, SlotGrant,
    Subscriber, Subsystem,
};
use jtp_mac::{Frame, FrameKind, NodeMac, SleepSchedule, SlotOutcome, TdmaSchedule};
use jtp_phys::energy::EnergyCategory;
use jtp_phys::gilbert::{GilbertConfig, GilbertElliott};
use jtp_phys::{
    Battery, BatteryConfig, EnergyMeter, MobilityModel, PathLoss, Point, RadioEnergyModel,
    RandomWaypoint,
};
use jtp_routing::{BackendSelect, ClusterSpec, LinkState};
use jtp_sim::{EventId, EventQueue, FlowId, NodeId, SimDuration, SimRng, SimTime, Simulation};
use std::time::Instant;

/// Open a wall-clock span iff the subscriber asked for timing — with
/// `S::TIMING == false` this is a compile-time `None` and no clock is
/// read (wall-clock reads are not free on the hot path).
fn span_start<S: Subscriber>() -> Option<Instant> {
    S::TIMING.then(Instant::now)
}

/// Derive the hierarchical backend's cluster structure from the
/// placement family — the topology already knows where the natural
/// routing regions are:
///
/// * `Grid` — contiguous `b×b` blocks (`b ≈ (cols·rows)^¼`, so block
///   size tracks √n). Blocks are connected rectangles of the
///   4-connected lattice and geodesically convex, so intra-block routes
///   are exact shortest paths.
/// * `Clustered` — the placement's own groups (nodes are laid down
///   `per_cluster` at a time, so node `i` belongs to group
///   `i / per_cluster`). Each group is a dense disc (complete subgraph
///   at the default spread).
/// * `Linear` / `Random` — no exploitable structure declared; BFS-grown
///   patches of ≈ ⌈√n⌉ nodes (`ClusterSpec::Auto`).
///
/// Disconnected labels (possible under adversarial geometry) are split
/// into connected components by the backend at construction, so the
/// derivation never has to prove connectivity itself. Shared with the
/// fuzzer's lawfulness oracle, which must mirror the engine's clustering
/// exactly.
pub fn cluster_spec_for(topology: &TopologyKind) -> ClusterSpec {
    match topology {
        TopologyKind::Grid { cols, rows, .. } => {
            let n = cols * rows;
            let b = ((n as f64).sqrt().sqrt().round() as usize).max(1);
            let blocks_per_row = cols.div_ceil(b).max(1);
            let labels = (0..n)
                .map(|i| {
                    let (r, c) = (i / cols, i % cols);
                    ((r / b) * blocks_per_row + c / b) as u32
                })
                .collect();
            ClusterSpec::Assignment(labels)
        }
        TopologyKind::Clustered {
            clusters,
            per_cluster,
            ..
        } => {
            let labels = (0..clusters * per_cluster)
                .map(|i| (i / per_cluster) as u32)
                .collect();
            ClusterSpec::Assignment(labels)
        }
        TopologyKind::Linear { .. } | TopologyKind::Random { .. } => {
            ClusterSpec::Auto { target: 0 }
        }
    }
}

/// Event class of TDMA slot boundaries: delivered before same-instant
/// timer events (classes are ordered before FIFO sequence at ties).
const SLOT_CLASS: u8 = 0;

/// Frames within which battery-death prediction switches from the
/// analytic lower bound to the exact per-frame float replay (the replay
/// must reproduce the engine's drain sequence bit-for-bit, so the final
/// approach is always walked; the window also absorbs the bound's
/// float-safety margin).
const PREDICT_EXACT_WINDOW: u64 = 32;

/// Simulation events.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// TDMA slot boundary (global slot index).
    Slot(u64),
    /// A flow's transfer begins.
    FlowStart(FlowId),
    /// Pacing / sender timers.
    SenderWakeup(FlowId),
    /// Regular feedback timer (JTP/ATP) or delayed-ACK flush (TCP).
    ReceiverTimer(FlowId),
    /// Positions move; topology and routing views refresh.
    MobilityTick,
    /// A scheduled substrate dynamics action fires (index into
    /// [`ExperimentConfig::dynamics`]).
    Dynamics(u32),
    /// Periodic residual-energy advertisement: nodes flood their battery
    /// levels and routing re-weights (energy-aware routing only).
    EnergyAdvert,
}

/// Transport endpoints of a flow.
enum Endpoints {
    Jtp(Box<JtpSender>, Box<JtpReceiver>),
    Tcp(Box<TcpSender>, Box<TcpReceiver>),
    Atp(Box<AtpSender>, Box<AtpReceiver>),
    Cubic(Box<CubicSender>, Box<CubicReceiver>),
    Bbr(Box<BbrSender>, Box<BbrReceiver>),
}

struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    start: SimTime,
    offered_packets: u32,
    endpoints: Endpoints,
    started: bool,
    completed_at: Option<SimTime>,
    /// The single pending sender wakeup, if any: (handle, fire time).
    /// Wakeups are deduplicated — an ACK arrival used to spawn an extra
    /// parallel wakeup chain that never died, giving O(acks²) no-op timer
    /// events per flow; now an earlier request cancels the later one.
    wakeup: Option<(EventId, SimTime)>,
}

enum Mobility {
    Static,
    Waypoint(RandomWaypoint),
}

struct Node {
    mac: NodeMac<TransportPacket>,
    ijtp: IjtpModule,
    energy: EnergyMeter,
    mobility: Mobility,
}

/// One experiment run: build with [`Network::with_subscriber`] (or
/// [`Network::new`] for the [`TraceSubscriber`]-instrumented form),
/// drive with [`jtp_sim::run_until`], harvest with [`Network::metrics`].
///
/// The subscriber is a **type parameter**, not a field behind a flag:
/// every event emission site is gated on the compile-time
/// [`Subscriber::ENABLED`], so with the default [`NoopSubscriber`] the
/// whole event layer monomorphizes away — no branch, no payload
/// construction — and the engine is byte-identical to an
/// uninstrumented build (pinned by the subscriber-equivalence tests
/// and the `events` bench section).
pub struct Network<S: Subscriber = NoopSubscriber> {
    transport: TransportKind,
    nodes: Vec<Node>,
    positions: Vec<Point>,
    flows: Vec<Flow>,
    schedule: TdmaSchedule,
    routing: LinkState,
    /// Static cut of the topology across the flood-plane workers (the
    /// `ExperimentConfig::workers` knob; 1 partition = sequential).
    cut: TopologyCut,
    /// Flood-barrier ledger: one cross-partition batch exchange per
    /// routing flood, merged at the flood's virtual time.
    flood_sync: FloodSync,
    /// Effective ground truth: geometric connectivity masked by the
    /// substrate state (churn, blackouts, partitions, battery deaths),
    /// maintained incrementally per dynamics event.
    truth: MaskedTruth,
    /// Per-undirected-link fading processes, indexed by [`Network::pair_index`].
    /// Lazily initialised so RNG substream consumption matches link first-use
    /// order exactly (the former `HashMap` behaviour).
    channels: Vec<Option<GilbertElliott>>,
    attempt_rng: SimRng,
    /// Reused neighbour-discovery buffers for mobility ticks (spatial
    /// grid CSR arrays + packed candidate and edge lists): zero
    /// steady-state allocations per tick, byte-identical edge sets.
    edge_scratch: EdgeScratch,
    pathloss: PathLoss,
    gilbert_cfg: GilbertConfig,
    energy_model: RadioEnergyModel,
    seed: u64,
    mobility_cfg: Option<MobilityConfig>,
    tcp_ack_flush: SimDuration,
    end: SimTime,
    /// The attached event subscriber (see [`jtp_events`]). The engine
    /// only ever writes to it — subscriber state never feeds back into
    /// simulation results.
    sub: S,
    no_route_drops: u64,
    // ---- substrate dynamics state ----
    /// The scheduled dynamics timeline (from the config).
    dynamics: Vec<DynamicsEvent>,
    /// Maintain the effective truth (and the weighted routing table)
    /// incrementally per dynamics event; false = the legacy from-scratch
    /// rebuilds, kept runnable for benchmarks and equivalence tests.
    incremental_rebuilds: bool,
    /// Frames lost to node crashes (flushed queues + sends from a dead
    /// node), distinct from congestion/ARQ/no-route drops.
    churn_drops: u64,
    // ---- battery / lifetime state ----
    /// Finite energy budgets (None = the tally-only monitor).
    battery_cfg: Option<BatteryConfig>,
    /// Per-node reservoirs (empty when batteries are disabled).
    batteries: Vec<Battery>,
    /// `battery_dead[i]` ⇔ node i's battery depleted. Unlike dynamics
    /// churn, battery death is permanent: `NodeUp` cannot revive it.
    battery_dead: Vec<bool>,
    /// Skipping engine only: a future slot (owned by node i) at or
    /// before which node i's battery provably cannot die of baseline
    /// draw — either the exactly-replayed crossing slot (when the death
    /// is within [`PREDICT_EXACT_WINDOW`] frames) or a conservative
    /// analytic lower bound on it. Slot events are aimed at these: an
    /// aimed slot that isn't the crossing fires harmlessly and re-aims,
    /// so endogenous death still fires at the exact instant the naive
    /// per-slot loop would detect it.
    death_slot: Vec<Option<u64>>,
    /// Nodes whose batteries crossed zero in the current event, in drain
    /// order; processed (once each) at the event's timestamp.
    pending_deaths: Vec<NodeId>,
    /// Battery deaths in chronological order.
    deaths: Vec<(SimTime, NodeId)>,
    /// First instant battery deaths split the surviving nodes.
    first_partition: Option<SimTime>,
    /// Baseline battery charge per owned slot while awake (J).
    baseline_idle_j: f64,
    /// Baseline battery charge per owned slot while duty-cycle asleep (J).
    baseline_sleep_j: f64,
    /// Duty-cycled sleep schedule (None = always listening).
    sleep: Option<SleepSchedule>,
    /// Energy-aware routing parameters (None = hop-count routing).
    energy_cfg: Option<EnergyRoutingConfig>,
    /// The last advertised weight vector (avoids re-flooding unchanged
    /// advertisements).
    advertised_weights: Option<Vec<u16>>,
    // ---- idle-slot-skipping engine state ----
    /// Whether slots owned by idle nodes are skipped (config).
    skip_idle: bool,
    /// Whether sender wakeups are deduplicated per flow (config).
    coalesce_wakeups: bool,
    /// `backlog[i]` ⇔ node i's MAC queue is non-empty.
    backlog: Vec<bool>,
    /// Count of `true` entries in `backlog`.
    backlog_count: usize,
    /// Set when `backlog` changed since the slot event was last synced.
    backlog_dirty: bool,
    /// Next slot index not yet accounted (fired or replayed as idle).
    slot_cursor: u64,
    /// The scheduled slot event, if any: (queue handle, slot index).
    pending_slot: Option<(EventId, u64)>,
    /// Flows with `completed_at` set (O(1) all-done check).
    completed_flows: usize,
}

impl Network<TraceSubscriber> {
    /// Build a [`TraceConfig`]-instrumented network and its event queue
    /// from a validated configuration — the traced front door behind
    /// every golden digest.
    ///
    /// Panics on an invalid configuration; [`Network::try_new`] reports
    /// the [`ConfigError`] instead.
    pub fn new(
        cfg: &ExperimentConfig,
        trace_cfg: TraceConfig,
    ) -> (Network<TraceSubscriber>, EventQueue<Event>) {
        Network::try_new(cfg, trace_cfg).expect("invalid experiment configuration")
    }

    /// [`Network::new`] with invalid or unplaceable configurations
    /// reported as [`ConfigError`] — the panic-free front door generated
    /// (fuzzer) scenarios come through.
    pub fn try_new(
        cfg: &ExperimentConfig,
        trace_cfg: TraceConfig,
    ) -> Result<(Network<TraceSubscriber>, EventQueue<Event>), ConfigError> {
        Network::try_with_subscriber(cfg, TraceSubscriber::new(trace_cfg))
    }

    /// The trace collected so far.
    pub fn trace(&self) -> &TraceLog {
        self.sub.log()
    }
}

impl<S: Subscriber> Network<S> {
    /// Build a network wired to an arbitrary event subscriber. With the
    /// default [`NoopSubscriber`] the event layer compiles to nothing.
    ///
    /// Panics on an invalid configuration; use
    /// [`Network::try_with_subscriber`] to report the error instead.
    pub fn with_subscriber(cfg: &ExperimentConfig, sub: S) -> (Network<S>, EventQueue<Event>) {
        Network::try_with_subscriber(cfg, sub).expect("invalid experiment configuration")
    }

    /// [`Network::with_subscriber`], returning configuration errors.
    pub fn try_with_subscriber(
        cfg: &ExperimentConfig,
        sub: S,
    ) -> Result<(Network<S>, EventQueue<Event>), ConfigError> {
        cfg.validate()?;
        let n = cfg.topology.node_count();
        let positions = try_place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed)?;
        let truth = MaskedTruth::new(adjacency_from_positions(&positions, &cfg.pathloss));
        let select = match cfg.routing_backend {
            RoutingBackendKind::Exact => BackendSelect::Exact,
            RoutingBackendKind::Hierarchical => {
                BackendSelect::Hierarchical(cluster_spec_for(&cfg.topology))
            }
        };
        let mut routing = LinkState::with_backend(truth.adjacency(), cfg.routing_refresh, &select);
        routing.set_full_weighted_rebuild(!cfg.incremental_rebuilds);
        routing.set_full_table_rebuild(!cfg.incremental_rebuilds);
        routing.set_workers(cfg.workers);
        let schedule = TdmaSchedule::new(n as u32, cfg.slot, cfg.seed);
        let capacity = schedule.per_node_capacity_pps();
        let field = field_for(&cfg.topology);

        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let cache = if cfg.transport == TransportKind::Jtp && cfg.jtp.caching_enabled {
                    cfg.jtp.cache_capacity
                } else {
                    0
                };
                let mobility = match &cfg.mobility {
                    Some(m) => Mobility::Waypoint(RandomWaypoint::new(
                        field,
                        positions[i],
                        m.speed_mps,
                        m.mean_leg_m,
                        m.mean_pause_s,
                        cfg.seed,
                        i as u64,
                    )),
                    None => Mobility::Static,
                };
                let mut ijtp = IjtpModule::with_cache_policy(
                    cache,
                    cfg.mac.max_attempts_cap,
                    cfg.jtp.cache_policy,
                );
                ijtp.set_allocation(cfg.jtp.allocation);
                Node {
                    mac: NodeMac::new(cfg.mac, capacity),
                    ijtp,
                    energy: EnergyMeter::new(),
                    mobility,
                }
            })
            .collect();

        let mut jtp_cfg = cfg.jtp.clone();
        // Give the receiver-side controller the true capacity ceiling (the
        // paper: "the eJTP destination also limits the sending rate by its
        // delivery rate"), leaving headroom for rate probing.
        jtp_cfg.max_rate_pps = jtp_cfg.max_rate_pps.min(capacity * 2.0);
        // At xl scale the TDMA frame is long enough that the capacity
        // ceiling can undercut the configured rate floor; the floor must
        // follow the ceiling down or the transport config turns invalid.
        jtp_cfg.min_rate_pps = jtp_cfg.min_rate_pps.min(jtp_cfg.max_rate_pps);
        // The congestion-avoidance margin δ scales with the slot capacity:
        // JTP "aggressively seeks to avoid any congestion-based packet
        // loss" by keeping the path's available rate strictly positive.
        jtp_cfg.delta_avail_pps = jtp_cfg.delta_avail_pps.max(0.10 * capacity);
        let mut tcp_cfg = cfg.tcp.clone();
        tcp_cfg.max_rate_pps = tcp_cfg.max_rate_pps.min(capacity * 2.0);
        tcp_cfg.min_rate_pps = tcp_cfg.min_rate_pps.min(tcp_cfg.max_rate_pps);
        let mut atp_cfg = cfg.atp.clone();
        atp_cfg.max_rate_pps = atp_cfg.max_rate_pps.min(capacity * 2.0);
        atp_cfg.min_rate_pps = atp_cfg.min_rate_pps.min(atp_cfg.max_rate_pps);
        let mut cubic_cfg = cfg.cubic.clone();
        cubic_cfg.max_rate_pps = cubic_cfg.max_rate_pps.min(capacity * 2.0);
        cubic_cfg.min_rate_pps = cubic_cfg.min_rate_pps.min(cubic_cfg.max_rate_pps);
        let mut bbr_cfg = cfg.bbr.clone();
        bbr_cfg.max_rate_pps = bbr_cfg.max_rate_pps.min(capacity * 2.0);
        bbr_cfg.min_rate_pps = bbr_cfg.min_rate_pps.min(bbr_cfg.max_rate_pps);

        let flows: Vec<Flow> = cfg
            .flows
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = FlowId(i as u16);
                let endpoints = match cfg.transport {
                    TransportKind::Jtp | TransportKind::Jnc => {
                        let mut fc = jtp_cfg.clone();
                        if let Some(r) = spec.initial_rate_pps {
                            fc.initial_rate_pps = r.clamp(fc.min_rate_pps, fc.max_rate_pps);
                        }
                        Endpoints::Jtp(
                            Box::new(JtpSender::new(
                                id,
                                spec.packets,
                                spec.loss_tolerance,
                                fc.clone(),
                            )),
                            Box::new(JtpReceiver::new(id, spec.loss_tolerance, fc)),
                        )
                    }
                    TransportKind::Tcp => Endpoints::Tcp(
                        Box::new(TcpSender::new(id, spec.packets, tcp_cfg.clone())),
                        Box::new(TcpReceiver::new(id, tcp_cfg.clone())),
                    ),
                    TransportKind::Atp => Endpoints::Atp(
                        Box::new(AtpSender::new(id, spec.packets, atp_cfg.clone())),
                        Box::new(AtpReceiver::new(id, atp_cfg.clone())),
                    ),
                    TransportKind::Cubic => Endpoints::Cubic(
                        Box::new(CubicSender::new(id, spec.packets, cubic_cfg.clone())),
                        Box::new(CubicReceiver::new(id, cubic_cfg.clone())),
                    ),
                    TransportKind::Bbr => Endpoints::Bbr(
                        Box::new(BbrSender::new(id, spec.packets, bbr_cfg.clone())),
                        Box::new(BbrReceiver::new(id, bbr_cfg.clone())),
                    ),
                };
                Flow {
                    id,
                    src: spec.src,
                    dst: spec.dst,
                    start: SimTime::ZERO + spec.start,
                    offered_packets: spec.packets,
                    endpoints,
                    started: false,
                    completed_at: None,
                    wakeup: None,
                }
            })
            .collect();

        let end = SimTime::ZERO + cfg.duration;
        let mut queue = EventQueue::new();
        let skip_idle = cfg.idle_slot_skipping;
        let coalesce_wakeups = cfg.wakeup_coalescing;
        let mut pending_slot = None;
        if !skip_idle {
            // Naive engine: one event per slot from t=0 on.
            let id = queue.schedule_at_class(SimTime::ZERO, SLOT_CLASS, Event::Slot(0));
            pending_slot = Some((id, 0));
        }
        // Dynamics fire before same-instant flow starts (schedule order
        // breaks FIFO ties), so a t=0 failure precedes a t=0 flow.
        for (i, ev) in cfg.dynamics.iter().enumerate() {
            let at = SimTime::ZERO + ev.at;
            if at <= end {
                queue.schedule_at(at, Event::Dynamics(i as u32));
            }
        }
        for f in &flows {
            queue.schedule_at(f.start.min(end), Event::FlowStart(f.id));
        }
        if let Some(m) = &cfg.mobility {
            queue.schedule_at(SimTime::ZERO + m.update_period, Event::MobilityTick);
        }
        if let Some(e) = &cfg.energy_routing {
            let first = SimTime::ZERO + e.advert_period;
            if first <= end {
                queue.schedule_at(first, Event::EnergyAdvert);
            }
        }

        let frame_s = schedule.frame_duration().as_secs_f64();
        let mut net = Network {
            transport: cfg.transport,
            backlog: vec![false; n],
            backlog_count: 0,
            backlog_dirty: false,
            slot_cursor: 0,
            pending_slot,
            completed_flows: 0,
            skip_idle,
            coalesce_wakeups,
            nodes,
            positions,
            flows,
            schedule,
            routing,
            cut: TopologyCut::new(n, cfg.workers),
            flood_sync: FloodSync::default(),
            truth,
            channels: vec![None; n * (n.saturating_sub(1)) / 2],
            attempt_rng: SimRng::derive(cfg.seed, "channel-attempts"),
            edge_scratch: EdgeScratch::new(),
            pathloss: cfg.pathloss,
            gilbert_cfg: cfg.gilbert,
            energy_model: cfg.energy,
            seed: cfg.seed,
            mobility_cfg: cfg.mobility,
            tcp_ack_flush: cfg.tcp_ack_flush,
            end,
            sub,
            no_route_drops: 0,
            dynamics: cfg.dynamics.clone(),
            incremental_rebuilds: cfg.incremental_rebuilds,
            churn_drops: 0,
            battery_cfg: cfg.battery,
            batteries: match &cfg.battery {
                Some(b) => (0..n).map(|_| Battery::new(b.capacity_j)).collect(),
                None => Vec::new(),
            },
            battery_dead: vec![false; n],
            death_slot: vec![None; n],
            pending_deaths: Vec::new(),
            deaths: Vec::new(),
            first_partition: None,
            baseline_idle_j: cfg.battery.map_or(0.0, |b| b.idle_draw_w * frame_s),
            baseline_sleep_j: cfg.battery.map_or(0.0, |b| b.sleep_draw_w * frame_s),
            sleep: cfg.duty_cycle.map(SleepSchedule::new),
            energy_cfg: cfg.energy_routing,
            advertised_weights: None,
        };
        if net.battery_cfg.is_some() && net.skip_idle {
            // Aim the skipping engine's slot event at upcoming baseline-
            // draw deaths from the start — an empty workload must still
            // fire every death the naive per-slot loop would detect.
            for i in 0..n {
                net.death_slot[i] = net.predict_death_slot(i);
            }
            net.backlog_dirty = true;
            net.sync_slot_event(SimTime::ZERO, &mut queue);
        }
        Ok((net, queue))
    }

    /// The attached subscriber (read-only — the engine's contract is
    /// that subscriber state never influences simulation results).
    pub fn subscriber(&self) -> &S {
        &self.sub
    }

    /// Consume the network, keeping the subscriber — the harvest path
    /// for runs whose instrumentation outlives the engine.
    pub fn into_subscriber(self) -> S {
        self.sub
    }

    /// The configured end of the run.
    pub fn horizon(&self) -> SimTime {
        self.end
    }

    /// True once every flow has completed (false when there are no flows).
    pub fn all_flows_completed(&self) -> bool {
        !self.flows.is_empty() && self.completed_flows == self.flows.len()
    }

    /// The static topology cut behind [`ExperimentConfig::workers`].
    pub fn partition_cut(&self) -> &TopologyCut {
        &self.cut
    }

    /// The flood-barrier ledger: how many cross-partition batch exchanges
    /// the run performed, and the virtual time of the last one.
    pub fn flood_sync(&self) -> FloodSync {
        self.flood_sync
    }

    /// Wall-clock accounting of the routing layer's flood-plane fan-outs
    /// (all-zero when `workers` = 1). Never part of [`Metrics`]: wall time
    /// is host noise, results are byte-identical across worker counts.
    pub fn parallel_stats(&self) -> jtp_sim::par::ParStats {
        self.routing.parallel_stats()
    }

    // ------------------------------------------------------------------
    // Idle-slot-skipping engine
    // ------------------------------------------------------------------

    /// Record node `node`'s queue-empty status after a MAC mutation.
    fn refresh_backlog(&mut self, node: NodeId) {
        let has = self.nodes[node.index()].mac.queue_len() > 0;
        if self.backlog[node.index()] != has {
            self.backlog[node.index()] = has;
            if has {
                self.backlog_count += 1;
            } else {
                self.backlog_count -= 1;
            }
            self.backlog_dirty = true;
        }
    }

    /// Replay slots `[slot_cursor, upto)` as idle: each was owned by a node
    /// whose queue was empty when the slot passed (the scheduling invariant
    /// guarantees this), so the only effects the naive loop would have had
    /// are the owner's idle-slot accounting and its baseline battery draw —
    /// applied here in slot order, byte-identically (the per-slot `drain`
    /// additions reproduce the naive engine's float sequence exactly).
    ///
    /// Deaths can never occur inside a replay: the slot event is aimed at
    /// `min(next busy slot, earliest predicted death slot)`, and every
    /// predicted death slot is at or **before** the true crossing (it is
    /// either the exactly-replayed crossing or a conservative analytic
    /// lower bound on it), so a battery that baseline draw would deplete
    /// gets a *fired* slot event no later than that instant instead of
    /// being replayed past it.
    fn replay_idle_slots(&mut self, upto: u64) {
        while self.slot_cursor < upto {
            let owner = self.schedule.owner(self.slot_cursor);
            self.nodes[owner.index()].mac.record_owned_slot(false);
            self.charge_baseline(owner, self.slot_cursor);
            if S::ENABLED {
                // Replayed slots carry their true slot-boundary time, so
                // the slot-grant stream matches the naive engine's (which
                // fires every one of these) — they just arrive in a burst
                // at catch-up instead of one by one.
                let ev = SlotGrant {
                    slot: self.slot_cursor,
                    owner,
                    busy: false,
                    queue_depth: 0,
                };
                self.sub
                    .on_slot(self.schedule.slot_start(self.slot_cursor), &ev);
            }
            debug_assert!(
                self.pending_deaths.is_empty(),
                "battery death inside an idle replay — prediction missed a slot"
            );
            self.slot_cursor += 1;
        }
    }

    /// Reconcile the scheduled slot event with the current backlog: keep it
    /// iff it still targets the earliest busy-owned slot, else cancel and
    /// reschedule. Runs after every handled event (cheap no-op unless the
    /// backlog changed).
    fn sync_slot_event(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if !self.skip_idle {
            return;
        }
        if self.all_flows_completed() {
            // The naive loop stops rescheduling slots once all flows are
            // done; mirror that so the pending-event sets (and thus the
            // queue drain time) agree exactly.
            if let Some((id, _)) = self.pending_slot.take() {
                q.cancel(id);
            }
            return;
        }
        if !self.backlog_dirty {
            return;
        }
        self.backlog_dirty = false;
        let busy = if self.backlog_count == 0 {
            None
        } else {
            self.schedule.next_owned_slot(now, &self.backlog)
        };
        // Earliest predicted baseline-draw death: its slot must *fire* so
        // the death materialises at the same instant as in the naive loop.
        let death = self.death_slot.iter().filter_map(|&s| s).min();
        let desired = match (busy, death) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
        .filter(|&s| self.schedule.slot_start(s) <= self.end);
        match (self.pending_slot, desired) {
            (Some((_, cur)), Some(want)) if cur == want => {}
            (prev, want) => {
                if let Some((id, _)) = prev {
                    q.cancel(id);
                }
                self.pending_slot = want.map(|s| {
                    let at = self.schedule.slot_start(s);
                    (q.schedule_at_class(at, SLOT_CLASS, Event::Slot(s)), s)
                });
            }
        }
    }

    /// Account the idle tail after the event loop finishes: every slot the
    /// naive loop would still have fired (start ≤ min(end, horizon), no
    /// early all-done stop) is replayed as idle. No-op unless idle-slot
    /// skipping is enabled.
    pub fn finalize(&mut self, horizon: SimTime) {
        if !self.skip_idle || self.all_flows_completed() {
            return;
        }
        let last = self.schedule.slot_index_at(self.end.min(horizon));
        self.replay_idle_slots(last + 1);
    }

    // ------------------------------------------------------------------
    // Battery & lifetime
    // ------------------------------------------------------------------

    /// Baseline battery draw for the frame containing `slot`, charged to
    /// the slot's owner: `idle_draw × frame` while listening, or
    /// `sleep_draw × frame` in a duty-cycled sleep frame. One charge per
    /// node per frame, applied at the owned slot so the skipping engine's
    /// replay reproduces the naive engine's drain sequence exactly.
    fn charge_baseline(&mut self, owner: NodeId, slot: u64) {
        if self.battery_cfg.is_none() {
            return;
        }
        let i = owner.index();
        if self.battery_dead[i] {
            return;
        }
        let frame = slot / self.nodes.len() as u64;
        let j = match &self.sleep {
            Some(s) if !s.awake(owner, frame) => self.baseline_sleep_j,
            _ => self.baseline_idle_j,
        };
        if self.batteries[i].drain(j) {
            self.pending_deaths.push(owner);
        }
    }

    /// Charge transport energy to a node's meter *and* drain its battery.
    /// Only ever called at fired slot events, so the drain lands at the
    /// same instant in both engines.
    fn charge_node(&mut self, node: NodeId, category: EnergyCategory, joules: f64) {
        self.nodes[node.index()].energy.charge(category, joules);
        if self.battery_cfg.is_none() {
            return;
        }
        let i = node.index();
        if self.battery_dead[i] {
            return;
        }
        if self.batteries[i].drain(joules) {
            self.pending_deaths.push(node);
        } else {
            // The drain sequence changed: the predicted baseline-draw
            // death slot moves earlier. Keep the aim exact.
            self.recompute_death_slot(i);
        }
    }

    /// Predict a slot at which node `i`'s battery may die of baseline
    /// draw alone: either the **exact** crossing slot — found by
    /// replaying the per-frame `drain` additions the engine will execute
    /// (no closed forms — float rounding must match) — or a
    /// **conservative lower bound** on it when the crossing is far away.
    ///
    /// The bound is analytic: with at most `j_max` joules leaving per
    /// frame, the reservoir provably cannot empty within
    /// `remaining/j_max` frames (shrunk by a float-safety factor and the
    /// exact-replay window), so the frame-by-frame walk — which used to
    /// make every radio charge on a 100k-frame battery cost a 100k-frame
    /// replay — is skipped entirely until the crossing is near. Aiming a
    /// slot event at the bound is harmless: a fired slot with no death is
    /// observationally identical to a replayed idle slot, and the firing
    /// re-predicts from the new state ([`Network::handle_slot`]), closing
    /// in geometrically. Only inside the final [`PREDICT_EXACT_WINDOW`]
    /// does the exact float replay run, so deaths still land on the
    /// byte-exact slot the naive per-slot loop would detect.
    ///
    /// None when batteries are off, the node is dead, draws are zero, or
    /// the (bound on the) crossing lies beyond the run horizon.
    fn predict_death_slot(&self, i: usize) -> Option<u64> {
        let cfg = self.battery_cfg.as_ref()?;
        if self.battery_dead[i] {
            return None;
        }
        if cfg.idle_draw_w <= 0.0 && cfg.sleep_draw_w <= 0.0 {
            return None;
        }
        let node = NodeId(i as u32);
        let n = self.nodes.len() as u64;
        let cap = self.batteries[i].capacity_j();
        let mut drained = self.batteries[i].drained_j();
        if drained >= cap {
            return None; // already crossing: handled as a pending death
        }
        // First frame whose baseline charge is still pending: the cursor
        // frame unless the node's owned slot there is already accounted.
        let mut frame = self.slot_cursor / n;
        if self.schedule.owned_slot_in_frame(node, frame) < self.slot_cursor {
            frame += 1;
        }
        // Analytic skip: the crossing cannot happen within `safe` pending
        // frames even at the maximum per-frame draw, with a 1e-6 relative
        // margin absorbing worst-case float-summation rounding (valid up
        // to ~10⁹-frame lifetimes; catalog batteries sit far below).
        let j_max = self.baseline_idle_j.max(self.baseline_sleep_j);
        if j_max > 0.0 {
            // The float→int cast saturates for near-zero draws, so guard
            // the index arithmetic with the run's own frame bound: a
            // crossing provably past the horizon is simply no death.
            let horizon_frame = self.schedule.slot_index_at(self.end) / n + 1;
            let safe = ((cap - drained) / j_max * (1.0 - 1e-6)) as u64;
            let safe = safe.saturating_sub(PREDICT_EXACT_WINDOW);
            if safe > 0 {
                let bound = frame.saturating_add(safe);
                if bound > horizon_frame {
                    return None; // even the earliest possible crossing is past the horizon
                }
                if self.schedule.slot_start(bound * n) > self.end {
                    return None;
                }
                let slot = self.schedule.owned_slot_in_frame(node, bound);
                return (self.schedule.slot_start(slot) <= self.end).then_some(slot);
            }
        }
        // Exact replay — only ever runs within the final window (plus
        // whatever slack the draw mix left under the j_max bound).
        loop {
            if self.schedule.slot_start(frame * n) > self.end {
                return None; // the battery outlives the run
            }
            let j = match &self.sleep {
                Some(s) if !s.awake(node, frame) => self.baseline_sleep_j,
                _ => self.baseline_idle_j,
            };
            drained += j;
            if drained >= cap {
                let slot = self.schedule.owned_slot_in_frame(node, frame);
                return (self.schedule.slot_start(slot) <= self.end).then_some(slot);
            }
            frame += 1;
        }
    }

    /// Refresh node `i`'s predicted death slot (skipping engine only —
    /// the naive loop fires every slot and needs no aim) and mark the
    /// slot event for re-aiming if it moved.
    fn recompute_death_slot(&mut self, i: usize) {
        if !self.skip_idle {
            return;
        }
        let predicted = self.predict_death_slot(i);
        if predicted != self.death_slot[i] {
            self.death_slot[i] = predicted;
            self.backlog_dirty = true;
        }
    }

    /// Materialise battery deaths recorded during the current event, in
    /// drain order: each dead node's queue is lost, its links vanish from
    /// the advertised topology (flooded refresh, like dynamics churn) and
    /// the lifetime clocks tick. Battery death is permanent.
    fn process_pending_deaths(&mut self, now: SimTime) {
        if self.pending_deaths.is_empty() {
            return;
        }
        let mut any = false;
        for v in std::mem::take(&mut self.pending_deaths) {
            let i = v.index();
            if self.battery_dead[i] {
                continue;
            }
            self.battery_dead[i] = true;
            self.death_slot[i] = None;
            self.deaths.push((now, v));
            if S::ENABLED {
                let ev = BatteryDeath {
                    node: v,
                    alive: (self.positions.len() - self.deaths.len()) as u32,
                };
                self.sub.on_battery_death(now, &ev);
            }
            if self.truth.is_up(v) {
                self.truth.set_node_up(v, false);
                self.flush_queue(now, v);
                self.refresh_backlog(v);
            }
            any = true;
        }
        if any {
            self.backlog_dirty = true;
            self.after_substrate_change();
            self.flood_views(now, FloodCause::BatteryDeath, true);
            self.note_first_partition(now);
        }
    }

    /// Lose a crashed/dead node's transmit queue, counting (and
    /// reporting) the frames as churn drops.
    fn flush_queue(&mut self, now: SimTime, v: NodeId) {
        let lost = self.nodes[v.index()].mac.flush();
        self.churn_drops += lost;
        if S::ENABLED && lost > 0 {
            let ev = PacketDrop {
                node: v,
                cause: DropCause::Churn,
                packets: lost,
            };
            self.sub.on_drop(now, &ev);
        }
    }

    /// Advertise the current truth to routing views — all of them
    /// (`all`, the flooded refresh failure detection triggers) or just
    /// the staleness-due ones (mobility ticks) — bracketed by flood
    /// start/end events whose costs are exact routing work-counter
    /// deltas, under a flood-plane wall span when the subscriber times.
    fn flood_views(&mut self, now: SimTime, cause: FloodCause, all: bool) {
        self.flood_sync.note_flood(now);
        let before = if S::ENABLED {
            self.sub.on_flood_start(now, &FloodStart { cause });
            Some(self.routing.stats())
        } else {
            None
        };
        let t0 = span_start::<S>();
        if all {
            self.routing.force_refresh_all(now, self.truth.adjacency());
        } else {
            self.routing.refresh_due_views(now, self.truth.adjacency());
        }
        if let Some(t0) = t0 {
            self.sub
                .on_subsystem_time(Subsystem::FloodPlane, t0.elapsed().as_nanos() as u64);
        }
        if let Some(b) = before {
            let a = self.routing.stats();
            let ev = FloodEnd {
                cause,
                views_refreshed: a.refreshes - b.refreshes,
                sources_repaired: (a.bfs_run - b.bfs_run)
                    + (a.bfs_repaired - b.bfs_repaired)
                    + (a.weighted_repairs - b.weighted_repairs),
                entries_changed: a.dist_entries_changed - b.dist_entries_changed,
            };
            self.sub.on_flood_end(now, &ev);
        }
    }

    /// Record the first instant the live node set stopped being mutually
    /// reachable — whatever the cause: battery deaths, dynamics churn,
    /// link blackouts, scheduled partitions, area failures or mobility
    /// drift. (Historically only the battery-death path recorded this,
    /// so e.g. a blackout-partitioned run reported `first_partition_s:
    /// None`; every substrate-changing handler now funnels through
    /// here.) Cheap once recorded; until then one O(V+E) traversal per
    /// substrate change.
    fn note_first_partition(&mut self, now: SimTime) {
        if self.first_partition.is_none() && !self.alive_connected() {
            self.first_partition = Some(now);
        }
    }

    /// Are the currently functional nodes (battery intact and powered)
    /// mutually reachable over the effective ground truth? Vacuously true
    /// below two survivors — a lone survivor is an endpoint, not a
    /// partition.
    fn alive_connected(&self) -> bool {
        let n = self.positions.len();
        let alive: Vec<bool> = (0..n)
            .map(|i| !self.battery_dead[i] && self.truth.is_up(NodeId(i as u32)))
            .collect();
        let alive_count = alive.iter().filter(|&&a| a).count();
        if alive_count < 2 {
            return true;
        }
        let start = alive.iter().position(|&a| a).expect("alive_count >= 2");
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(start as u32)];
        seen[start] = true;
        let mut reached = 1;
        while let Some(u) = stack.pop() {
            for &v in self.truth.adjacency().neighbors(u) {
                if alive[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    reached += 1;
                    stack.push(v);
                }
            }
        }
        reached == alive_count
    }

    /// Quantised forwarding weight for one node's residual fraction (see
    /// [`EnergyRoutingConfig`]).
    fn advert_weight(&self, i: usize, e: &EnergyRoutingConfig) -> u16 {
        let cfg = self.battery_cfg.as_ref().expect("advert needs a battery");
        if self.battery_dead[i] {
            // Dead nodes carry no links, so the weight is moot; pin it to
            // the ceiling for cleanliness.
            return 1 + e.levels + e.low_penalty;
        }
        let frac = self.batteries[i].residual_frac();
        let scaled = ((1.0 - frac) * e.levels as f64).floor() as u16;
        let mut w = 1 + scaled.min(e.levels);
        if frac < cfg.low_threshold {
            w += e.low_penalty;
        }
        w
    }

    /// Periodic residual-energy advertisement: quantise every battery
    /// into a forwarding weight and, when the vector changed, flood it —
    /// routing shifts to residual-energy-weighted shortest paths.
    fn handle_energy_advert(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        let Some(e) = self.energy_cfg else {
            return;
        };
        if self.battery_cfg.is_none() {
            return;
        }
        // Residuals are read here, so the skipping engine must first
        // materialise the baseline draws the naive loop has already
        // applied (every slot with start ≤ now has fired there). After
        // all flows complete neither engine fires further slots, so the
        // frozen levels already agree.
        if self.skip_idle && !self.all_flows_completed() {
            let upto = self.schedule.slot_index_at(now) + 1;
            if upto > self.slot_cursor {
                self.replay_idle_slots(upto);
            }
        }
        let weights: Vec<u16> = (0..self.nodes.len())
            .map(|i| self.advert_weight(i, &e))
            .collect();
        let changed = self.advertised_weights.as_ref() != Some(&weights);
        if S::ENABLED {
            let ev = jtp_events::EnergyAdvert { changed };
            self.sub.on_energy_advert(now, &ev);
        }
        if changed {
            self.routing.set_node_weights(Some(weights.clone()));
            self.advertised_weights = Some(weights);
            self.flood_views(now, FloodCause::EnergyAdvert, true);
        }
        let at = now + e.advert_period;
        if at <= self.end {
            q.schedule_at(at, Event::EnergyAdvert);
        }
    }

    // ------------------------------------------------------------------
    // Substrate dynamics
    // ------------------------------------------------------------------

    /// Finish a substrate mutation. The incremental engine already
    /// maintained the effective truth edge-by-edge inside [`MaskedTruth`];
    /// the legacy comparison mode instead re-derives geometry and masks
    /// from scratch here — the O(n²) brute-force pair scan plus whole-
    /// truth rebuild the incremental path replaced (kept runnable for
    /// benchmarks; both produce the identical adjacency).
    fn after_substrate_change(&mut self) {
        if !self.incremental_rebuilds {
            self.truth.set_geometry(adjacency_from_positions_brute(
                &self.positions,
                &self.pathloss,
            ));
        }
    }

    /// Apply one scheduled dynamics action, then advertise the new truth
    /// to every routing view at once (the flooded link-state update a
    /// failure detection triggers).
    fn handle_dynamics(&mut self, now: SimTime, idx: u32) {
        match self.dynamics[idx as usize].action.clone() {
            DynamicsAction::NodeDown(v) => {
                if self.truth.is_up(v) {
                    self.truth.set_node_up(v, false);
                    // The crash loses the transmit queue; while down the
                    // node enqueues nothing, so its slots stay idle (and
                    // skippable) by construction.
                    self.flush_queue(now, v);
                    self.refresh_backlog(v);
                }
            }
            DynamicsAction::NodeUp(v) => {
                // A battery-dead node is beyond reviving: the scheduled
                // heal fizzles.
                if !self.battery_dead[v.index()] {
                    self.truth.set_node_up(v, true);
                }
            }
            DynamicsAction::LinkDown(a, b) => {
                self.truth.set_link_blocked(a, b, true);
            }
            DynamicsAction::LinkUp(a, b) => {
                self.truth.set_link_blocked(a, b, false);
            }
            DynamicsAction::PartitionStart(group) => {
                let mut side = vec![false; self.positions.len()];
                for v in &group {
                    side[v.index()] = true;
                }
                self.truth.set_partition(Some(side));
            }
            DynamicsAction::PartitionEnd => {
                self.truth.set_partition(None);
            }
            DynamicsAction::AreaFail { x_m, y_m, radius_m } => {
                // Correlated failure: every node inside the disc — at its
                // position **at the instant the event fires**, so under
                // mobility the victim set is sampled from the moved
                // placement, not the initial one — crashes at once.
                let centre = Point::new(x_m, y_m);
                for i in 0..self.positions.len() {
                    let v = NodeId(i as u32);
                    if self.truth.is_up(v) && self.positions[i].distance(centre) <= radius_m {
                        self.truth.set_node_up(v, false);
                        self.flush_queue(now, v);
                        self.refresh_backlog(v);
                    }
                }
            }
        }
        if S::ENABLED {
            let ev = DynamicsApplied { index: idx };
            self.sub.on_dynamics(now, &ev);
        }
        self.after_substrate_change();
        self.flood_views(now, FloodCause::Dynamics, true);
        self.note_first_partition(now);
    }

    // ------------------------------------------------------------------
    // Forwarding
    // ------------------------------------------------------------------

    /// Route `tp` one hop from `from` and enqueue it at `from`'s MAC.
    fn forward_from(&mut self, now: SimTime, from: NodeId, tp: TransportPacket) {
        if !self.truth.is_up(from) {
            // A dead node originates and forwards nothing; transport
            // timers at a crashed endpoint spin harmlessly until it heals.
            self.churn_drops += 1;
            if S::ENABLED {
                let ev = PacketDrop {
                    node: from,
                    cause: DropCause::Churn,
                    packets: 1,
                };
                self.sub.on_drop(now, &ev);
            }
            return;
        }
        let Some(next) = self.routing.next_hop(from, tp.dst_end) else {
            self.no_route_drops += 1;
            if S::ENABLED {
                let ev = PacketDrop {
                    node: from,
                    cause: DropCause::NoRoute,
                    packets: 1,
                };
                self.sub.on_drop(now, &ev);
            }
            return;
        };
        let bytes = tp.payload.wire_bytes();
        let kind = tp.payload.kind();
        let mut frame = Frame::new(from, next, kind, bytes, tp);
        // Non-JTP-data frames use the MAC's full budget; JTP data budgets
        // are set per packet by iJTP at first transmission.
        frame.max_attempts = self.nodes[from.index()].mac.max_attempts_cap();
        let overflow = self.nodes[from.index()].mac.enqueue(frame).is_err(); // counted inside
        if S::ENABLED && overflow {
            let ev = PacketDrop {
                node: from,
                cause: DropCause::Queue,
                packets: 1,
            };
            self.sub.on_drop(now, &ev);
        }
        self.refresh_backlog(from);
    }

    // ------------------------------------------------------------------
    // TDMA slot
    // ------------------------------------------------------------------

    fn handle_slot(&mut self, now: SimTime, slot: u64, q: &mut EventQueue<Event>) {
        if self.skip_idle {
            // This event consumed the pending handle; catch up the skipped
            // idle slots first so MAC statistics are read in replay order.
            self.pending_slot = None;
            self.replay_idle_slots(slot);
            self.backlog_dirty = true;
        }
        self.slot_cursor = slot + 1;
        let owner = self.schedule.owner(slot);
        // Baseline draw lands before the transmission decision; a node
        // whose battery dies of it loses its queue and the slot goes idle
        // — identically in both engines, since this death slot always
        // *fires* (the skipping engine aims at predicted death slots).
        self.charge_baseline(owner, slot);
        self.process_pending_deaths(now);
        if self.skip_idle && self.death_slot[owner.index()].is_some_and(|ds| ds <= slot) {
            // The aimed slot was a conservative lower bound, not the
            // crossing itself: re-predict from the post-charge state and
            // re-aim (each hop lands geometrically closer to the exact
            // death slot; see `predict_death_slot`).
            self.recompute_death_slot(owner.index());
        }
        // Queue depth is sampled at the slot boundary, before the
        // pre-transmit hooks get a chance to drop heads.
        let queue_depth = if S::ENABLED {
            self.nodes[owner.index()].mac.queue_len() as u32
        } else {
            0
        };
        match self.prepare_head(owner, now) {
            None => {
                self.nodes[owner.index()].mac.record_owned_slot(false);
                if S::ENABLED {
                    let ev = SlotGrant {
                        slot,
                        owner,
                        busy: false,
                        queue_depth,
                    };
                    self.sub.on_slot(now, &ev);
                }
            }
            Some((dst, bytes, kind)) => {
                self.nodes[owner.index()].mac.record_owned_slot(true);
                if S::ENABLED {
                    let ev = SlotGrant {
                        slot,
                        owner,
                        busy: true,
                        queue_depth,
                    };
                    self.sub.on_slot(now, &ev);
                }
                let success = self.sample_channel(owner, dst, now);
                if S::ENABLED {
                    let ev = PacketSend {
                        from: owner,
                        to: dst,
                        kind: match kind {
                            FrameKind::Data => PacketKind::Data,
                            FrameKind::Ack => PacketKind::Ack,
                        },
                        bytes: bytes as u32,
                        delivered: success,
                    };
                    self.sub.on_send(now, &ev);
                }
                let tx_j = self.energy_model.tx_energy_j(bytes);
                let (cat_tx, cat_rx) = match kind {
                    FrameKind::Data => (EnergyCategory::DataTx, EnergyCategory::DataRx),
                    FrameKind::Ack => (EnergyCategory::AckTx, EnergyCategory::AckRx),
                };
                self.charge_node(owner, cat_tx, tx_j);
                if success {
                    let rx_j = self.energy_model.rx_energy_j(bytes);
                    self.charge_node(dst, cat_rx, rx_j);
                }
                match self.nodes[owner.index()].mac.transmit_result(success) {
                    SlotOutcome::Delivered(frame) => self.deliver(now, frame, q),
                    SlotOutcome::Exhausted(_) => {
                        if S::ENABLED {
                            let ev = PacketDrop {
                                node: owner,
                                cause: DropCause::Arq,
                                packets: 1,
                            };
                            self.sub.on_drop(now, &ev);
                        }
                    }
                    SlotOutcome::Retrying => {}
                    SlotOutcome::Idle => unreachable!("prepared head implies non-idle"),
                }
                // Transmission/reception drains materialise *after* the
                // frame's fate resolved: the packet that empties a battery
                // still arrives, then the node goes dark.
                self.process_pending_deaths(now);
            }
        }
        self.refresh_backlog(owner);
        if !self.skip_idle {
            // Naive engine: fire every slot; stop once every flow has
            // finished, so the queue drains and the run ends early with
            // identical metrics.
            let next = self.schedule.slot_start(slot + 1);
            if !self.all_flows_completed() && next <= self.end {
                let id = q.schedule_at_class(next, SLOT_CLASS, Event::Slot(slot + 1));
                self.pending_slot = Some((id, slot + 1));
            } else {
                self.pending_slot = None;
            }
        }
    }

    /// Run the pre-transmission hooks on the owner's queue head, dropping
    /// hook-rejected frames, until a transmittable frame remains. Returns
    /// `(next_hop, wire_bytes, kind)`.
    fn prepare_head(&mut self, owner: NodeId, now: SimTime) -> Option<(NodeId, usize, FrameKind)> {
        loop {
            let (dst, dst_end, first, bytes, is_jtp_data, is_atp_data) = {
                let head = self.nodes[owner.index()].mac.head()?;
                (
                    head.dst,
                    head.payload.dst_end,
                    head.is_first_attempt(),
                    head.bytes,
                    matches!(head.payload.payload, Payload::JtpData(_)),
                    matches!(head.payload.payload, Payload::AtpData(_)),
                )
            };
            if is_jtp_data {
                // Gather link state before mutably borrowing the node.
                let remaining = match self.routing.remaining_hops(owner, dst_end) {
                    Some(h) => h.max(1),
                    None => {
                        // The local view lost the route: drop (counted).
                        self.nodes[owner.index()].mac.drop_head();
                        self.no_route_drops += 1;
                        if S::ENABLED {
                            let ev = PacketDrop {
                                node: owner,
                                cause: DropCause::NoRoute,
                                packets: 1,
                            };
                            self.sub.on_drop(now, &ev);
                        }
                        continue;
                    }
                };
                let mac = &self.nodes[owner.index()].mac;
                let link = LinkInfo {
                    loss_rate: mac.loss_rate(dst),
                    avail_rate_pps: mac.available_pps(),
                    avg_attempts: mac.avg_attempts(dst),
                    tx_energy_nj: (self.energy_model.tx_energy_j(bytes) * 1e9).round() as u32,
                    remaining_hops: remaining,
                };
                let node = &mut self.nodes[owner.index()];
                let head = node.mac.head_mut().expect("head probed above");
                let Payload::JtpData(ref mut data) = head.payload.payload else {
                    unreachable!("probed as JTP data")
                };
                match node.ijtp.pre_xmit_data(data, &link, first) {
                    PreXmitVerdict::DropEnergyExhausted => {
                        node.mac.drop_head();
                        if S::ENABLED {
                            let ev = PacketDrop {
                                node: owner,
                                cause: DropCause::Energy,
                                packets: 1,
                            };
                            self.sub.on_drop(now, &ev);
                        }
                        continue;
                    }
                    PreXmitVerdict::Forward { max_attempts } => {
                        if first {
                            head.max_attempts = max_attempts;
                            if S::ENABLED {
                                let ev = AttemptBudget {
                                    node: owner,
                                    budget: max_attempts,
                                };
                                self.sub.on_attempt_budget(now, &ev);
                            }
                        }
                    }
                }
            } else if is_atp_data {
                // ATP's explicit-rate stamping by intermediate nodes.
                let mac = &self.nodes[owner.index()].mac;
                let eff = (mac.available_pps() / mac.avg_attempts(dst).max(1.0)) as f32;
                let head = self.nodes[owner.index()].mac.head_mut().expect("head");
                if let Payload::AtpData(ref mut d) = head.payload.payload {
                    if eff < d.stamped_rate {
                        d.stamped_rate = eff;
                    }
                }
            }
            let head = self.nodes[owner.index()]
                .mac
                .head()
                .expect("head survives hooks");
            return Some((head.dst, head.bytes, head.kind));
        }
    }

    /// Dense index of the undirected pair `{a, b}` into the flat channel
    /// table (upper-triangular, row-major).
    fn pair_index(&self, lo: u32, hi: u32) -> usize {
        let n = self.nodes.len();
        let (lo, hi) = (lo as usize, hi as usize);
        debug_assert!(lo < hi && hi < n);
        lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Sample the channel for one transmission attempt.
    fn sample_channel(&mut self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        // Substrate dynamics short-circuit the channel without touching
        // any RNG substream: a dead endpoint, a blacked-out link or a
        // partition cut can never deliver.
        if !self.truth.is_up(from) || !self.truth.is_up(to) {
            return false;
        }
        // A duty-cycled receiver sleeping this frame hears nothing (the
        // sender still wakes to transmit in its owned slot and pays for
        // the attempt). Pure function of (node, frame): no RNG consumed,
        // identical on the skipping and naive slot paths.
        if let Some(s) = &self.sleep {
            let frame = self.schedule.slot_index_at(now) / self.nodes.len() as u64;
            if !s.awake(to, frame) {
                return false;
            }
        }
        if self.truth.link_blocked(from, to) {
            return false;
        }
        if !self.truth.same_side(from, to) {
            return false;
        }
        let (lo, hi) = (from.0.min(to.0), from.0.max(to.0));
        let d = self.positions[from.index()].distance(self.positions[to.index()]);
        if !self.pathloss.in_range(d) {
            return false;
        }
        let baseline = self.pathloss.loss_at(d);
        // Fading is shared per undirected link (symmetric channel).
        let idx = self.pair_index(lo, hi);
        let n = self.nodes.len() as u64;
        let (cfg, seed) = (self.gilbert_cfg, self.seed);
        let ge = self.channels[idx]
            .get_or_insert_with(|| GilbertElliott::new(cfg, seed, lo as u64 * n + hi as u64));
        let loss = ge.loss_prob(now, baseline);
        !self.attempt_rng.chance(loss)
    }

    // ------------------------------------------------------------------
    // Delivery
    // ------------------------------------------------------------------

    fn deliver(&mut self, now: SimTime, frame: Frame<TransportPacket>, q: &mut EventQueue<Event>) {
        let here = frame.dst;
        let tp = frame.payload;
        if tp.dst_end == here {
            self.consume(now, here, tp, q);
        } else {
            self.relay(now, here, tp);
        }
    }

    /// Hop processing at an intermediate node (Algorithm 2), then forward.
    fn relay(&mut self, now: SimTime, here: NodeId, mut tp: TransportPacket) {
        match &mut tp.payload {
            Payload::JtpData(d) => {
                self.nodes[here.index()].ijtp.post_rcv_data(d);
            }
            Payload::JtpAck(a) => {
                let recovered = self.nodes[here.index()].ijtp.post_rcv_ack(a);
                if !recovered.is_empty() {
                    // Data flows toward the ACK's origin (the receiver).
                    let data_dst = tp.src_end;
                    let data_src = tp.dst_end;
                    for pkt in recovered {
                        self.forward_from(
                            now,
                            here,
                            TransportPacket {
                                src_end: data_src,
                                dst_end: data_dst,
                                payload: Payload::JtpData(pkt),
                            },
                        );
                    }
                }
            }
            // TCP and ATP are end-to-end only: intermediate nodes forward.
            _ => {}
        }
        self.forward_from(now, here, tp);
    }

    /// Mark a flow complete (first time only).
    fn mark_completed(&mut self, fi: usize, now: SimTime) {
        if self.flows[fi].completed_at.is_none() {
            self.flows[fi].completed_at = Some(now);
            self.completed_flows += 1;
        }
    }

    /// Endpoint processing.
    fn consume(
        &mut self,
        now: SimTime,
        here: NodeId,
        tp: TransportPacket,
        q: &mut EventQueue<Event>,
    ) {
        let fid = tp.payload.flow();
        let fi = fid.index();
        debug_assert!(fi < self.flows.len(), "unknown flow {fid}");
        let wire_bytes = if S::ENABLED {
            tp.payload.wire_bytes() as u32
        } else {
            0
        };
        match tp.payload {
            Payload::JtpData(d) => {
                let (fresh, early, monitor) = {
                    let Endpoints::Jtp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let early = rx.on_data(now, &d);
                    let fresh = rx.stats().delivered_packets > before;
                    let monitor = rx.rate_monitor_state();
                    (fresh, early, monitor)
                };
                if S::ENABLED {
                    let ev = Delivery {
                        flow: fid,
                        node: here,
                        bytes: wire_bytes,
                        fresh,
                    };
                    self.sub.on_delivery(now, &ev);
                    if let Some((lcl, mean, ucl)) = monitor {
                        let ev = MonitorUpdate {
                            flow: fid,
                            reported: d.rate_pps as f64,
                            mean,
                            lcl,
                            ucl,
                        };
                        self.sub.on_monitor(now, &ev);
                    }
                }
                if let Some(ack) = early {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        now,
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::JtpAck(ack),
                        },
                    );
                }
            }
            Payload::JtpAck(a) => {
                let complete = {
                    let Endpoints::Jtp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::TcpData(d) => {
                let (fresh, ack) = {
                    let Endpoints::Tcp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let ack = rx.on_data(now, &d);
                    (rx.stats().delivered_packets > before, ack)
                };
                if S::ENABLED {
                    let ev = Delivery {
                        flow: fid,
                        node: here,
                        bytes: wire_bytes,
                        fresh,
                    };
                    self.sub.on_delivery(now, &ev);
                }
                if let Some(ack) = ack {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        now,
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::TcpAck(ack),
                        },
                    );
                }
            }
            Payload::TcpAck(a) => {
                let complete = {
                    let Endpoints::Tcp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::AtpData(d) => {
                let fresh = {
                    let Endpoints::Atp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    rx.on_data(now, &d);
                    rx.stats().delivered_packets > before
                };
                if S::ENABLED {
                    let ev = Delivery {
                        flow: fid,
                        node: here,
                        bytes: wire_bytes,
                        fresh,
                    };
                    self.sub.on_delivery(now, &ev);
                }
            }
            Payload::AtpFeedback(fb) => {
                let complete = {
                    let Endpoints::Atp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_feedback(now, &fb);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::CubicData(d) => {
                let (fresh, ack) = {
                    let Endpoints::Cubic(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let ack = rx.on_data(now, &d);
                    (rx.stats().delivered_packets > before, ack)
                };
                if S::ENABLED {
                    let ev = Delivery {
                        flow: fid,
                        node: here,
                        bytes: wire_bytes,
                        fresh,
                    };
                    self.sub.on_delivery(now, &ev);
                }
                if let Some(ack) = ack {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        now,
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::CubicAck(ack),
                        },
                    );
                }
            }
            Payload::CubicAck(a) => {
                let complete = {
                    let Endpoints::Cubic(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::BbrData(d) => {
                let (fresh, ack) = {
                    let Endpoints::Bbr(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let ack = rx.on_data(now, &d);
                    (rx.stats().delivered_packets > before, ack)
                };
                if S::ENABLED {
                    let ev = Delivery {
                        flow: fid,
                        node: here,
                        bytes: wire_bytes,
                        fresh,
                    };
                    self.sub.on_delivery(now, &ev);
                }
                if let Some(ack) = ack {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        now,
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::BbrAck(ack),
                        },
                    );
                }
            }
            Payload::BbrAck(a) => {
                let complete = {
                    let Endpoints::Bbr(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Request a sender wakeup at `at`, keeping at most one pending wakeup
    /// per flow: a pending earlier (or equal) wakeup covers this request —
    /// its handler recomputes the next need when it fires — and a pending
    /// later one is cancelled in favour of the earlier time.
    fn request_wakeup(&mut self, fi: usize, at: SimTime, q: &mut EventQueue<Event>) {
        if !self.coalesce_wakeups {
            // Legacy behaviour (pre-overhaul): unconditionally spawn a new
            // wakeup chain. Kept for before/after benchmarking.
            let fid = self.flows[fi].id;
            q.schedule_at(at, Event::SenderWakeup(fid));
            return;
        }
        if let Some((id, t)) = self.flows[fi].wakeup {
            if t <= at {
                return;
            }
            q.cancel(id);
        }
        let fid = self.flows[fi].id;
        let id = q.schedule_at(at, Event::SenderWakeup(fid));
        self.flows[fi].wakeup = Some((id, at));
    }

    fn handle_flow_start(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        self.flows[fid.index()].started = true;
        self.request_wakeup(fid.index(), now, q);
        q.schedule_at(now, Event::ReceiverTimer(fid));
    }

    fn handle_sender_wakeup(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        let fi = fid.index();
        // This event is the flow's one pending wakeup.
        self.flows[fi].wakeup = None;
        if !self.flows[fi].started || self.flows[fi].completed_at.is_some() {
            return;
        }
        let (src, dst) = (self.flows[fi].src, self.flows[fi].dst);
        let mut outgoing: Vec<Payload> = Vec::new();
        let next_wakeup: Option<SimTime> = match &mut self.flows[fi].endpoints {
            Endpoints::Jtp(tx, _) => {
                tx.on_feedback_timeout(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::JtpData(p));
                }
                Some(tx.next_wakeup())
            }
            Endpoints::Tcp(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::TcpData(p));
                }
                tx.next_wakeup()
            }
            Endpoints::Atp(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::AtpData(p));
                }
                Some(tx.next_wakeup())
            }
            Endpoints::Cubic(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::CubicData(p));
                }
                tx.next_wakeup()
            }
            Endpoints::Bbr(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::BbrData(p));
                }
                tx.next_wakeup()
            }
        };
        for p in outgoing {
            self.forward_from(
                now,
                src,
                TransportPacket {
                    src_end: src,
                    dst_end: dst,
                    payload: p,
                },
            );
        }
        if let Some(at) = next_wakeup {
            let at = at.max(now + SimDuration::from_millis(1));
            if at <= self.end {
                self.request_wakeup(fi, at, q);
            }
        }
    }

    fn handle_receiver_timer(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        let fi = fid.index();
        if !self.flows[fi].started || self.flows[fi].completed_at.is_some() {
            return;
        }
        let (src, dst) = (self.flows[fi].src, self.flows[fi].dst);
        let mut feedback: Option<Payload> = None;
        let next_at: SimTime = match &mut self.flows[fi].endpoints {
            Endpoints::Jtp(_, rx) => {
                if now >= rx.next_feedback_at() {
                    feedback = Some(Payload::JtpAck(rx.poll_feedback(now)));
                }
                rx.next_feedback_at()
            }
            Endpoints::Tcp(_, rx) => {
                if let Some(ack) = rx.flush_ack() {
                    feedback = Some(Payload::TcpAck(ack));
                }
                now + self.tcp_ack_flush
            }
            Endpoints::Atp(_, rx) => {
                if now >= rx.next_feedback_at() {
                    feedback = Some(Payload::AtpFeedback(rx.poll_feedback(now)));
                }
                rx.next_feedback_at()
            }
            Endpoints::Cubic(_, rx) => {
                if let Some(ack) = rx.flush_ack() {
                    feedback = Some(Payload::CubicAck(ack));
                }
                now + self.tcp_ack_flush
            }
            Endpoints::Bbr(_, rx) => {
                if let Some(ack) = rx.flush_ack() {
                    feedback = Some(Payload::BbrAck(ack));
                }
                now + self.tcp_ack_flush
            }
        };
        if let Some(p) = feedback {
            // Feedback travels receiver -> sender.
            self.forward_from(
                now,
                dst,
                TransportPacket {
                    src_end: dst,
                    dst_end: src,
                    payload: p,
                },
            );
        }
        let at = next_at.max(now + SimDuration::from_millis(1));
        if at <= self.end {
            q.schedule_at(at, Event::ReceiverTimer(fid));
        }
    }

    fn handle_mobility_tick(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        let Some(mcfg) = self.mobility_cfg else {
            return;
        };
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if let Mobility::Waypoint(w) = &mut node.mobility {
                self.positions[i] = w.position_at(now);
            }
        }
        let t0 = span_start::<S>();
        let changed_edges = if self.incremental_rebuilds {
            // Spatial-grid neighbour discovery (O(n·k)) into a sorted
            // in-range edge list, merged against the standing geometry:
            // only the links that actually appeared or vanished this
            // tick are patched and re-masked — no per-tick graph
            // construction — and the same diff-shaped change is what the
            // routing cache repairs from.
            let edges = self
                .edge_scratch
                .edges_from_positions(&self.positions, &self.pathloss);
            let diff = geometry_edge_diff(self.truth.geometry(), edges);
            self.truth.apply_geometry_diff(&diff);
            diff.len() as u32
        } else {
            // Legacy comparison path: brute-force all-pairs scan plus a
            // whole-truth remask — byte-identical results, O(n²) cost.
            // No diff exists here, so the tick event reports 0 changes.
            self.truth.set_geometry(adjacency_from_positions_brute(
                &self.positions,
                &self.pathloss,
            ));
            0
        };
        if let Some(t0) = t0 {
            self.sub
                .on_subsystem_time(Subsystem::GeometryDiff, t0.elapsed().as_nanos() as u64);
        }
        if S::ENABLED {
            let ev = jtp_events::MobilityTick { changed_edges };
            self.sub.on_mobility(now, &ev);
        }
        self.flood_views(now, FloodCause::Mobility, false);
        self.note_first_partition(now);
        let at = now + mcfg.update_period;
        if at <= self.end {
            q.schedule_at(at, Event::MobilityTick);
        }
    }

    // ------------------------------------------------------------------
    // Harvest
    // ------------------------------------------------------------------

    /// Collect run metrics. Call after the event loop finishes (and, when
    /// idle-slot skipping is on, after [`Network::finalize`]).
    pub fn metrics(&self, now: SimTime) -> Metrics {
        let mut per_node = Vec::with_capacity(self.nodes.len());
        let mut total = EnergyMeter::new();
        for node in &self.nodes {
            per_node.push(node.energy.total_j());
            total.merge(&node.energy);
        }
        let mut queue_drops = 0;
        let mut queue_drops_data = 0;
        let mut arq_drops = 0;
        let mut mac_attempts = 0;
        let mut energy_budget_drops = 0;
        let mut local_recoveries = 0;
        for node in &self.nodes {
            let s = node.mac.stats();
            queue_drops += s.queue_drops;
            queue_drops_data += s.queue_drops_data;
            arq_drops += s.arq_drops;
            mac_attempts += s.attempts;
            let i = node.ijtp.stats();
            energy_budget_drops += i.energy_drops;
            local_recoveries += i.local_retransmissions;
        }
        let mut flows = Vec::with_capacity(self.flows.len());
        let mut delivered_packets = 0;
        let mut delivered_bytes = 0;
        let mut source_retransmissions = 0;
        let mut feedbacks_sent = 0;
        for f in &self.flows {
            let end_time = f.completed_at.unwrap_or(now);
            let active = end_time.since(f.start).as_secs_f64();
            let fm = match &f.endpoints {
                Endpoints::Jtp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.source_retransmissions,
                        locally_recovered: ts.locally_recovered,
                        feedbacks_sent: rs.feedbacks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Tcp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.acks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Atp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.feedbacks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Cubic(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.acks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Bbr(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.acks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
            };
            delivered_packets += fm.delivered_packets;
            delivered_bytes += fm.delivered_bytes;
            source_retransmissions += fm.source_retransmissions;
            feedbacks_sent += fm.feedbacks_sent;
            flows.push(fm);
        }
        let residual_j: Vec<f64> = self.batteries.iter().map(|b| b.residual_j()).collect();
        let mut alive = self.positions.len() as u32;
        let alive_curve: Vec<(f64, u32)> = self
            .deaths
            .iter()
            .map(|(t, _)| {
                alive -= 1;
                (t.as_secs_f64(), alive)
            })
            .collect();
        Metrics {
            energy_total_j: total.total_j(),
            per_node_energy_j: per_node,
            energy_ack_j: total.ack_j(),
            battery_deaths: self.deaths.len() as u64,
            first_death_s: self.deaths.first().map(|(t, _)| t.as_secs_f64()),
            first_partition_s: self.first_partition.map(|t| t.as_secs_f64()),
            alive_curve,
            residual_j,
            delivered_packets,
            delivered_bytes,
            source_retransmissions,
            local_recoveries,
            queue_drops,
            queue_drops_data,
            arq_drops,
            energy_budget_drops,
            no_route_drops: self.no_route_drops,
            churn_drops: self.churn_drops,
            mac_attempts,
            feedbacks_sent,
            flows,
            duration_s: now.as_secs_f64(),
        }
    }

    /// Which transport this run exercises.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// Current node positions (test/diagnostic).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Whether a node is currently powered — false after dynamics churn,
    /// an area failure or battery death (test/diagnostic; this is what
    /// the `AreaFail` disc-semantics test asserts against).
    pub fn node_is_up(&self, v: NodeId) -> bool {
        self.truth.is_up(v)
    }
}

impl<S: Subscriber> Simulation for Network<S> {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        let t0 = span_start::<S>();
        match event {
            Event::Slot(s) => self.handle_slot(now, s, queue),
            Event::FlowStart(f) => self.handle_flow_start(now, f, queue),
            Event::SenderWakeup(f) => self.handle_sender_wakeup(now, f, queue),
            Event::ReceiverTimer(f) => self.handle_receiver_timer(now, f, queue),
            Event::MobilityTick => self.handle_mobility_tick(now, queue),
            Event::Dynamics(i) => self.handle_dynamics(now, i),
            Event::EnergyAdvert => self.handle_energy_advert(now, queue),
        }
        if let Some(t0) = t0 {
            // Dispatch-level buckets: every event lands in exactly one
            // (nested flood-plane / geometry-diff spans ride inside).
            let sys = match event {
                Event::Slot(_) => Subsystem::SlotPlane,
                Event::FlowStart(_) | Event::SenderWakeup(_) | Event::ReceiverTimer(_) => {
                    Subsystem::Timers
                }
                Event::MobilityTick => Subsystem::Mobility,
                Event::Dynamics(_) => Subsystem::Dynamics,
                Event::EnergyAdvert => Subsystem::EnergyAdvert,
            };
            self.sub
                .on_subsystem_time(sys, t0.elapsed().as_nanos() as u64);
        }
        // Any handler may have enqueued or drained MAC traffic; keep the
        // skipping engine's slot event aimed at the earliest busy slot.
        self.sync_slot_event(now, queue);
    }
}
