//! The assembled network: nodes (MAC + iJTP + energy meter), channel,
//! routing, flows and the event loop gluing them together.
//!
//! One [`Network`] is one experiment run. The event loop follows the
//! paper's system structure:
//!
//! * a TDMA slot event fires for every slot owned by a **backlogged**
//!   node; the pseudo-random schedule names the owner, which transmits the
//!   head of its MAC queue (after the iJTP PreXmit hook — Algorithm 1 —
//!   has charged energy, set the attempt budget and stamped the available
//!   rate). Slots owned by idle nodes are *skipped*: the engine jumps
//!   straight to the next busy slot and replays the skipped owners'
//!   idle-slot statistics exactly, so results are byte-identical to the
//!   naive slot-per-event loop at a fraction of the event count
//!   (`ExperimentConfig::idle_slot_skipping` toggles this),
//! * delivered frames either terminate at their endpoint (eJTP / TCP /
//!   ATP state machines) or pass through the iJTP PostRcv hook
//!   (Algorithm 2 — caching and SNACK-triggered local recovery) and are
//!   forwarded along the link-state route,
//! * sender wakeups pace data out at the receiver-assigned rate; receiver
//!   timers emit regular feedback; mobility ticks move nodes and refresh
//!   (staleness permitting) the routing views,
//! * scheduled **dynamics** events crash/heal nodes, black out links and
//!   open/heal partitions: the effective ground truth is the geometric
//!   connectivity masked by the substrate state, and each action floods a
//!   routing refresh while in-flight traffic fails at the channel —
//!   identically in the skipping and naive engines.
//!
//! Hot-path notes: per-link Gilbert-Elliott fading processes live in a
//! flat `Vec` indexed by a dense triangular pair index (no per-frame
//! hashing), and slot events are scheduled in event class 0 so a slot
//! boundary always precedes same-instant timers regardless of *when* the
//! slot event was (re)scheduled — the invariant the skipping engine's
//! equivalence proof rests on.

use crate::config::{
    DynamicsAction, DynamicsEvent, ExperimentConfig, MobilityConfig, TransportKind,
};
use crate::metrics::{FlowMetrics, Metrics};
use crate::payload::{Payload, TransportPacket};
use crate::topology::{adjacency_from_positions, field_for, place_nodes};
use crate::trace::{MonitorSample, TraceConfig, TraceLog};
use jtp::{IjtpModule, JtpReceiver, JtpSender, LinkInfo, PreXmitVerdict};
use jtp_baselines::atp::{AtpReceiver, AtpSender};
use jtp_baselines::tcp::{TcpReceiver, TcpSender};
use jtp_mac::{Frame, FrameKind, NodeMac, SlotOutcome, TdmaSchedule};
use jtp_phys::energy::EnergyCategory;
use jtp_phys::gilbert::{GilbertConfig, GilbertElliott};
use jtp_phys::{EnergyMeter, MobilityModel, PathLoss, Point, RadioEnergyModel, RandomWaypoint};
use jtp_routing::{Adjacency, LinkState};
use jtp_sim::{EventId, EventQueue, FlowId, NodeId, SimDuration, SimRng, SimTime, Simulation};

/// Event class of TDMA slot boundaries: delivered before same-instant
/// timer events (classes are ordered before FIFO sequence at ties).
const SLOT_CLASS: u8 = 0;

/// Simulation events.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// TDMA slot boundary (global slot index).
    Slot(u64),
    /// A flow's transfer begins.
    FlowStart(FlowId),
    /// Pacing / sender timers.
    SenderWakeup(FlowId),
    /// Regular feedback timer (JTP/ATP) or delayed-ACK flush (TCP).
    ReceiverTimer(FlowId),
    /// Positions move; topology and routing views refresh.
    MobilityTick,
    /// A scheduled substrate dynamics action fires (index into
    /// [`ExperimentConfig::dynamics`]).
    Dynamics(u32),
}

/// Transport endpoints of a flow.
enum Endpoints {
    Jtp(Box<JtpSender>, Box<JtpReceiver>),
    Tcp(Box<TcpSender>, Box<TcpReceiver>),
    Atp(Box<AtpSender>, Box<AtpReceiver>),
}

struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    start: SimTime,
    offered_packets: u32,
    endpoints: Endpoints,
    started: bool,
    completed_at: Option<SimTime>,
    /// The single pending sender wakeup, if any: (handle, fire time).
    /// Wakeups are deduplicated — an ACK arrival used to spawn an extra
    /// parallel wakeup chain that never died, giving O(acks²) no-op timer
    /// events per flow; now an earlier request cancels the later one.
    wakeup: Option<(EventId, SimTime)>,
}

enum Mobility {
    Static,
    Waypoint(RandomWaypoint),
}

struct Node {
    mac: NodeMac<TransportPacket>,
    ijtp: IjtpModule,
    energy: EnergyMeter,
    mobility: Mobility,
}

/// One experiment run: build with [`Network::new`], drive with
/// [`jtp_sim::run_until`], harvest with [`Network::metrics`].
pub struct Network {
    transport: TransportKind,
    nodes: Vec<Node>,
    positions: Vec<Point>,
    flows: Vec<Flow>,
    schedule: TdmaSchedule,
    routing: LinkState,
    truth: Adjacency,
    /// Per-undirected-link fading processes, indexed by [`Network::pair_index`].
    /// Lazily initialised so RNG substream consumption matches link first-use
    /// order exactly (the former `HashMap` behaviour).
    channels: Vec<Option<GilbertElliott>>,
    attempt_rng: SimRng,
    pathloss: PathLoss,
    gilbert_cfg: GilbertConfig,
    energy_model: RadioEnergyModel,
    seed: u64,
    mobility_cfg: Option<MobilityConfig>,
    tcp_ack_flush: SimDuration,
    end: SimTime,
    trace_cfg: TraceConfig,
    /// Collected time-series traces (see [`TraceConfig`]).
    pub trace: TraceLog,
    no_route_drops: u64,
    // ---- substrate dynamics state ----
    /// The scheduled dynamics timeline (from the config).
    dynamics: Vec<DynamicsEvent>,
    /// `node_up[i]` ⇔ node i is powered (failed nodes neither transmit
    /// nor receive and their links vanish from the advertised topology).
    node_up: Vec<bool>,
    /// Blacked-out undirected links, indexed like [`Network::pair_index`].
    blocked_links: Vec<bool>,
    /// Active partition: side membership per node (cross-side links are
    /// severed). At most one partition at a time.
    partition: Option<Vec<bool>>,
    /// Frames lost to node crashes (flushed queues + sends from a dead
    /// node), distinct from congestion/ARQ/no-route drops.
    churn_drops: u64,
    // ---- idle-slot-skipping engine state ----
    /// Whether slots owned by idle nodes are skipped (config).
    skip_idle: bool,
    /// Whether sender wakeups are deduplicated per flow (config).
    coalesce_wakeups: bool,
    /// `backlog[i]` ⇔ node i's MAC queue is non-empty.
    backlog: Vec<bool>,
    /// Count of `true` entries in `backlog`.
    backlog_count: usize,
    /// Set when `backlog` changed since the slot event was last synced.
    backlog_dirty: bool,
    /// Next slot index not yet accounted (fired or replayed as idle).
    slot_cursor: u64,
    /// The scheduled slot event, if any: (queue handle, slot index).
    pending_slot: Option<(EventId, u64)>,
    /// Flows with `completed_at` set (O(1) all-done check).
    completed_flows: usize,
}

impl Network {
    /// Build a network and its event queue from a validated configuration.
    pub fn new(cfg: &ExperimentConfig, trace_cfg: TraceConfig) -> (Network, EventQueue<Event>) {
        cfg.validate().expect("invalid experiment configuration");
        let n = cfg.topology.node_count();
        let positions = place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed);
        let truth = adjacency_from_positions(&positions, &cfg.pathloss);
        let routing = LinkState::new(&truth, cfg.routing_refresh);
        let schedule = TdmaSchedule::new(n as u32, cfg.slot, cfg.seed);
        let capacity = schedule.per_node_capacity_pps();
        let field = field_for(&cfg.topology);

        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let cache = if cfg.transport == TransportKind::Jtp && cfg.jtp.caching_enabled {
                    cfg.jtp.cache_capacity
                } else {
                    0
                };
                let mobility = match &cfg.mobility {
                    Some(m) => Mobility::Waypoint(RandomWaypoint::new(
                        field,
                        positions[i],
                        m.speed_mps,
                        m.mean_leg_m,
                        m.mean_pause_s,
                        cfg.seed,
                        i as u64,
                    )),
                    None => Mobility::Static,
                };
                let mut ijtp = IjtpModule::with_cache_policy(
                    cache,
                    cfg.mac.max_attempts_cap,
                    cfg.jtp.cache_policy,
                );
                ijtp.set_allocation(cfg.jtp.allocation);
                Node {
                    mac: NodeMac::new(cfg.mac, capacity),
                    ijtp,
                    energy: EnergyMeter::new(),
                    mobility,
                }
            })
            .collect();

        let mut jtp_cfg = cfg.jtp.clone();
        // Give the receiver-side controller the true capacity ceiling (the
        // paper: "the eJTP destination also limits the sending rate by its
        // delivery rate"), leaving headroom for rate probing.
        jtp_cfg.max_rate_pps = jtp_cfg.max_rate_pps.min(capacity * 2.0);
        // The congestion-avoidance margin δ scales with the slot capacity:
        // JTP "aggressively seeks to avoid any congestion-based packet
        // loss" by keeping the path's available rate strictly positive.
        jtp_cfg.delta_avail_pps = jtp_cfg.delta_avail_pps.max(0.10 * capacity);
        let mut tcp_cfg = cfg.tcp.clone();
        tcp_cfg.max_rate_pps = tcp_cfg.max_rate_pps.min(capacity * 2.0);
        let mut atp_cfg = cfg.atp.clone();
        atp_cfg.max_rate_pps = atp_cfg.max_rate_pps.min(capacity * 2.0);

        let flows: Vec<Flow> = cfg
            .flows
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = FlowId(i as u16);
                let endpoints = match cfg.transport {
                    TransportKind::Jtp | TransportKind::Jnc => {
                        let mut fc = jtp_cfg.clone();
                        if let Some(r) = spec.initial_rate_pps {
                            fc.initial_rate_pps = r.clamp(fc.min_rate_pps, fc.max_rate_pps);
                        }
                        Endpoints::Jtp(
                            Box::new(JtpSender::new(
                                id,
                                spec.packets,
                                spec.loss_tolerance,
                                fc.clone(),
                            )),
                            Box::new(JtpReceiver::new(id, spec.loss_tolerance, fc)),
                        )
                    }
                    TransportKind::Tcp => Endpoints::Tcp(
                        Box::new(TcpSender::new(id, spec.packets, tcp_cfg.clone())),
                        Box::new(TcpReceiver::new(id, tcp_cfg.clone())),
                    ),
                    TransportKind::Atp => Endpoints::Atp(
                        Box::new(AtpSender::new(id, spec.packets, atp_cfg.clone())),
                        Box::new(AtpReceiver::new(id, atp_cfg.clone())),
                    ),
                };
                Flow {
                    id,
                    src: spec.src,
                    dst: spec.dst,
                    start: SimTime::ZERO + spec.start,
                    offered_packets: spec.packets,
                    endpoints,
                    started: false,
                    completed_at: None,
                    wakeup: None,
                }
            })
            .collect();

        let end = SimTime::ZERO + cfg.duration;
        let mut queue = EventQueue::new();
        let skip_idle = cfg.idle_slot_skipping;
        let coalesce_wakeups = cfg.wakeup_coalescing;
        let mut pending_slot = None;
        if !skip_idle {
            // Naive engine: one event per slot from t=0 on.
            let id = queue.schedule_at_class(SimTime::ZERO, SLOT_CLASS, Event::Slot(0));
            pending_slot = Some((id, 0));
        }
        // Dynamics fire before same-instant flow starts (schedule order
        // breaks FIFO ties), so a t=0 failure precedes a t=0 flow.
        for (i, ev) in cfg.dynamics.iter().enumerate() {
            let at = SimTime::ZERO + ev.at;
            if at <= end {
                queue.schedule_at(at, Event::Dynamics(i as u32));
            }
        }
        for f in &flows {
            queue.schedule_at(f.start.min(end), Event::FlowStart(f.id));
        }
        if let Some(m) = &cfg.mobility {
            queue.schedule_at(SimTime::ZERO + m.update_period, Event::MobilityTick);
        }

        let net = Network {
            transport: cfg.transport,
            backlog: vec![false; n],
            backlog_count: 0,
            backlog_dirty: false,
            slot_cursor: 0,
            pending_slot,
            completed_flows: 0,
            skip_idle,
            coalesce_wakeups,
            nodes,
            positions,
            flows,
            schedule,
            routing,
            truth,
            channels: vec![None; n * (n.saturating_sub(1)) / 2],
            attempt_rng: SimRng::derive(cfg.seed, "channel-attempts"),
            pathloss: cfg.pathloss,
            gilbert_cfg: cfg.gilbert,
            energy_model: cfg.energy,
            seed: cfg.seed,
            mobility_cfg: cfg.mobility,
            tcp_ack_flush: cfg.tcp_ack_flush,
            end,
            trace_cfg,
            trace: TraceLog::default(),
            no_route_drops: 0,
            dynamics: cfg.dynamics.clone(),
            node_up: vec![true; n],
            blocked_links: vec![false; n * (n.saturating_sub(1)) / 2],
            partition: None,
            churn_drops: 0,
        };
        (net, queue)
    }

    /// The configured end of the run.
    pub fn horizon(&self) -> SimTime {
        self.end
    }

    /// True once every flow has completed (false when there are no flows).
    pub fn all_flows_completed(&self) -> bool {
        !self.flows.is_empty() && self.completed_flows == self.flows.len()
    }

    // ------------------------------------------------------------------
    // Idle-slot-skipping engine
    // ------------------------------------------------------------------

    /// Record node `node`'s queue-empty status after a MAC mutation.
    fn refresh_backlog(&mut self, node: NodeId) {
        let has = self.nodes[node.index()].mac.queue_len() > 0;
        if self.backlog[node.index()] != has {
            self.backlog[node.index()] = has;
            if has {
                self.backlog_count += 1;
            } else {
                self.backlog_count -= 1;
            }
            self.backlog_dirty = true;
        }
    }

    /// Replay slots `[slot_cursor, upto)` as idle: each was owned by a node
    /// whose queue was empty when the slot passed (the scheduling invariant
    /// guarantees this), so the only effect the naive loop would have had
    /// is the owner's idle-slot accounting — applied here in slot order,
    /// byte-identically.
    fn replay_idle_slots(&mut self, upto: u64) {
        while self.slot_cursor < upto {
            let owner = self.schedule.owner(self.slot_cursor);
            self.nodes[owner.index()].mac.record_owned_slot(false);
            self.slot_cursor += 1;
        }
    }

    /// Reconcile the scheduled slot event with the current backlog: keep it
    /// iff it still targets the earliest busy-owned slot, else cancel and
    /// reschedule. Runs after every handled event (cheap no-op unless the
    /// backlog changed).
    fn sync_slot_event(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if !self.skip_idle {
            return;
        }
        if self.all_flows_completed() {
            // The naive loop stops rescheduling slots once all flows are
            // done; mirror that so the pending-event sets (and thus the
            // queue drain time) agree exactly.
            if let Some((id, _)) = self.pending_slot.take() {
                q.cancel(id);
            }
            return;
        }
        if !self.backlog_dirty {
            return;
        }
        self.backlog_dirty = false;
        let desired = if self.backlog_count == 0 {
            None
        } else {
            self.schedule
                .next_owned_slot(now, &self.backlog)
                .filter(|&s| self.schedule.slot_start(s) <= self.end)
        };
        match (self.pending_slot, desired) {
            (Some((_, cur)), Some(want)) if cur == want => {}
            (prev, want) => {
                if let Some((id, _)) = prev {
                    q.cancel(id);
                }
                self.pending_slot = want.map(|s| {
                    let at = self.schedule.slot_start(s);
                    (q.schedule_at_class(at, SLOT_CLASS, Event::Slot(s)), s)
                });
            }
        }
    }

    /// Account the idle tail after the event loop finishes: every slot the
    /// naive loop would still have fired (start ≤ min(end, horizon), no
    /// early all-done stop) is replayed as idle. No-op unless idle-slot
    /// skipping is enabled.
    pub fn finalize(&mut self, horizon: SimTime) {
        if !self.skip_idle || self.all_flows_completed() {
            return;
        }
        let last = self.schedule.slot_index_at(self.end.min(horizon));
        self.replay_idle_slots(last + 1);
    }

    // ------------------------------------------------------------------
    // Substrate dynamics
    // ------------------------------------------------------------------

    /// Recompute the effective ground truth: geometric connectivity minus
    /// failed nodes, blacked-out links and the active partition cut.
    fn rebuild_truth(&mut self) {
        let n = self.positions.len();
        let mut adj = jtp_routing::Adjacency::new(n);
        for i in 0..n {
            if !self.node_up[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !self.node_up[j] || self.blocked_links[self.pair_index(i as u32, j as u32)] {
                    continue;
                }
                if let Some(side) = &self.partition {
                    if side[i] != side[j] {
                        continue;
                    }
                }
                if self
                    .pathloss
                    .in_range(self.positions[i].distance(self.positions[j]))
                {
                    adj.set_edge(NodeId(i as u32), NodeId(j as u32), true);
                }
            }
        }
        self.truth = adj;
    }

    /// Apply one scheduled dynamics action, then advertise the new truth
    /// to every routing view at once (the flooded link-state update a
    /// failure detection triggers).
    fn handle_dynamics(&mut self, now: SimTime, idx: u32) {
        match self.dynamics[idx as usize].action.clone() {
            DynamicsAction::NodeDown(v) => {
                if self.node_up[v.index()] {
                    self.node_up[v.index()] = false;
                    // The crash loses the transmit queue; while down the
                    // node enqueues nothing, so its slots stay idle (and
                    // skippable) by construction.
                    self.churn_drops += self.nodes[v.index()].mac.flush();
                    self.refresh_backlog(v);
                }
            }
            DynamicsAction::NodeUp(v) => {
                self.node_up[v.index()] = true;
            }
            DynamicsAction::LinkDown(a, b) => {
                let idx = self.pair_index(a.0.min(b.0), a.0.max(b.0));
                self.blocked_links[idx] = true;
            }
            DynamicsAction::LinkUp(a, b) => {
                let idx = self.pair_index(a.0.min(b.0), a.0.max(b.0));
                self.blocked_links[idx] = false;
            }
            DynamicsAction::PartitionStart(group) => {
                let mut side = vec![false; self.positions.len()];
                for v in &group {
                    side[v.index()] = true;
                }
                self.partition = Some(side);
            }
            DynamicsAction::PartitionEnd => {
                self.partition = None;
            }
        }
        self.rebuild_truth();
        self.routing.force_refresh_all(now, &self.truth);
    }

    // ------------------------------------------------------------------
    // Forwarding
    // ------------------------------------------------------------------

    /// Route `tp` one hop from `from` and enqueue it at `from`'s MAC.
    fn forward_from(&mut self, from: NodeId, tp: TransportPacket) {
        if !self.node_up[from.index()] {
            // A dead node originates and forwards nothing; transport
            // timers at a crashed endpoint spin harmlessly until it heals.
            self.churn_drops += 1;
            return;
        }
        let Some(next) = self.routing.next_hop(from, tp.dst_end) else {
            self.no_route_drops += 1;
            return;
        };
        let bytes = tp.payload.wire_bytes();
        let kind = tp.payload.kind();
        let mut frame = Frame::new(from, next, kind, bytes, tp);
        // Non-JTP-data frames use the MAC's full budget; JTP data budgets
        // are set per packet by iJTP at first transmission.
        frame.max_attempts = self.nodes[from.index()].mac.max_attempts_cap();
        let _ = self.nodes[from.index()].mac.enqueue(frame); // overflow counted inside
        self.refresh_backlog(from);
    }

    // ------------------------------------------------------------------
    // TDMA slot
    // ------------------------------------------------------------------

    fn handle_slot(&mut self, now: SimTime, slot: u64, q: &mut EventQueue<Event>) {
        if self.skip_idle {
            // This event consumed the pending handle; catch up the skipped
            // idle slots first so MAC statistics are read in replay order.
            self.pending_slot = None;
            self.replay_idle_slots(slot);
            self.backlog_dirty = true;
        }
        self.slot_cursor = slot + 1;
        let owner = self.schedule.owner(slot);
        match self.prepare_head(owner, now) {
            None => {
                self.nodes[owner.index()].mac.record_owned_slot(false);
            }
            Some((dst, bytes, kind)) => {
                self.nodes[owner.index()].mac.record_owned_slot(true);
                let success = self.sample_channel(owner, dst, now);
                let tx_j = self.energy_model.tx_energy_j(bytes);
                let (cat_tx, cat_rx) = match kind {
                    FrameKind::Data => (EnergyCategory::DataTx, EnergyCategory::DataRx),
                    FrameKind::Ack => (EnergyCategory::AckTx, EnergyCategory::AckRx),
                };
                self.nodes[owner.index()].energy.charge(cat_tx, tx_j);
                if success {
                    let rx_j = self.energy_model.rx_energy_j(bytes);
                    self.nodes[dst.index()].energy.charge(cat_rx, rx_j);
                }
                match self.nodes[owner.index()].mac.transmit_result(success) {
                    SlotOutcome::Delivered(frame) => self.deliver(now, frame, q),
                    SlotOutcome::Exhausted(_) | SlotOutcome::Retrying => {}
                    SlotOutcome::Idle => unreachable!("prepared head implies non-idle"),
                }
            }
        }
        self.refresh_backlog(owner);
        if !self.skip_idle {
            // Naive engine: fire every slot; stop once every flow has
            // finished, so the queue drains and the run ends early with
            // identical metrics.
            let next = self.schedule.slot_start(slot + 1);
            if !self.all_flows_completed() && next <= self.end {
                let id = q.schedule_at_class(next, SLOT_CLASS, Event::Slot(slot + 1));
                self.pending_slot = Some((id, slot + 1));
            } else {
                self.pending_slot = None;
            }
        }
    }

    /// Run the pre-transmission hooks on the owner's queue head, dropping
    /// hook-rejected frames, until a transmittable frame remains. Returns
    /// `(next_hop, wire_bytes, kind)`.
    fn prepare_head(&mut self, owner: NodeId, now: SimTime) -> Option<(NodeId, usize, FrameKind)> {
        loop {
            let (dst, dst_end, first, bytes, is_jtp_data, is_atp_data) = {
                let head = self.nodes[owner.index()].mac.head()?;
                (
                    head.dst,
                    head.payload.dst_end,
                    head.is_first_attempt(),
                    head.bytes,
                    matches!(head.payload.payload, Payload::JtpData(_)),
                    matches!(head.payload.payload, Payload::AtpData(_)),
                )
            };
            if is_jtp_data {
                // Gather link state before mutably borrowing the node.
                let remaining = match self.routing.remaining_hops(owner, dst_end) {
                    Some(h) => h.max(1),
                    None => {
                        // The local view lost the route: drop (counted).
                        self.nodes[owner.index()].mac.drop_head();
                        self.no_route_drops += 1;
                        continue;
                    }
                };
                let mac = &self.nodes[owner.index()].mac;
                let link = LinkInfo {
                    loss_rate: mac.loss_rate(dst),
                    avail_rate_pps: mac.available_pps(),
                    avg_attempts: mac.avg_attempts(dst),
                    tx_energy_nj: (self.energy_model.tx_energy_j(bytes) * 1e9).round() as u32,
                    remaining_hops: remaining,
                };
                let node = &mut self.nodes[owner.index()];
                let head = node.mac.head_mut().expect("head probed above");
                let Payload::JtpData(ref mut data) = head.payload.payload else {
                    unreachable!("probed as JTP data")
                };
                match node.ijtp.pre_xmit_data(data, &link, first) {
                    PreXmitVerdict::DropEnergyExhausted => {
                        node.mac.drop_head();
                        continue;
                    }
                    PreXmitVerdict::Forward { max_attempts } => {
                        if first {
                            head.max_attempts = max_attempts;
                            if self.trace_cfg.attempts_at == Some(owner) {
                                self.trace.attempts.push((now, max_attempts));
                            }
                        }
                    }
                }
            } else if is_atp_data {
                // ATP's explicit-rate stamping by intermediate nodes.
                let mac = &self.nodes[owner.index()].mac;
                let eff = (mac.available_pps() / mac.avg_attempts(dst).max(1.0)) as f32;
                let head = self.nodes[owner.index()].mac.head_mut().expect("head");
                if let Payload::AtpData(ref mut d) = head.payload.payload {
                    if eff < d.stamped_rate {
                        d.stamped_rate = eff;
                    }
                }
            }
            let head = self.nodes[owner.index()]
                .mac
                .head()
                .expect("head survives hooks");
            return Some((head.dst, head.bytes, head.kind));
        }
    }

    /// Dense index of the undirected pair `{a, b}` into the flat channel
    /// table (upper-triangular, row-major).
    fn pair_index(&self, lo: u32, hi: u32) -> usize {
        let n = self.nodes.len();
        let (lo, hi) = (lo as usize, hi as usize);
        debug_assert!(lo < hi && hi < n);
        lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Sample the channel for one transmission attempt.
    fn sample_channel(&mut self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        // Substrate dynamics short-circuit the channel without touching
        // any RNG substream: a dead endpoint, a blacked-out link or a
        // partition cut can never deliver.
        if !self.node_up[from.index()] || !self.node_up[to.index()] {
            return false;
        }
        let (lo, hi) = (from.0.min(to.0), from.0.max(to.0));
        if self.blocked_links[self.pair_index(lo, hi)] {
            return false;
        }
        if let Some(side) = &self.partition {
            if side[from.index()] != side[to.index()] {
                return false;
            }
        }
        let d = self.positions[from.index()].distance(self.positions[to.index()]);
        if !self.pathloss.in_range(d) {
            return false;
        }
        let baseline = self.pathloss.loss_at(d);
        // Fading is shared per undirected link (symmetric channel).
        let idx = self.pair_index(lo, hi);
        let n = self.nodes.len() as u64;
        let (cfg, seed) = (self.gilbert_cfg, self.seed);
        let ge = self.channels[idx]
            .get_or_insert_with(|| GilbertElliott::new(cfg, seed, lo as u64 * n + hi as u64));
        let loss = ge.loss_prob(now, baseline);
        !self.attempt_rng.chance(loss)
    }

    // ------------------------------------------------------------------
    // Delivery
    // ------------------------------------------------------------------

    fn deliver(&mut self, now: SimTime, frame: Frame<TransportPacket>, q: &mut EventQueue<Event>) {
        let here = frame.dst;
        let tp = frame.payload;
        if tp.dst_end == here {
            self.consume(now, here, tp, q);
        } else {
            self.relay(now, here, tp);
        }
    }

    /// Hop processing at an intermediate node (Algorithm 2), then forward.
    fn relay(&mut self, now: SimTime, here: NodeId, mut tp: TransportPacket) {
        let _ = now;
        match &mut tp.payload {
            Payload::JtpData(d) => {
                self.nodes[here.index()].ijtp.post_rcv_data(d);
            }
            Payload::JtpAck(a) => {
                let recovered = self.nodes[here.index()].ijtp.post_rcv_ack(a);
                if !recovered.is_empty() {
                    // Data flows toward the ACK's origin (the receiver).
                    let data_dst = tp.src_end;
                    let data_src = tp.dst_end;
                    for pkt in recovered {
                        self.forward_from(
                            here,
                            TransportPacket {
                                src_end: data_src,
                                dst_end: data_dst,
                                payload: Payload::JtpData(pkt),
                            },
                        );
                    }
                }
            }
            // TCP and ATP are end-to-end only: intermediate nodes forward.
            _ => {}
        }
        self.forward_from(here, tp);
    }

    /// Mark a flow complete (first time only).
    fn mark_completed(&mut self, fi: usize, now: SimTime) {
        if self.flows[fi].completed_at.is_none() {
            self.flows[fi].completed_at = Some(now);
            self.completed_flows += 1;
        }
    }

    /// Endpoint processing.
    fn consume(
        &mut self,
        now: SimTime,
        here: NodeId,
        tp: TransportPacket,
        q: &mut EventQueue<Event>,
    ) {
        let fid = tp.payload.flow();
        let fi = fid.index();
        debug_assert!(fi < self.flows.len(), "unknown flow {fid}");
        match tp.payload {
            Payload::JtpData(d) => {
                let (fresh, early, monitor) = {
                    let Endpoints::Jtp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let early = rx.on_data(now, &d);
                    let fresh = rx.stats().delivered_packets > before;
                    let monitor = rx.rate_monitor_state();
                    (fresh, early, monitor)
                };
                if fresh && self.trace_cfg.receptions {
                    self.trace.receptions.push((now, fid));
                }
                if self.trace_cfg.monitor_of == Some(fid) {
                    if let Some((lcl, mean, ucl)) = monitor {
                        self.trace.monitor.push(MonitorSample {
                            at: now,
                            reported: d.rate_pps as f64,
                            mean,
                            lcl,
                            ucl,
                        });
                    }
                }
                if let Some(ack) = early {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::JtpAck(ack),
                        },
                    );
                }
            }
            Payload::JtpAck(a) => {
                let complete = {
                    let Endpoints::Jtp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::TcpData(d) => {
                let (fresh, ack) = {
                    let Endpoints::Tcp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    let ack = rx.on_data(now, &d);
                    (rx.stats().delivered_packets > before, ack)
                };
                if fresh && self.trace_cfg.receptions {
                    self.trace.receptions.push((now, fid));
                }
                if let Some(ack) = ack {
                    let back_to = self.flows[fi].src;
                    self.forward_from(
                        here,
                        TransportPacket {
                            src_end: here,
                            dst_end: back_to,
                            payload: Payload::TcpAck(ack),
                        },
                    );
                }
            }
            Payload::TcpAck(a) => {
                let complete = {
                    let Endpoints::Tcp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_ack(now, &a);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
            Payload::AtpData(d) => {
                let fresh = {
                    let Endpoints::Atp(_, rx) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    let before = rx.stats().delivered_packets;
                    rx.on_data(now, &d);
                    rx.stats().delivered_packets > before
                };
                if fresh && self.trace_cfg.receptions {
                    self.trace.receptions.push((now, fid));
                }
            }
            Payload::AtpFeedback(fb) => {
                let complete = {
                    let Endpoints::Atp(tx, _) = &mut self.flows[fi].endpoints else {
                        return;
                    };
                    tx.on_feedback(now, &fb);
                    tx.is_complete()
                };
                if complete {
                    self.mark_completed(fi, now);
                }
                self.request_wakeup(fi, now, q);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Request a sender wakeup at `at`, keeping at most one pending wakeup
    /// per flow: a pending earlier (or equal) wakeup covers this request —
    /// its handler recomputes the next need when it fires — and a pending
    /// later one is cancelled in favour of the earlier time.
    fn request_wakeup(&mut self, fi: usize, at: SimTime, q: &mut EventQueue<Event>) {
        if !self.coalesce_wakeups {
            // Legacy behaviour (pre-overhaul): unconditionally spawn a new
            // wakeup chain. Kept for before/after benchmarking.
            let fid = self.flows[fi].id;
            q.schedule_at(at, Event::SenderWakeup(fid));
            return;
        }
        if let Some((id, t)) = self.flows[fi].wakeup {
            if t <= at {
                return;
            }
            q.cancel(id);
        }
        let fid = self.flows[fi].id;
        let id = q.schedule_at(at, Event::SenderWakeup(fid));
        self.flows[fi].wakeup = Some((id, at));
    }

    fn handle_flow_start(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        self.flows[fid.index()].started = true;
        self.request_wakeup(fid.index(), now, q);
        q.schedule_at(now, Event::ReceiverTimer(fid));
    }

    fn handle_sender_wakeup(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        let fi = fid.index();
        // This event is the flow's one pending wakeup.
        self.flows[fi].wakeup = None;
        if !self.flows[fi].started || self.flows[fi].completed_at.is_some() {
            return;
        }
        let (src, dst) = (self.flows[fi].src, self.flows[fi].dst);
        let mut outgoing: Vec<Payload> = Vec::new();
        let next_wakeup: Option<SimTime> = match &mut self.flows[fi].endpoints {
            Endpoints::Jtp(tx, _) => {
                tx.on_feedback_timeout(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::JtpData(p));
                }
                Some(tx.next_wakeup())
            }
            Endpoints::Tcp(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::TcpData(p));
                }
                tx.next_wakeup()
            }
            Endpoints::Atp(tx, _) => {
                tx.on_timer(now);
                while let Some(p) = tx.poll_send(now) {
                    outgoing.push(Payload::AtpData(p));
                }
                Some(tx.next_wakeup())
            }
        };
        for p in outgoing {
            self.forward_from(
                src,
                TransportPacket {
                    src_end: src,
                    dst_end: dst,
                    payload: p,
                },
            );
        }
        if let Some(at) = next_wakeup {
            let at = at.max(now + SimDuration::from_millis(1));
            if at <= self.end {
                self.request_wakeup(fi, at, q);
            }
        }
    }

    fn handle_receiver_timer(&mut self, now: SimTime, fid: FlowId, q: &mut EventQueue<Event>) {
        let fi = fid.index();
        if !self.flows[fi].started || self.flows[fi].completed_at.is_some() {
            return;
        }
        let (src, dst) = (self.flows[fi].src, self.flows[fi].dst);
        let mut feedback: Option<Payload> = None;
        let next_at: SimTime = match &mut self.flows[fi].endpoints {
            Endpoints::Jtp(_, rx) => {
                if now >= rx.next_feedback_at() {
                    feedback = Some(Payload::JtpAck(rx.poll_feedback(now)));
                }
                rx.next_feedback_at()
            }
            Endpoints::Tcp(_, rx) => {
                if let Some(ack) = rx.flush_ack() {
                    feedback = Some(Payload::TcpAck(ack));
                }
                now + self.tcp_ack_flush
            }
            Endpoints::Atp(_, rx) => {
                if now >= rx.next_feedback_at() {
                    feedback = Some(Payload::AtpFeedback(rx.poll_feedback(now)));
                }
                rx.next_feedback_at()
            }
        };
        if let Some(p) = feedback {
            // Feedback travels receiver -> sender.
            self.forward_from(
                dst,
                TransportPacket {
                    src_end: dst,
                    dst_end: src,
                    payload: p,
                },
            );
        }
        let at = next_at.max(now + SimDuration::from_millis(1));
        if at <= self.end {
            q.schedule_at(at, Event::ReceiverTimer(fid));
        }
    }

    fn handle_mobility_tick(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        let Some(mcfg) = self.mobility_cfg else {
            return;
        };
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if let Mobility::Waypoint(w) = &mut node.mobility {
                self.positions[i] = w.position_at(now);
            }
        }
        self.rebuild_truth();
        self.routing.refresh_due_views(now, &self.truth);
        let at = now + mcfg.update_period;
        if at <= self.end {
            q.schedule_at(at, Event::MobilityTick);
        }
    }

    // ------------------------------------------------------------------
    // Harvest
    // ------------------------------------------------------------------

    /// Collect run metrics. Call after the event loop finishes (and, when
    /// idle-slot skipping is on, after [`Network::finalize`]).
    pub fn metrics(&self, now: SimTime) -> Metrics {
        let mut per_node = Vec::with_capacity(self.nodes.len());
        let mut total = EnergyMeter::new();
        for node in &self.nodes {
            per_node.push(node.energy.total_j());
            total.merge(&node.energy);
        }
        let mut queue_drops = 0;
        let mut queue_drops_data = 0;
        let mut arq_drops = 0;
        let mut mac_attempts = 0;
        let mut energy_budget_drops = 0;
        let mut local_recoveries = 0;
        for node in &self.nodes {
            let s = node.mac.stats();
            queue_drops += s.queue_drops;
            queue_drops_data += s.queue_drops_data;
            arq_drops += s.arq_drops;
            mac_attempts += s.attempts;
            let i = node.ijtp.stats();
            energy_budget_drops += i.energy_drops;
            local_recoveries += i.local_retransmissions;
        }
        let mut flows = Vec::with_capacity(self.flows.len());
        let mut delivered_packets = 0;
        let mut delivered_bytes = 0;
        let mut source_retransmissions = 0;
        let mut feedbacks_sent = 0;
        for f in &self.flows {
            let end_time = f.completed_at.unwrap_or(now);
            let active = end_time.since(f.start).as_secs_f64();
            let fm = match &f.endpoints {
                Endpoints::Jtp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.source_retransmissions,
                        locally_recovered: ts.locally_recovered,
                        feedbacks_sent: rs.feedbacks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Tcp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.acks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
                Endpoints::Atp(tx, rx) => {
                    let (ts, rs) = (tx.stats(), rx.stats());
                    FlowMetrics {
                        flow: f.id.0,
                        delivered_packets: rs.delivered_packets,
                        delivered_bytes: rs.delivered_bytes,
                        offered_packets: f.offered_packets,
                        source_retransmissions: ts.retransmissions,
                        locally_recovered: 0,
                        feedbacks_sent: rs.feedbacks_sent,
                        active_time_s: active,
                        completed: f.completed_at.is_some(),
                    }
                }
            };
            delivered_packets += fm.delivered_packets;
            delivered_bytes += fm.delivered_bytes;
            source_retransmissions += fm.source_retransmissions;
            feedbacks_sent += fm.feedbacks_sent;
            flows.push(fm);
        }
        Metrics {
            energy_total_j: total.total_j(),
            per_node_energy_j: per_node,
            energy_ack_j: total.ack_j(),
            delivered_packets,
            delivered_bytes,
            source_retransmissions,
            local_recoveries,
            queue_drops,
            queue_drops_data,
            arq_drops,
            energy_budget_drops,
            no_route_drops: self.no_route_drops,
            churn_drops: self.churn_drops,
            mac_attempts,
            feedbacks_sent,
            flows,
            duration_s: now.as_secs_f64(),
        }
    }

    /// Which transport this run exercises.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// Current node positions (test/diagnostic).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }
}

impl Simulation for Network {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::Slot(s) => self.handle_slot(now, s, queue),
            Event::FlowStart(f) => self.handle_flow_start(now, f, queue),
            Event::SenderWakeup(f) => self.handle_sender_wakeup(now, f, queue),
            Event::ReceiverTimer(f) => self.handle_receiver_timer(now, f, queue),
            Event::MobilityTick => self.handle_mobility_tick(now, queue),
            Event::Dynamics(i) => self.handle_dynamics(now, i),
        }
        // Any handler may have enqueued or drained MAC traffic; keep the
        // skipping engine's slot event aimed at the earliest busy slot.
        self.sync_slot_event(now, queue);
    }
}
