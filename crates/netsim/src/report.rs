//! Per-scenario reports: a netbench-style harvest of one run — flow
//! throughput timelines, queue-depth histograms, drop-cause and flood-cost
//! breakdowns, the alive curve and event totals — as deterministic JSON
//! plus rendered markdown.
//!
//! The split enforces the determinism contract from ARCHITECTURE.md
//! ("Event & telemetry layer"): [`ScenarioReport`] contains **only**
//! values that are a pure function of the scenario (CI diffs its JSON
//! byte-for-byte across runs), while wall-clock time accounting lives in
//! [`TimeBreakdown`], which is never serialized — [`render_markdown`]
//! prints it in a clearly host-dependent section.

use crate::config::{ConfigError, TransportKind};
use crate::metrics::Metrics;
use crate::scenario::Scenario;
use jtp_events::{
    AttemptBudget, BatteryDeath, Delivery, DropCause, DynamicsApplied, EnergyAdvert, EventCounters,
    FloodCause, FloodEnd, MobilityTick, MonitorUpdate, PacketDrop, PacketSend, SlotGrant,
    Subscriber, Subsystem, TimeAccountant,
};
use jtp_sim::SimTime;
use serde::Serialize;

/// Queue-depth histogram buckets: exact depths `0..=7`, then `8+`.
pub const QUEUE_DEPTH_BUCKETS: usize = 9;

/// Throughput-timeline resolution: windows per scenario duration.
pub const TIMELINE_WINDOWS: usize = 24;

/// Event subscriber that folds the stream into report raw material:
/// per-flow fresh-delivery times, queue depths at slot grants, per-cause
/// flood costs, plus an embedded [`EventCounters`]. Pure fold — it is a
/// function of the event stream only, so two runs of the same scenario
/// produce identical recorders.
#[derive(Clone, Debug, Default)]
pub struct ReportRecorder {
    counters: EventCounters,
    /// Fresh-delivery timestamps (seconds) per flow index.
    flow_times: Vec<Vec<f64>>,
    /// Fresh-delivery wire bytes per flow index.
    flow_bytes: Vec<u64>,
    /// Slots observed at each queue depth (last bucket = `8+`).
    queue_depth: [u64; QUEUE_DEPTH_BUCKETS],
    flood_count: [u64; FloodCause::ALL.len()],
    flood_views: [u64; FloodCause::ALL.len()],
    flood_sources: [u64; FloodCause::ALL.len()],
    flood_entries: [u64; FloodCause::ALL.len()],
}

impl ReportRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The embedded event counters.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    fn flow_slot(&mut self, flow: usize) {
        if self.flow_times.len() <= flow {
            self.flow_times.resize(flow + 1, Vec::new());
            self.flow_bytes.resize(flow + 1, 0);
        }
    }
}

impl Subscriber for ReportRecorder {
    fn on_slot(&mut self, now: SimTime, ev: &SlotGrant) {
        self.counters.on_slot(now, ev);
        let b = (ev.queue_depth as usize).min(QUEUE_DEPTH_BUCKETS - 1);
        self.queue_depth[b] += 1;
    }
    fn on_send(&mut self, now: SimTime, ev: &PacketSend) {
        self.counters.on_send(now, ev);
    }
    fn on_attempt_budget(&mut self, now: SimTime, ev: &AttemptBudget) {
        self.counters.on_attempt_budget(now, ev);
    }
    fn on_delivery(&mut self, now: SimTime, ev: &Delivery) {
        self.counters.on_delivery(now, ev);
        if ev.fresh {
            let f = ev.flow.0 as usize;
            self.flow_slot(f);
            self.flow_times[f].push(now.as_secs_f64());
            self.flow_bytes[f] += u64::from(ev.bytes);
        }
    }
    fn on_drop(&mut self, now: SimTime, ev: &PacketDrop) {
        self.counters.on_drop(now, ev);
    }
    fn on_monitor(&mut self, now: SimTime, ev: &MonitorUpdate) {
        self.counters.on_monitor(now, ev);
    }
    fn on_flood_end(&mut self, now: SimTime, ev: &FloodEnd) {
        self.counters.on_flood_end(now, ev);
        let c = ev.cause.index();
        self.flood_count[c] += 1;
        self.flood_views[c] += ev.views_refreshed;
        self.flood_sources[c] += ev.sources_repaired;
        self.flood_entries[c] += ev.entries_changed;
    }
    fn on_battery_death(&mut self, now: SimTime, ev: &BatteryDeath) {
        self.counters.on_battery_death(now, ev);
    }
    fn on_energy_advert(&mut self, now: SimTime, ev: &EnergyAdvert) {
        self.counters.on_energy_advert(now, ev);
    }
    fn on_dynamics(&mut self, now: SimTime, ev: &DynamicsApplied) {
        self.counters.on_dynamics(now, ev);
    }
    fn on_mobility(&mut self, now: SimTime, ev: &MobilityTick) {
        self.counters.on_mobility(now, ev);
    }
}

/// One flow's report row: headline numbers plus a fixed-resolution
/// throughput timeline (fresh deliveries per second in each of
/// [`TIMELINE_WINDOWS`] equal windows).
#[derive(Clone, Debug, Serialize)]
pub struct FlowReport {
    /// Flow id.
    pub flow: u16,
    /// Packets the workload offered.
    pub offered_packets: u32,
    /// Distinct packets delivered.
    pub delivered_packets: u64,
    /// Goodput over the flow's active time (kbit/s).
    pub goodput_kbps: f64,
    /// First fresh delivery (seconds), if any.
    pub first_delivery_s: Option<f64>,
    /// Last fresh delivery (seconds), if any.
    pub last_delivery_s: Option<f64>,
    /// Mean gap between consecutive fresh deliveries (seconds), if ≥ 2.
    pub mean_gap_s: Option<f64>,
    /// Largest gap between consecutive fresh deliveries (seconds) — the
    /// latency stall a reader scans for first.
    pub max_gap_s: Option<f64>,
    /// Whether the flow completed its offered load.
    pub completed: bool,
    /// `(window_end_s, deliveries_per_s)` over the scenario duration.
    pub throughput_pps: Vec<(f64, f64)>,
}

/// One queue-depth histogram bucket.
#[derive(Clone, Debug, Serialize)]
pub struct QueueDepthBucket {
    /// Bucket label (`"0"`…`"7"`, `"8+"`).
    pub depth: String,
    /// Owned slots observed at that transmit-queue depth.
    pub slots: u64,
}

/// Packets lost to one drop cause.
#[derive(Clone, Debug, Serialize)]
pub struct DropReport {
    /// Cause label (see [`DropCause::name`]).
    pub cause: String,
    /// Packets dropped.
    pub packets: u64,
}

/// Aggregate flood cost for one trigger cause.
#[derive(Clone, Debug, Serialize)]
pub struct FloodReport {
    /// Trigger label (see [`FloodCause::name`]).
    pub cause: String,
    /// Floods triggered.
    pub floods: u64,
    /// Node views refreshed.
    pub views_refreshed: u64,
    /// Source rows repaired or rebuilt.
    pub sources_repaired: u64,
    /// Distance entries whose value actually changed (exact dirt).
    pub entries_changed: u64,
}

/// Event-stream totals (the [`EventCounters`] fold, flattened for JSON).
#[derive(Clone, Debug, Serialize)]
pub struct EventTotals {
    /// TDMA slots processed.
    pub slots: u64,
    /// Slots whose owner transmitted.
    pub busy_slots: u64,
    /// Frames put on the air.
    pub sends: u64,
    /// Frames the channel lost.
    pub send_failures: u64,
    /// Data-packet endpoint arrivals (including duplicates).
    pub deliveries: u64,
    /// First-time arrivals.
    pub fresh_deliveries: u64,
    /// ARQ attempt budgets granted.
    pub attempt_budgets: u64,
    /// Rate-monitor samples.
    pub monitor_samples: u64,
    /// Battery deaths.
    pub battery_deaths: u64,
    /// Energy adverts fired.
    pub energy_adverts: u64,
    /// Dynamics actions applied.
    pub dynamics_applied: u64,
    /// Mobility ticks applied.
    pub mobility_ticks: u64,
    /// Packets dropped, all causes.
    pub total_drops: u64,
    /// Routing floods, all causes.
    pub total_floods: u64,
}

/// A per-scenario report. Every field is a pure function of the scenario
/// — serializing two runs of the same scenario yields byte-identical
/// JSON (the CI `report-smoke` job asserts exactly that). Wall-clock
/// data deliberately has no field here; see [`TimeBreakdown`].
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Transport label (`"jtp"`, `"jnc"`, `"tcp"`, `"atp"`).
    pub transport: String,
    /// Master seed.
    pub seed: u64,
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Distinct packets delivered.
    pub delivered_packets: u64,
    /// Packets offered across all flows.
    pub offered_packets: u64,
    /// Fraction of offered packets delivered.
    pub delivery_ratio: f64,
    /// Mean per-flow goodput (kbit/s).
    pub goodput_kbps: f64,
    /// Total energy spent (J).
    pub energy_total_j: f64,
    /// Energy per delivered bit (µJ/bit).
    pub energy_per_bit_uj: f64,
    /// First battery death (seconds), if any.
    pub first_death_s: Option<f64>,
    /// First network partition (seconds), if any.
    pub first_partition_s: Option<f64>,
    /// `(time_s, nodes_alive)` step curve.
    pub alive_curve: Vec<(f64, u32)>,
    /// Per-flow rows.
    pub flows: Vec<FlowReport>,
    /// Transmit-queue depth histogram.
    pub queue_depth: Vec<QueueDepthBucket>,
    /// Drop-cause breakdown.
    pub drops: Vec<DropReport>,
    /// Flood cost per trigger cause.
    pub floods: Vec<FloodReport>,
    /// Event-stream totals.
    pub events: EventTotals,
}

/// Wall-clock time accounting for one run. Host noise by definition —
/// kept out of [`ScenarioReport`] so deterministic JSON stays
/// deterministic; [`render_markdown`] prints it in its own section.
#[derive(Clone, Debug, Default)]
pub struct TimeBreakdown {
    /// Per-subsystem spans and wall time, plus flood-plane fan-out stats.
    pub time: TimeAccountant,
}

impl ReportRecorder {
    /// Assemble the deterministic report from this recorder plus the
    /// run's harvested [`Metrics`].
    pub fn into_report(
        self,
        scenario: &str,
        transport: TransportKind,
        seed: u64,
        m: &Metrics,
    ) -> ScenarioReport {
        let duration = m.duration_s;
        let mut flows = Vec::new();
        for fm in &m.flows {
            let f = fm.flow as usize;
            let times: &[f64] = self.flow_times.get(f).map(|v| v.as_slice()).unwrap_or(&[]);
            let mut mean_gap = None;
            let mut max_gap = None;
            if times.len() >= 2 {
                let span = times[times.len() - 1] - times[0];
                mean_gap = Some(span / (times.len() - 1) as f64);
                max_gap = times
                    .windows(2)
                    .map(|w| w[1] - w[0])
                    .fold(None, |acc: Option<f64>, g| {
                        Some(acc.map_or(g, |a| a.max(g)))
                    });
            }
            flows.push(FlowReport {
                flow: fm.flow,
                offered_packets: fm.offered_packets,
                delivered_packets: fm.delivered_packets,
                goodput_kbps: fm.goodput_kbps(),
                first_delivery_s: times.first().copied(),
                last_delivery_s: times.last().copied(),
                mean_gap_s: mean_gap,
                max_gap_s: max_gap,
                completed: fm.completed,
                throughput_pps: timeline(times, duration),
            });
        }
        let queue_depth = self
            .queue_depth
            .iter()
            .enumerate()
            .map(|(i, &slots)| QueueDepthBucket {
                depth: if i + 1 == QUEUE_DEPTH_BUCKETS {
                    format!("{i}+")
                } else {
                    format!("{i}")
                },
                slots,
            })
            .collect();
        let drops = DropCause::ALL
            .iter()
            .map(|&c| DropReport {
                cause: c.name().to_string(),
                packets: self.counters.drops[c.index()],
            })
            .collect();
        let floods = FloodCause::ALL
            .iter()
            .map(|&c| FloodReport {
                cause: c.name().to_string(),
                floods: self.flood_count[c.index()],
                views_refreshed: self.flood_views[c.index()],
                sources_repaired: self.flood_sources[c.index()],
                entries_changed: self.flood_entries[c.index()],
            })
            .collect();
        let c = &self.counters;
        ScenarioReport {
            scenario: scenario.to_string(),
            transport: transport_label(transport).to_string(),
            seed,
            duration_s: duration,
            delivered_packets: m.delivered_packets,
            offered_packets: m.flows.iter().map(|f| u64::from(f.offered_packets)).sum(),
            delivery_ratio: m.delivery_ratio(),
            goodput_kbps: m.avg_goodput_kbps(),
            energy_total_j: m.energy_total_j,
            energy_per_bit_uj: m.energy_per_bit_uj(),
            first_death_s: m.first_death_s,
            first_partition_s: m.first_partition_s,
            alive_curve: m.alive_curve.clone(),
            flows,
            queue_depth,
            drops,
            floods,
            events: EventTotals {
                slots: c.slots,
                busy_slots: c.busy_slots,
                sends: c.sends,
                send_failures: c.send_failures,
                deliveries: c.deliveries,
                fresh_deliveries: c.fresh_deliveries,
                attempt_budgets: c.attempt_budgets,
                monitor_samples: c.monitor_samples,
                battery_deaths: c.battery_deaths,
                energy_adverts: c.energy_adverts,
                dynamics_applied: c.dynamics_applied,
                mobility_ticks: c.mobility_ticks,
                total_drops: c.total_drops(),
                total_floods: c.total_floods(),
            },
        }
    }
}

/// Stable lowercase transport label for report keys.
pub fn transport_label(t: TransportKind) -> &'static str {
    match t {
        TransportKind::Jtp => "jtp",
        TransportKind::Jnc => "jnc",
        TransportKind::Tcp => "tcp",
        TransportKind::Atp => "atp",
        TransportKind::Cubic => "cubic",
        TransportKind::Bbr => "bbr",
    }
}

/// Bucket sorted delivery times into [`TIMELINE_WINDOWS`] equal windows
/// over `[0, duration]`, as `(window_end_s, deliveries_per_s)`.
fn timeline(times: &[f64], duration_s: f64) -> Vec<(f64, f64)> {
    if duration_s <= 0.0 {
        return Vec::new();
    }
    let w = duration_s / TIMELINE_WINDOWS as f64;
    let mut counts = [0u64; TIMELINE_WINDOWS];
    for &t in times {
        let i = ((t / w) as usize).min(TIMELINE_WINDOWS - 1);
        counts[i] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| ((i + 1) as f64 * w, n as f64 / w))
        .collect()
}

/// Run one catalog scenario under a full report stack and return the
/// deterministic report plus the (host-dependent) time breakdown.
///
/// Panics on a malformed scenario; [`try_run_report`] reports the
/// [`ConfigError`] instead.
pub fn run_report(sc: &Scenario, transport: TransportKind) -> (ScenarioReport, TimeBreakdown) {
    try_run_report(sc, transport).expect("invalid scenario")
}

/// [`run_report`] with malformed scenarios reported as [`ConfigError`].
pub fn try_run_report(
    sc: &Scenario,
    transport: TransportKind,
) -> Result<(ScenarioReport, TimeBreakdown), ConfigError> {
    let cfg = sc.try_build(transport)?;
    let (m, (rec, mut time), par) =
        crate::runner::run_harvest(&cfg, (ReportRecorder::new(), TimeAccountant::default()))?;
    time.par.merge(par);
    let report = rec.into_report(&sc.name, transport, cfg.seed, &m);
    Ok((report, TimeBreakdown { time }))
}

/// Render a report (plus optional wall-clock accounting) as markdown.
///
/// Everything above the "Time accounting" section is deterministic; that
/// section is explicitly labelled host-dependent.
pub fn render_markdown(r: &ScenarioReport, time: Option<&TimeBreakdown>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Scenario report: {} ({})\n", r.scenario, r.transport);
    let _ = writeln!(out, "seed {}, {:.0} s simulated\n", r.seed, r.duration_s);
    let _ = writeln!(out, "## Summary\n");
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| delivered packets | {} |", r.delivered_packets);
    let _ = writeln!(out, "| offered packets | {} |", r.offered_packets);
    let _ = writeln!(out, "| delivery ratio | {:.4} |", r.delivery_ratio);
    let _ = writeln!(out, "| goodput (kbit/s) | {:.3} |", r.goodput_kbps);
    let _ = writeln!(out, "| energy total (J) | {:.3} |", r.energy_total_j);
    let _ = writeln!(out, "| energy/bit (µJ) | {:.4} |", r.energy_per_bit_uj);
    if let Some(t) = r.first_death_s {
        let _ = writeln!(out, "| first battery death (s) | {t:.1} |");
    }
    if let Some(t) = r.first_partition_s {
        let _ = writeln!(out, "| first partition (s) | {t:.1} |");
    }
    let _ = writeln!(out, "\n## Flows\n");
    let _ = writeln!(
        out,
        "| flow | offered | delivered | goodput kbit/s | first s | last s | mean gap s | max gap s | done |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for f in &r.flows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} | {} | {} | {} | {} | {} |",
            f.flow,
            f.offered_packets,
            f.delivered_packets,
            f.goodput_kbps,
            opt_s(f.first_delivery_s),
            opt_s(f.last_delivery_s),
            opt_s(f.mean_gap_s),
            opt_s(f.max_gap_s),
            if f.completed { "yes" } else { "no" },
        );
    }
    let _ = writeln!(
        out,
        "\n### Throughput timelines (deliveries/s per window)\n"
    );
    for f in &r.flows {
        let cells: Vec<String> = f
            .throughput_pps
            .iter()
            .map(|&(_, pps)| format!("{pps:.1}"))
            .collect();
        let _ = writeln!(out, "* flow {}: {}", f.flow, cells.join(" "));
    }
    let _ = writeln!(out, "\n## Queue depth at slot grants\n");
    let _ = writeln!(out, "| depth | slots |");
    let _ = writeln!(out, "|---|---|");
    for b in &r.queue_depth {
        let _ = writeln!(out, "| {} | {} |", b.depth, b.slots);
    }
    let _ = writeln!(out, "\n## Drops\n");
    let _ = writeln!(out, "| cause | packets |");
    let _ = writeln!(out, "|---|---|");
    for d in &r.drops {
        let _ = writeln!(out, "| {} | {} |", d.cause, d.packets);
    }
    let _ = writeln!(out, "\n## Floods\n");
    let _ = writeln!(
        out,
        "| cause | floods | views refreshed | sources repaired | entries changed |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for fl in &r.floods {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            fl.cause, fl.floods, fl.views_refreshed, fl.sources_repaired, fl.entries_changed,
        );
    }
    if !r.alive_curve.is_empty() {
        let _ = writeln!(out, "\n## Alive curve\n");
        let _ = writeln!(out, "| time s | nodes alive |");
        let _ = writeln!(out, "|---|---|");
        for &(t, n) in &r.alive_curve {
            let _ = writeln!(out, "| {t:.1} | {n} |");
        }
    }
    let e = &r.events;
    let _ = writeln!(out, "\n## Event totals\n");
    let _ = writeln!(out, "| counter | value |");
    let _ = writeln!(out, "|---|---|");
    for (k, v) in [
        ("slots", e.slots),
        ("busy slots", e.busy_slots),
        ("sends", e.sends),
        ("send failures", e.send_failures),
        ("deliveries", e.deliveries),
        ("fresh deliveries", e.fresh_deliveries),
        ("attempt budgets", e.attempt_budgets),
        ("monitor samples", e.monitor_samples),
        ("battery deaths", e.battery_deaths),
        ("energy adverts", e.energy_adverts),
        ("dynamics applied", e.dynamics_applied),
        ("mobility ticks", e.mobility_ticks),
        ("total drops", e.total_drops),
        ("total floods", e.total_floods),
    ] {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    if let Some(tb) = time {
        let t = &tb.time;
        let _ = writeln!(
            out,
            "\n## Time accounting (wall clock — host-dependent, not diffed)\n"
        );
        let _ = writeln!(out, "| subsystem | spans | wall ms |");
        let _ = writeln!(out, "|---|---|---|");
        for &sys in &Subsystem::ALL {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} |",
                sys.name(),
                t.spans(sys),
                t.wall_ns(sys) as f64 / 1e6,
            );
        }
        let _ = writeln!(
            out,
            "\ndispatch total {:.3} ms (flood_plane / geometry_diff are nested \
             sub-spans of their dispatch bucket, not additive)",
            t.dispatch_wall_ns() as f64 / 1e6,
        );
        if t.par.fanouts > 0 {
            let _ = writeln!(
                out,
                "\nflood-plane fan-outs: {} (busy {:.3} ms, critical path {:.3} ms, \
                 speedup bound {:.2}×)",
                t.par.fanouts,
                t.par.busy_ns as f64 / 1e6,
                t.par.critical_ns as f64 / 1e6,
                t.par.speedup_bound(),
            );
        }
    }
    out
}

fn opt_s(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_string(), |t| format!("{t:.2}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn small_scenario() -> Scenario {
        Scenario::catalog()
            .into_iter()
            .find(|s| s.battery.is_none() && s.mobile_mps.is_none())
            .expect("catalog has a static tally-only entry")
    }

    #[test]
    fn report_json_is_deterministic_across_runs() {
        let sc = small_scenario();
        let (a, _) = run_report(&sc, TransportKind::Jtp);
        let (b, _) = run_report(&sc, TransportKind::Jtp);
        let ja = serde_json::to_string(&a).expect("report serialises");
        let jb = serde_json::to_string(&b).expect("report serialises");
        assert_eq!(ja, jb, "report JSON must be byte-identical across runs");
        assert!(ja.contains("\"scenario\""));
    }

    #[test]
    fn report_agrees_with_metrics_and_renders() {
        let sc = small_scenario();
        let cfg = sc.try_build(TransportKind::Jtp).expect("catalog lowers");
        let m = crate::runner::run_experiment(&cfg);
        let (r, time) = run_report(&sc, TransportKind::Jtp);
        assert_eq!(r.delivered_packets, m.delivered_packets);
        assert_eq!(r.events.fresh_deliveries, m.delivered_packets);
        assert_eq!(r.flows.len(), m.flows.len());
        let slot_total: u64 = r.queue_depth.iter().map(|b| b.slots).sum();
        assert_eq!(slot_total, r.events.slots, "histogram covers every slot");
        let drop_total: u64 = r.drops.iter().map(|d| d.packets).sum();
        assert_eq!(drop_total, r.events.total_drops);
        let md = render_markdown(&r, Some(&time));
        assert!(md.contains("## Summary"));
        assert!(md.contains("## Floods"));
        assert!(md.contains("Time accounting"));
        // The deterministic half must not mention wall time.
        let md_plain = render_markdown(&r, None);
        assert!(!md_plain.contains("Time accounting"));
    }

    #[test]
    fn timeline_buckets_cover_the_duration() {
        let times = [0.1, 0.2, 5.0, 9.9];
        let tl = timeline(&times, 10.0);
        assert_eq!(tl.len(), TIMELINE_WINDOWS);
        let total: f64 = tl
            .iter()
            .map(|&(_, pps)| pps * (10.0 / TIMELINE_WINDOWS as f64))
            .sum();
        assert!((total - times.len() as f64).abs() < 1e-9);
        assert!((tl.last().unwrap().0 - 10.0).abs() < 1e-9);
    }
}
