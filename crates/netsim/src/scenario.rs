//! Declarative scenario engine: traffic patterns × substrate dynamics ×
//! topologies, lowered onto [`ExperimentConfig`].
//!
//! The paper's evaluation exercises a handful of fixed topologies and bulk
//! flows; a [`Scenario`] composes richer workloads — constant-bit-rate
//! streams, on-off bursts, many-to-one convergecast, bidirectional
//! cross-traffic — with network dynamics — node failure/recovery churn,
//! partitions via link blackouts, link flapping — over any
//! [`TopologyKind`] (chains, random fields, grids, clusters), and lowers
//! the whole description to a plain [`ExperimentConfig`] that every
//! existing runner, trace and equivalence proof already understands.
//!
//! ```
//! use jtp_netsim::scenario::{DynamicsSpec, Scenario, TrafficPattern};
//! use jtp_netsim::{run_experiment, TopologyKind, TransportKind};
//! use jtp_sim::NodeId;
//!
//! let sc = Scenario::new(
//!     "demo-grid-churn",
//!     TopologyKind::Grid { cols: 3, rows: 3, spacing_m: 80.0 },
//! )
//! .duration_s(400.0)
//! .seed(7)
//! .traffic(TrafficPattern::Cbr {
//!     src: NodeId(0),
//!     dst: NodeId(8),
//!     rate_pps: 1.0,
//!     start_s: 5.0,
//!     duration_s: 60.0,
//!     loss_tolerance: 0.0,
//! })
//! .dynamics(DynamicsSpec::NodeChurn {
//!     node: NodeId(4),
//!     fail_at_s: 20.0,
//!     recover_at_s: 45.0,
//! });
//! let m = run_experiment(&sc.build(TransportKind::Jtp));
//! assert!(m.delivered_packets > 0);
//! ```

use crate::config::{
    ConfigError, DynamicsAction, DynamicsEvent, ExperimentConfig, FlowSpec, RoutingBackendKind,
    TopologyKind, TransportKind,
};
use jtp_mac::DutyCycleConfig;
use jtp_phys::BatteryConfig;
use jtp_sim::{NodeId, SimDuration, SimRng};

/// One declarative workload component. Patterns lower to one or more
/// [`FlowSpec`]s; rates map onto the transport's initial sending rate (the
/// receiver-driven controllers take over from there, so a "CBR" stream is
/// an *offered* constant rate, shaped by the protocol under test).
#[derive(Clone, Debug)]
pub enum TrafficPattern {
    /// A single bulk transfer (the paper's workload).
    Bulk {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Packets to transfer.
        packets: u32,
        /// Start time (seconds).
        start_s: f64,
        /// End-to-end loss tolerance (JTP only; forced to 0 for TCP/ATP).
        loss_tolerance: f64,
    },
    /// A constant-bit-rate stream: `rate_pps · duration_s` packets
    /// offered at `rate_pps` from the first packet on.
    Cbr {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Offered rate in packets per second.
        rate_pps: f64,
        /// Start time (seconds).
        start_s: f64,
        /// Stream length (seconds).
        duration_s: f64,
        /// End-to-end loss tolerance (JTP only; forced to 0 for TCP/ATP).
        loss_tolerance: f64,
    },
    /// Periodic bursts: `cycles` bursts of `rate_pps · on_s` packets,
    /// `on_s + off_s` apart, each arriving "hot" at `rate_pps`.
    OnOff {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Burst rate in packets per second.
        rate_pps: f64,
        /// Burst length (seconds).
        on_s: f64,
        /// Silence between bursts (seconds).
        off_s: f64,
        /// First burst start (seconds).
        start_s: f64,
        /// Number of bursts.
        cycles: u32,
        /// End-to-end loss tolerance (JTP only; forced to 0 for TCP/ATP).
        loss_tolerance: f64,
    },
    /// Many-to-one: every source sends `packets` to the common sink,
    /// starts staggered by `stagger_s` (sensor-style convergecast).
    Convergecast {
        /// The common destination.
        sink: NodeId,
        /// Sending nodes.
        sources: Vec<NodeId>,
        /// Packets per source.
        packets: u32,
        /// First source's start time (seconds).
        start_s: f64,
        /// Start offset between consecutive sources (seconds).
        stagger_s: f64,
    },
    /// Bidirectional cross-traffic: simultaneous equal transfers `a → b`
    /// and `b → a` (data of each direction competes with the other's
    /// feedback on every shared slot).
    CrossTraffic {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Packets per direction.
        packets: u32,
        /// Start time of both directions (seconds).
        start_s: f64,
    },
    /// A Poisson flow-arrival process: `flows` transfers whose start
    /// times form a Poisson process of rate `rate_per_s` from `start_s`
    /// on, each between a uniformly drawn distinct src/dst pair. Drawn
    /// from the scenario seed's own substream (in-crate xoshiro), so the
    /// arrival pattern is independent of channel/mobility randomness and
    /// identical across the transports being compared.
    Poisson {
        /// Number of flow arrivals.
        flows: u32,
        /// Arrival rate (flows per second).
        rate_per_s: f64,
        /// Packets per flow.
        packets: u32,
        /// Process start time (seconds).
        start_s: f64,
        /// End-to-end loss tolerance (JTP only; forced to 0 for TCP/ATP).
        loss_tolerance: f64,
    },
    /// A flash crowd: burst *events* arrive as a Poisson process of rate
    /// `burst_rate_per_s`, and each event spawns `flows_per_burst` short
    /// flows **at the same instant** between uniformly drawn distinct
    /// endpoint pairs — the synchronized-demand spike that exposes slow
    /// ramp-up and unfair convergence in congestion controllers. Drawn
    /// from the `"scenario-flash"` substream of the scenario seed, so the
    /// burst pattern is identical across the transports being compared.
    FlashCrowd {
        /// Number of burst events.
        bursts: u32,
        /// Burst-event arrival rate (events per second).
        burst_rate_per_s: f64,
        /// Simultaneous flows per burst event.
        flows_per_burst: u32,
        /// Packets per flow (flash flows are short).
        packets: u32,
        /// Process start time (seconds).
        start_s: f64,
        /// End-to-end loss tolerance (JTP only; forced to 0 for baselines).
        loss_tolerance: f64,
    },
    /// Heavy-tailed transfer sizes: `flows` transfers whose sizes follow a
    /// bounded Pareto distribution with shape `alpha` on
    /// `[min_packets, max_packets]` (inverse-CDF sampled — most flows are
    /// mice, a few are elephants), each starting uniformly inside
    /// `[start_s, start_s + window_s)` between uniformly drawn distinct
    /// endpoint pairs. Drawn from the `"scenario-pareto"` substream.
    ParetoBulk {
        /// Number of transfers.
        flows: u32,
        /// Pareto shape (smaller ⇒ heavier tail; 1.1–1.5 is web-like).
        alpha: f64,
        /// Smallest transfer (packets).
        min_packets: u32,
        /// Largest transfer (packets).
        max_packets: u32,
        /// Window start (seconds).
        start_s: f64,
        /// Arrival window length (seconds).
        window_s: f64,
        /// End-to-end loss tolerance (JTP only; forced to 0 for baselines).
        loss_tolerance: f64,
    },
    /// An incast storm: every source fires `packets` at the common sink
    /// **simultaneously**, in `waves` synchronized waves `period_s` apart
    /// — the datacenter-style fan-in that collapses the sink's last hop.
    /// Fully deterministic (no substream): the synchronization *is* the
    /// workload. Always fully reliable, like convergecast.
    Incast {
        /// The common destination.
        sink: NodeId,
        /// Sending nodes (all start at once).
        sources: Vec<NodeId>,
        /// Packets per source per wave.
        packets: u32,
        /// First wave start (seconds).
        start_s: f64,
        /// Number of synchronized waves.
        waves: u32,
        /// Wave spacing (seconds; must be positive when `waves > 1`).
        period_s: f64,
    },
}

impl TrafficPattern {
    /// The pattern's end-to-end loss tolerance, for patterns that carry
    /// one (`None` for convergecast and cross-traffic, which are always
    /// fully reliable).
    pub fn loss_tolerance(&self) -> Option<f64> {
        match self {
            TrafficPattern::Bulk { loss_tolerance, .. }
            | TrafficPattern::Cbr { loss_tolerance, .. }
            | TrafficPattern::OnOff { loss_tolerance, .. }
            | TrafficPattern::Poisson { loss_tolerance, .. }
            | TrafficPattern::FlashCrowd { loss_tolerance, .. }
            | TrafficPattern::ParetoBulk { loss_tolerance, .. } => Some(*loss_tolerance),
            TrafficPattern::Convergecast { .. }
            | TrafficPattern::CrossTraffic { .. }
            | TrafficPattern::Incast { .. } => None,
        }
    }

    /// Append this pattern's flows. `force_reliable` clamps loss
    /// tolerance to 0 (TCP/ATP support nothing else); `n_nodes`, `seed`
    /// and `index` feed the stochastic patterns (Poisson arrivals draw
    /// endpoints over the topology from a per-pattern substream).
    fn lower(
        &self,
        flows: &mut Vec<FlowSpec>,
        force_reliable: bool,
        n_nodes: usize,
        seed: u64,
        index: usize,
    ) {
        let lt = |x: f64| if force_reliable { 0.0 } else { x };
        let mut push = |src: NodeId, dst: NodeId, start_s: f64, packets: u32, tol: f64, rate| {
            flows.push(FlowSpec {
                src,
                dst,
                start: SimDuration::from_secs_f64(start_s),
                packets: packets.max(1),
                loss_tolerance: tol,
                initial_rate_pps: rate,
            });
        };
        match self {
            TrafficPattern::Bulk {
                src,
                dst,
                packets,
                start_s,
                loss_tolerance,
            } => push(*src, *dst, *start_s, *packets, lt(*loss_tolerance), None),
            TrafficPattern::Cbr {
                src,
                dst,
                rate_pps,
                start_s,
                duration_s,
                loss_tolerance,
            } => push(
                *src,
                *dst,
                *start_s,
                (rate_pps * duration_s).round() as u32,
                lt(*loss_tolerance),
                Some(*rate_pps),
            ),
            TrafficPattern::OnOff {
                src,
                dst,
                rate_pps,
                on_s,
                off_s,
                start_s,
                cycles,
                loss_tolerance,
            } => {
                for i in 0..*cycles {
                    push(
                        *src,
                        *dst,
                        start_s + i as f64 * (on_s + off_s),
                        (rate_pps * on_s).round() as u32,
                        lt(*loss_tolerance),
                        Some(*rate_pps),
                    );
                }
            }
            TrafficPattern::Convergecast {
                sink,
                sources,
                packets,
                start_s,
                stagger_s,
            } => {
                for (i, src) in sources.iter().enumerate() {
                    push(
                        *src,
                        *sink,
                        start_s + i as f64 * stagger_s,
                        *packets,
                        0.0,
                        None,
                    );
                }
            }
            TrafficPattern::CrossTraffic {
                a,
                b,
                packets,
                start_s,
            } => {
                push(*a, *b, *start_s, *packets, 0.0, None);
                push(*b, *a, *start_s, *packets, 0.0, None);
            }
            TrafficPattern::Poisson {
                flows: n_flows,
                rate_per_s,
                packets,
                start_s,
                loss_tolerance,
            } => {
                assert!(*rate_per_s > 0.0, "Poisson rate must be positive");
                assert!(n_nodes >= 2, "Poisson flows need two endpoints");
                let mut rng = SimRng::derive_indexed(seed, "scenario-poisson", index as u64);
                let mut at = *start_s;
                for _ in 0..*n_flows {
                    at += rng.exponential(1.0 / rate_per_s);
                    let src = rng.below(n_nodes);
                    let dst = loop {
                        let d = rng.below(n_nodes);
                        if d != src {
                            break d;
                        }
                    };
                    push(
                        NodeId(src as u32),
                        NodeId(dst as u32),
                        at,
                        *packets,
                        lt(*loss_tolerance),
                        None,
                    );
                }
            }
            TrafficPattern::FlashCrowd {
                bursts,
                burst_rate_per_s,
                flows_per_burst,
                packets,
                start_s,
                loss_tolerance,
            } => {
                assert!(*burst_rate_per_s > 0.0, "flash-crowd rate must be positive");
                assert!(n_nodes >= 2, "flash-crowd flows need two endpoints");
                let mut rng = SimRng::derive_indexed(seed, "scenario-flash", index as u64);
                let mut at = *start_s;
                for _ in 0..*bursts {
                    at += rng.exponential(1.0 / burst_rate_per_s);
                    for _ in 0..*flows_per_burst {
                        let src = rng.below(n_nodes);
                        let dst = loop {
                            let d = rng.below(n_nodes);
                            if d != src {
                                break d;
                            }
                        };
                        push(
                            NodeId(src as u32),
                            NodeId(dst as u32),
                            at,
                            *packets,
                            lt(*loss_tolerance),
                            None,
                        );
                    }
                }
            }
            TrafficPattern::ParetoBulk {
                flows: n_flows,
                alpha,
                min_packets,
                max_packets,
                start_s,
                window_s,
                loss_tolerance,
            } => {
                assert!(*alpha > 0.0, "Pareto shape must be positive");
                assert!(
                    1 <= *min_packets && min_packets <= max_packets,
                    "Pareto bounds must satisfy 1 <= min <= max"
                );
                assert!(n_nodes >= 2, "Pareto flows need two endpoints");
                let mut rng = SimRng::derive_indexed(seed, "scenario-pareto", index as u64);
                let (l, h) = (*min_packets as f64, *max_packets as f64);
                for _ in 0..*n_flows {
                    let at = start_s + rng.uniform(0.0, window_s.max(0.0));
                    // Bounded Pareto via inverse CDF:
                    //   x = L / (1 − U·(1 − (L/H)^α))^(1/α),  U ∈ [0, 1)
                    // U = 0 ⇒ L (a mouse), U → 1 ⇒ H (an elephant).
                    let u = rng.f64();
                    let x = l / (1.0 - u * (1.0 - (l / h).powf(*alpha))).powf(1.0 / alpha);
                    let size = (x.round() as u32).clamp(*min_packets, *max_packets);
                    let src = rng.below(n_nodes);
                    let dst = loop {
                        let d = rng.below(n_nodes);
                        if d != src {
                            break d;
                        }
                    };
                    push(
                        NodeId(src as u32),
                        NodeId(dst as u32),
                        at,
                        size,
                        lt(*loss_tolerance),
                        None,
                    );
                }
            }
            TrafficPattern::Incast {
                sink,
                sources,
                packets,
                start_s,
                waves,
                period_s,
            } => {
                for w in 0..*waves {
                    let at = start_s + w as f64 * period_s;
                    for src in sources {
                        push(*src, *sink, at, *packets, 0.0, None);
                    }
                }
            }
        }
    }
}

/// One declarative substrate-dynamics component, lowered to scheduled
/// [`DynamicsEvent`]s.
#[derive(Clone, Debug)]
pub enum DynamicsSpec {
    /// The node crashes at `fail_at_s` (losing its queue) and recovers —
    /// empty-handed — at `recover_at_s`.
    NodeChurn {
        /// The churning node.
        node: NodeId,
        /// Crash time (seconds).
        fail_at_s: f64,
        /// Recovery time (seconds).
        recover_at_s: f64,
    },
    /// A clean partition: every link between `group` and the rest blacks
    /// out during `[start_s, end_s)`.
    Partition {
        /// One side of the cut.
        group: Vec<NodeId>,
        /// Blackout start (seconds).
        start_s: f64,
        /// Blackout end (seconds).
        end_s: f64,
    },
    /// A correlated area failure at `at_s`: every node within `radius_m`
    /// of `(x_m, y_m)` — wherever it has moved to by then — crashes at
    /// once (ROADMAP's "all nodes in a disc"). Composes naturally with
    /// battery death: the blast prunes the topology, survivors inherit
    /// the forwarding load and drain faster.
    AreaFailure {
        /// Blast centre x (metres).
        x_m: f64,
        /// Blast centre y (metres).
        y_m: f64,
        /// Blast radius (metres).
        radius_m: f64,
        /// Blast time (seconds).
        at_s: f64,
    },
    /// The link `{a, b}` flaps: `cycles` blackouts of `down_s` seconds,
    /// starting `period_s` apart from `first_down_s` on.
    LinkFlap {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// First blackout start (seconds).
        first_down_s: f64,
        /// Blackout length (seconds).
        down_s: f64,
        /// Blackout spacing (seconds, must exceed `down_s`).
        period_s: f64,
        /// Number of blackouts.
        cycles: u32,
    },
}

impl DynamicsSpec {
    /// Append this spec's scheduled events.
    fn lower(&self, out: &mut Vec<DynamicsEvent>) {
        match self {
            DynamicsSpec::NodeChurn {
                node,
                fail_at_s,
                recover_at_s,
            } => {
                assert!(fail_at_s < recover_at_s, "churn must fail before healing");
                out.push(DynamicsEvent::at_s(
                    *fail_at_s,
                    DynamicsAction::NodeDown(*node),
                ));
                out.push(DynamicsEvent::at_s(
                    *recover_at_s,
                    DynamicsAction::NodeUp(*node),
                ));
            }
            DynamicsSpec::Partition {
                group,
                start_s,
                end_s,
            } => {
                assert!(start_s < end_s, "partition must start before healing");
                out.push(DynamicsEvent::at_s(
                    *start_s,
                    DynamicsAction::PartitionStart(group.clone()),
                ));
                out.push(DynamicsEvent::at_s(*end_s, DynamicsAction::PartitionEnd));
            }
            DynamicsSpec::AreaFailure {
                x_m,
                y_m,
                radius_m,
                at_s,
            } => {
                out.push(DynamicsEvent::at_s(
                    *at_s,
                    DynamicsAction::AreaFail {
                        x_m: *x_m,
                        y_m: *y_m,
                        radius_m: *radius_m,
                    },
                ));
            }
            DynamicsSpec::LinkFlap {
                a,
                b,
                first_down_s,
                down_s,
                period_s,
                cycles,
            } => {
                assert!(down_s < period_s, "flap duty cycle must leave up-time");
                for i in 0..*cycles {
                    let t = first_down_s + i as f64 * period_s;
                    out.push(DynamicsEvent::at_s(t, DynamicsAction::LinkDown(*a, *b)));
                    out.push(DynamicsEvent::at_s(
                        t + down_s,
                        DynamicsAction::LinkUp(*a, *b),
                    ));
                }
            }
        }
    }
}

/// A complete declarative scenario. Build one with [`Scenario::new`] and
/// the chaining methods, then lower it with [`Scenario::build`] for any
/// transport — the same scenario sweeps cleanly across JTP/TCP/ATP (loss
/// tolerances collapse to full reliability where the transport demands
/// it).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable identifier (used by golden-trace digests and bench tables).
    pub name: String,
    /// Node placement.
    pub topology: TopologyKind,
    /// Workload components.
    pub traffic: Vec<TrafficPattern>,
    /// Substrate dynamics components.
    pub dynamics: Vec<DynamicsSpec>,
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Random-waypoint speed (None = static).
    pub mobile_mps: Option<f64>,
    /// Finite per-node energy budgets (None = tally-only energy monitor).
    pub battery: Option<BatteryConfig>,
    /// Duty-cycled sleep schedule (None = always listening).
    pub duty_cycle: Option<DutyCycleConfig>,
    /// Route on residual-energy-weighted shortest paths (needs a battery).
    pub energy_routing: bool,
    /// Flood-plane worker threads (1 = sequential). A pure performance
    /// knob: every value produces byte-identical results, so the catalog
    /// keeps the default and goldens never depend on it.
    pub workers: usize,
    /// Which routing backend maintains per-node views. `Exact` (the
    /// default) keeps every historical golden byte-identical; the
    /// `xl` catalog switches to `Hierarchical` for sub-quadratic
    /// routing state at 1000+ nodes.
    pub routing_backend: RoutingBackendKind,
    /// TDMA slot length override in milliseconds (None = the engine
    /// default, 25 ms). A 1000+-node frame at the default slot spans
    /// ~26 s — per-node capacity ≈ 0.04 pps, so no multi-hop flow can
    /// complete inside a realistic horizon; the `xl` catalog shortens
    /// the slot to keep the frame (and thus hop latency) around a
    /// second. Historical catalog entries leave this `None` so their
    /// goldens never move.
    pub slot_ms: Option<u64>,
}

impl Scenario {
    /// A scenario skeleton: static topology, no traffic, 600 s, seed 1.
    pub fn new(name: &str, topology: TopologyKind) -> Self {
        Scenario {
            name: name.to_string(),
            topology,
            traffic: Vec::new(),
            dynamics: Vec::new(),
            duration_s: 600.0,
            seed: 1,
            mobile_mps: None,
            battery: None,
            duty_cycle: None,
            energy_routing: false,
            workers: 1,
            routing_backend: RoutingBackendKind::Exact,
            slot_ms: None,
        }
    }

    /// Add a traffic pattern.
    pub fn traffic(mut self, t: TrafficPattern) -> Self {
        self.traffic.push(t);
        self
    }

    /// Add a dynamics component.
    pub fn dynamics(mut self, d: DynamicsSpec) -> Self {
        self.dynamics.push(d);
        self
    }

    /// Set the simulated duration.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.duration_s = s;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable random-waypoint mobility at the paper's parameters.
    pub fn mobile(mut self, speed_mps: f64) -> Self {
        self.mobile_mps = Some(speed_mps);
        self
    }

    /// Give every node a finite battery.
    pub fn battery(mut self, battery: BatteryConfig) -> Self {
        self.battery = Some(battery);
        self
    }

    /// Put every node on a duty-cycled sleep schedule.
    pub fn duty_cycle(mut self, duty: DutyCycleConfig) -> Self {
        self.duty_cycle = Some(duty);
        self
    }

    /// Route on residual-energy-weighted shortest paths (default
    /// parameters; requires [`Scenario::battery`]).
    pub fn energy_routing(mut self) -> Self {
        self.energy_routing = true;
        self
    }

    /// Run the flood plane on `workers` threads (1 = sequential). Pure
    /// performance knob — results are byte-identical for every value.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Select the routing backend (see [`RoutingBackendKind`]).
    pub fn routing_backend(mut self, kind: RoutingBackendKind) -> Self {
        self.routing_backend = kind;
        self
    }

    /// Override the TDMA slot length (milliseconds, must be positive —
    /// enforced by [`ExperimentConfig::validate`] at lowering time).
    pub fn slot_ms(mut self, ms: u64) -> Self {
        self.slot_ms = Some(ms);
        self
    }

    /// Lower onto a validated [`ExperimentConfig`] for `transport`.
    ///
    /// Panics if the scenario is malformed — the convenience wrapper for
    /// hand-written scenarios that are supposed to be correct. Generated
    /// or untrusted scenarios should use [`Scenario::try_build`].
    pub fn build(&self, transport: TransportKind) -> ExperimentConfig {
        self.try_build(transport)
            .unwrap_or_else(|e| panic!("scenario {} lowers invalid: {e}", self.name))
    }

    /// Lower onto a validated [`ExperimentConfig`] for `transport`,
    /// reporting malformed scenarios as [`ConfigError`] instead of
    /// panicking. Scenario-level inconsistencies (unordered churn times,
    /// flap duty cycles with no up-time, non-positive Poisson rates)
    /// surface as [`ConfigError::Scenario`]; everything else funnels
    /// through [`ExperimentConfig::validate`].
    pub fn try_build(&self, transport: TransportKind) -> Result<ExperimentConfig, ConfigError> {
        self.validate_specs()?;
        let mut cfg = ExperimentConfig::with_topology(self.topology.clone())
            .transport(transport)
            .duration_s(self.duration_s)
            .seed(self.seed);
        if let Some(s) = self.mobile_mps {
            cfg = cfg.mobile(s);
        }
        if let Some(b) = self.battery {
            cfg = cfg.battery(b);
        }
        if let Some(d) = self.duty_cycle {
            cfg = cfg.duty_cycle(d);
        }
        if self.energy_routing {
            cfg = cfg.energy_aware_routing();
        }
        cfg = cfg.workers(self.workers);
        cfg = cfg.routing_backend(self.routing_backend);
        if let Some(ms) = self.slot_ms {
            cfg.slot = SimDuration::from_millis(ms);
        }
        let n_nodes = self.topology.node_count();
        let force_reliable = transport.requires_full_reliability();
        for (i, t) in self.traffic.iter().enumerate() {
            t.lower(&mut cfg.flows, force_reliable, n_nodes, self.seed, i);
        }
        for d in &self.dynamics {
            d.lower(&mut cfg.dynamics);
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Scenario-level sanity: the declarative fields the lowering step
    /// consumes before [`ExperimentConfig::validate`] ever sees the
    /// result. Ordering checks are deliberately negated (`!(a < b)`, not
    /// `a >= b`) so NaN input falls into the rejecting branch.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn validate_specs(&self) -> Result<(), ConfigError> {
        let err = |reason: String| ConfigError::Scenario {
            name: self.name.clone(),
            reason,
        };
        // Guards the Poisson endpoint-draw loop, which needs two distinct
        // nodes to terminate.
        if self.topology.node_count() < 2 {
            return Err(err(format!(
                "need at least source and destination (got {} nodes)",
                self.topology.node_count()
            )));
        }
        for (i, t) in self.traffic.iter().enumerate() {
            if let TrafficPattern::Poisson { rate_per_s, .. } = t {
                if !(rate_per_s.is_finite() && *rate_per_s > 0.0) {
                    return Err(err(format!(
                        "traffic {i}: Poisson rate must be finite and positive \
                         (got {rate_per_s} flows/s)"
                    )));
                }
            }
            if let TrafficPattern::FlashCrowd {
                burst_rate_per_s, ..
            } = t
            {
                if !(burst_rate_per_s.is_finite() && *burst_rate_per_s > 0.0) {
                    return Err(err(format!(
                        "traffic {i}: flash-crowd burst rate must be finite and \
                         positive (got {burst_rate_per_s} events/s)"
                    )));
                }
            }
            if let TrafficPattern::ParetoBulk {
                alpha,
                min_packets,
                max_packets,
                window_s,
                ..
            } = t
            {
                if !(alpha.is_finite() && *alpha > 0.0) {
                    return Err(err(format!(
                        "traffic {i}: Pareto shape must be finite and positive \
                         (got {alpha})"
                    )));
                }
                if *min_packets < 1 || min_packets > max_packets {
                    return Err(err(format!(
                        "traffic {i}: Pareto bounds must satisfy 1 <= min <= max \
                         (got [{min_packets}, {max_packets}])"
                    )));
                }
                if !(window_s.is_finite() && *window_s >= 0.0) {
                    return Err(err(format!(
                        "traffic {i}: Pareto arrival window must be finite and \
                         non-negative (got {window_s} s)"
                    )));
                }
            }
            if let TrafficPattern::Incast {
                sources,
                waves,
                period_s,
                ..
            } = t
            {
                if sources.is_empty() {
                    return Err(err(format!("traffic {i}: incast needs sources")));
                }
                if *waves > 1 && !(period_s.is_finite() && *period_s > 0.0) {
                    return Err(err(format!(
                        "traffic {i}: incast wave period must be finite and positive \
                         (got {period_s} s for {waves} waves)"
                    )));
                }
            }
            // Checked here, not only in cfg.validate(): the lowering
            // forces loss tolerance to 0 for TCP/ATP, which would
            // otherwise *silently launder* an out-of-domain value
            // (first caught by the fuzzer: tolerance 1.5 under Tcp).
            if let Some(lt) = t.loss_tolerance() {
                if !(0.0..=1.0).contains(&lt) {
                    return Err(err(format!(
                        "traffic {i}: loss tolerance {lt} outside [0, 1]"
                    )));
                }
            }
        }
        for (i, d) in self.dynamics.iter().enumerate() {
            match d {
                DynamicsSpec::NodeChurn {
                    fail_at_s,
                    recover_at_s,
                    ..
                } => {
                    if !(fail_at_s < recover_at_s) {
                        return Err(err(format!(
                            "dynamics {i}: churn must fail (at {fail_at_s} s) before \
                             healing (at {recover_at_s} s)"
                        )));
                    }
                }
                DynamicsSpec::Partition { start_s, end_s, .. } => {
                    if !(start_s < end_s) {
                        return Err(err(format!(
                            "dynamics {i}: partition must start (at {start_s} s) before \
                             healing (at {end_s} s)"
                        )));
                    }
                }
                DynamicsSpec::LinkFlap {
                    down_s, period_s, ..
                } => {
                    if !(*down_s > 0.0 && down_s < period_s) {
                        return Err(err(format!(
                            "dynamics {i}: flap down-time ({down_s} s) must be positive \
                             and below the period ({period_s} s)"
                        )));
                    }
                }
                DynamicsSpec::AreaFailure { .. } => {} // checked by cfg.validate()
            }
        }
        Ok(())
    }

    /// The canonical scenario catalog: one entry per workload/dynamics/
    /// topology family. The golden-trace regression tests pin each
    /// entry's JTP metrics byte-for-byte, and `scenario_matrix` sweeps
    /// the grid across transports.
    pub fn catalog() -> Vec<Scenario> {
        vec![
            Scenario::new(
                "chain-bulk",
                TopologyKind::Linear {
                    n: 6,
                    spacing_m: 55.0,
                },
            )
            .duration_s(700.0)
            .seed(101)
            .traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(5),
                packets: 120,
                start_s: 5.0,
                loss_tolerance: 0.0,
            }),
            Scenario::new(
                "chain-flap",
                TopologyKind::Linear {
                    n: 7,
                    spacing_m: 55.0,
                },
            )
            .duration_s(900.0)
            .seed(102)
            .traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(6),
                packets: 90,
                start_s: 5.0,
                loss_tolerance: 0.0,
            })
            .dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(2),
                b: NodeId(3),
                first_down_s: 30.0,
                down_s: 10.0,
                period_s: 60.0,
                cycles: 5,
            }),
            Scenario::new(
                "grid-cross",
                TopologyKind::Grid {
                    cols: 4,
                    rows: 4,
                    spacing_m: 80.0,
                },
            )
            .duration_s(900.0)
            .seed(103)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(15),
                packets: 70,
                start_s: 5.0,
            })
            .traffic(TrafficPattern::Bulk {
                src: NodeId(3),
                dst: NodeId(12),
                packets: 50,
                start_s: 20.0,
                loss_tolerance: 0.0,
            }),
            Scenario::new(
                "grid-churn-cbr",
                TopologyKind::Grid {
                    cols: 4,
                    rows: 4,
                    spacing_m: 80.0,
                },
            )
            .duration_s(700.0)
            .seed(104)
            .traffic(TrafficPattern::Cbr {
                src: NodeId(0),
                dst: NodeId(15),
                rate_pps: 1.5,
                start_s: 10.0,
                duration_s: 120.0,
                loss_tolerance: 0.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(5),
                fail_at_s: 40.0,
                recover_at_s: 90.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(10),
                fail_at_s: 60.0,
                recover_at_s: 120.0,
            }),
            Scenario::new(
                "chain-onoff",
                TopologyKind::Linear {
                    n: 8,
                    spacing_m: 55.0,
                },
            )
            .duration_s(800.0)
            .seed(105)
            .traffic(TrafficPattern::OnOff {
                src: NodeId(0),
                dst: NodeId(7),
                rate_pps: 3.0,
                on_s: 20.0,
                off_s: 40.0,
                start_s: 10.0,
                cycles: 4,
                loss_tolerance: 0.0,
            }),
            Scenario::new(
                "random-convergecast",
                TopologyKind::Random {
                    n: 16,
                    field_side_m: 240.0,
                },
            )
            .duration_s(900.0)
            .seed(106)
            .traffic(TrafficPattern::Convergecast {
                sink: NodeId(0),
                sources: vec![NodeId(3), NodeId(7), NodeId(11), NodeId(14), NodeId(15)],
                packets: 35,
                start_s: 5.0,
                stagger_s: 4.0,
            }),
            Scenario::new(
                "random-partition",
                TopologyKind::Random {
                    n: 14,
                    field_side_m: 225.0,
                },
            )
            .duration_s(900.0)
            .seed(107)
            .traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(13),
                packets: 90,
                start_s: 5.0,
                loss_tolerance: 0.0,
            })
            .dynamics(DynamicsSpec::Partition {
                group: (0..7).map(NodeId).collect(),
                start_s: 60.0,
                end_s: 150.0,
            }),
            Scenario::new(
                "clustered-onoff-cross",
                TopologyKind::Clustered {
                    clusters: 3,
                    per_cluster: 4,
                    spread_m: 25.0,
                    cluster_spacing_m: 90.0,
                },
            )
            .duration_s(900.0)
            .seed(108)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(11),
                packets: 50,
                start_s: 5.0,
            })
            .traffic(TrafficPattern::OnOff {
                src: NodeId(4),
                dst: NodeId(8),
                rate_pps: 2.0,
                on_s: 15.0,
                off_s: 45.0,
                start_s: 30.0,
                cycles: 3,
                loss_tolerance: 0.0,
            }),
            // ---- lifetime family: finite batteries, nodes die ----
            Scenario::new(
                "grid-lifetime-race",
                TopologyKind::Grid {
                    cols: 4,
                    rows: 4,
                    spacing_m: 80.0,
                },
            )
            .duration_s(900.0)
            .seed(109)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(15),
                // Effectively unbounded: the transfer outlives the
                // batteries, so the run measures lifetime, not completion.
                packets: 50_000,
                start_s: 5.0,
            })
            .battery(BatteryConfig::javelen_small())
            .energy_routing(),
            Scenario::new(
                "grid-duty-cycle",
                TopologyKind::Grid {
                    cols: 3,
                    rows: 3,
                    spacing_m: 80.0,
                },
            )
            .duration_s(900.0)
            .seed(110)
            .traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(8),
                // Outlives the batteries (see grid-lifetime-race).
                packets: 50_000,
                start_s: 5.0,
                loss_tolerance: 0.0,
            })
            .battery(BatteryConfig {
                capacity_j: 0.45,
                ..BatteryConfig::javelen_small()
            })
            .duty_cycle(DutyCycleConfig::half()),
            Scenario::new(
                "chain-poisson-lifetime",
                TopologyKind::Linear {
                    n: 7,
                    spacing_m: 55.0,
                },
            )
            .duration_s(900.0)
            .seed(111)
            .traffic(TrafficPattern::Poisson {
                flows: 6,
                rate_per_s: 0.02,
                packets: 15,
                start_s: 5.0,
                loss_tolerance: 0.0,
            })
            // Small enough that relays die (~250 s) while Poisson
            // arrivals are still coming: late flows meet a dying network.
            .battery(BatteryConfig {
                capacity_j: 0.25,
                ..BatteryConfig::javelen_small()
            }),
            // ---- scale family: 100–144-node grids and clusters. The
            // per-node TDMA capacity shrinks with n (one slot per frame),
            // so workloads are sized in tens of packets; what these
            // entries exercise is the *engine* — incremental truth
            // rebuilds, incremental weighted APSP and bounded battery
            // prediction keep per-event cost flat where the from-scratch
            // paths collapsed past 16 nodes (see BENCH_engine.json's
            // "scale" section). ----
            Scenario::new(
                "grid100-churn-cross",
                TopologyKind::Grid {
                    cols: 10,
                    rows: 10,
                    spacing_m: 80.0,
                },
            )
            .duration_s(600.0)
            .seed(112)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(99),
                packets: 40,
                start_s: 5.0,
            })
            .traffic(TrafficPattern::Cbr {
                src: NodeId(9),
                dst: NodeId(90),
                rate_pps: 0.3,
                start_s: 20.0,
                duration_s: 100.0,
                loss_tolerance: 0.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(44),
                fail_at_s: 60.0,
                recover_at_s: 180.0,
            })
            .dynamics(DynamicsSpec::AreaFailure {
                // Mid-grid blast: nodes around (4,5)–(5,5) crash; the
                // cross-flows route around the hole.
                x_m: 360.0,
                y_m: 400.0,
                radius_m: 90.0,
                at_s: 240.0,
            }),
            Scenario::new(
                "clustered120-convergecast",
                TopologyKind::Clustered {
                    clusters: 8,
                    per_cluster: 15,
                    spread_m: 25.0,
                    cluster_spacing_m: 90.0,
                },
            )
            .duration_s(600.0)
            .seed(113)
            .traffic(TrafficPattern::Convergecast {
                sink: NodeId(0),
                sources: vec![
                    NodeId(20),
                    NodeId(41),
                    NodeId(62),
                    NodeId(83),
                    NodeId(104),
                    NodeId(119),
                ],
                packets: 12,
                start_s: 5.0,
                stagger_s: 6.0,
            })
            .dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(0),
                b: NodeId(1),
                first_down_s: 40.0,
                down_s: 15.0,
                period_s: 90.0,
                cycles: 4,
            }),
            Scenario::new(
                "grid121-lifetime",
                TopologyKind::Grid {
                    cols: 11,
                    rows: 11,
                    spacing_m: 80.0,
                },
            )
            .duration_s(900.0)
            .seed(114)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(120),
                // Effectively unbounded: the run measures lifetime. At
                // 121 nodes a frame is ~3 s, so the idle draw alone kills
                // the javelen_small battery at ~600 s — inside the
                // horizon, with relays dying earlier under load.
                packets: 50_000,
                start_s: 5.0,
            })
            .battery(BatteryConfig::javelen_small())
            .energy_routing(),
            // ---- mobile scale family: 100+-node topologies where every
            // node moves. What these entries exercise is the mobility
            // tentpole — spatial-grid neighbour discovery, diffed
            // geometry application and the affected-region BFS /
            // column-incremental next-hop repair keep the per-tick cost
            // proportional to the links that actually flipped (see
            // BENCH_engine.json's "mobility" section); the legacy
            // brute-force path stays byte-identical via
            // `incremental_rebuilds = false`. ----
            Scenario::new(
                "grid100-waypoint-cbr",
                TopologyKind::Grid {
                    cols: 10,
                    rows: 10,
                    spacing_m: 80.0,
                },
            )
            .duration_s(600.0)
            .seed(115)
            .mobile(1.0)
            // Few-hop pairs: at 100 nodes a frame is 2.5 s, so the
            // workload is sized to the per-node TDMA capacity (~0.4 pps)
            // and to path lengths mobility can keep re-forming — what
            // the entry exercises is the per-tick engine, not an
            // 18-hop corner-to-corner miracle.
            .traffic(TrafficPattern::Cbr {
                src: NodeId(0),
                dst: NodeId(22),
                rate_pps: 0.2,
                start_s: 10.0,
                duration_s: 120.0,
                loss_tolerance: 0.0,
            })
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(45),
                b: NodeId(48),
                packets: 30,
                start_s: 5.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(46),
                fail_at_s: 90.0,
                recover_at_s: 200.0,
            }),
            Scenario::new(
                "clustered120-mobile-lifetime",
                TopologyKind::Clustered {
                    clusters: 8,
                    per_cluster: 15,
                    spread_m: 25.0,
                    cluster_spacing_m: 90.0,
                },
            )
            .duration_s(600.0)
            .seed(116)
            .mobile(1.0)
            .traffic(TrafficPattern::CrossTraffic {
                a: NodeId(0),
                b: NodeId(119),
                // Effectively unbounded: the run measures lifetime under
                // mobility — relays drift, routes re-form, batteries die.
                packets: 50_000,
                start_s: 5.0,
            })
            // At 120 nodes a frame is 3 s; 0.45 J of idle draw dies at
            // ~450 s, inside the horizon, with loaded relays earlier.
            .battery(BatteryConfig {
                capacity_j: 0.45,
                ..BatteryConfig::javelen_small()
            })
            .energy_routing(),
            // ---- heavy family: adversarial Internet-style load. Flash
            // crowds (synchronized demand spikes), bounded-Pareto sizes
            // (mice + elephants) and incast storms (synchronized fan-in),
            // composed with churn/flap/mobility — the workloads the
            // modern congestion-control opponents (CUBIC/BBR) were built
            // for, and where 2007-era baselines fall over. ----
            Scenario::new(
                "heavy-flash-grid",
                TopologyKind::Grid {
                    cols: 10,
                    rows: 10,
                    spacing_m: 80.0,
                },
            )
            .duration_s(600.0)
            .seed(117)
            .traffic(TrafficPattern::FlashCrowd {
                bursts: 3,
                burst_rate_per_s: 0.01,
                flows_per_burst: 4,
                packets: 8,
                start_s: 10.0,
                loss_tolerance: 0.0,
            })
            .dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(44),
                b: NodeId(45),
                first_down_s: 60.0,
                down_s: 20.0,
                period_s: 120.0,
                cycles: 3,
            }),
            Scenario::new(
                "heavy-pareto-mobile",
                TopologyKind::Grid {
                    cols: 10,
                    rows: 10,
                    spacing_m: 80.0,
                },
            )
            .duration_s(600.0)
            .seed(118)
            .mobile(1.0)
            .traffic(TrafficPattern::ParetoBulk {
                flows: 10,
                alpha: 1.3,
                min_packets: 4,
                max_packets: 60,
                start_s: 5.0,
                window_s: 120.0,
                loss_tolerance: 0.0,
            }),
            Scenario::new(
                "heavy-incast-clustered",
                TopologyKind::Clustered {
                    clusters: 8,
                    per_cluster: 15,
                    spread_m: 25.0,
                    cluster_spacing_m: 90.0,
                },
            )
            .duration_s(600.0)
            .seed(119)
            .traffic(TrafficPattern::Incast {
                sink: NodeId(0),
                sources: vec![
                    NodeId(20),
                    NodeId(41),
                    NodeId(62),
                    NodeId(83),
                    NodeId(104),
                    NodeId(119),
                ],
                packets: 10,
                start_s: 10.0,
                waves: 2,
                period_s: 150.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(1),
                fail_at_s: 30.0,
                recover_at_s: 100.0,
            }),
            Scenario::new(
                "heavy-mixed-storm",
                TopologyKind::Grid {
                    cols: 10,
                    rows: 10,
                    spacing_m: 80.0,
                },
            )
            .duration_s(900.0)
            .seed(120)
            .traffic(TrafficPattern::FlashCrowd {
                bursts: 2,
                burst_rate_per_s: 0.02,
                flows_per_burst: 3,
                packets: 6,
                start_s: 10.0,
                loss_tolerance: 0.0,
            })
            .traffic(TrafficPattern::ParetoBulk {
                flows: 6,
                alpha: 1.2,
                min_packets: 3,
                max_packets: 40,
                start_s: 20.0,
                window_s: 200.0,
                loss_tolerance: 0.0,
            })
            .traffic(TrafficPattern::Incast {
                sink: NodeId(0),
                sources: vec![NodeId(9), NodeId(90), NodeId(99)],
                packets: 8,
                start_s: 60.0,
                waves: 1,
                period_s: 1.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(55),
                fail_at_s: 80.0,
                recover_at_s: 200.0,
            })
            .dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(0),
                b: NodeId(1),
                first_down_s: 100.0,
                down_s: 15.0,
                period_s: 120.0,
                cycles: 3,
            })
            // Finite batteries: the heavy family's lifetime column. With
            // 100 nodes a frame is 2.5 s; the idle draw alone crosses the
            // javelen_small reservoir inside the 900 s horizon.
            .battery(BatteryConfig::javelen_small()),
        ]
    }

    /// The heavy-traffic adversarial slice of the catalog (flash crowds,
    /// heavy tails, incast storms) — the `scenario_matrix` transports
    /// section sweeps exactly these across all five transports.
    pub fn heavy_catalog() -> Vec<Scenario> {
        Self::catalog()
            .into_iter()
            .filter(|s| s.name.starts_with("heavy-"))
            .collect()
    }

    /// The 1000+-node `xl` scenario family — a **separate** catalog, so
    /// the historical golden digests never move. Every entry selects the
    /// hierarchical routing backend: at this scale the exact backend's
    /// flat n×n tables are the O(n²) wall the backend exists to break
    /// (`engine_bench --section xl` prices both side by side). The
    /// family composes the three stressors the paper's machinery must
    /// absorb at city scale: churn floods (cluster-scoped repair),
    /// mobility (per-tick geometry diffs into cluster splits), and
    /// heavy traffic (incast + flash crowds across long routes). CI's
    /// `xl-smoke` job runs one entry under a wall-clock bound.
    ///
    /// Every entry also shortens the TDMA slot to 1 ms: a 1024-node
    /// frame at the default 25 ms slot spans ~26 s, making multi-hop
    /// delivery physically impossible inside the horizon. At 1 ms the
    /// frame is ~1 s, so per-node capacity (~1 pps) and hop latency
    /// stay in the regime the historical catalog exercises.
    pub fn xl_catalog() -> Vec<Scenario> {
        vec![
            // 32×32 lattice (1024 nodes): diagonal bulk + CBR while
            // nodes churn mid-grid — every churn event floods a repair
            // the hierarchical backend scopes to the touched clusters.
            Scenario::new(
                "xl-grid-churn",
                TopologyKind::Grid {
                    cols: 32,
                    rows: 32,
                    spacing_m: 80.0,
                },
            )
            .duration_s(300.0)
            .seed(901)
            .routing_backend(RoutingBackendKind::Hierarchical)
            .slot_ms(1)
            .traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(1023),
                packets: 40,
                start_s: 5.0,
                loss_tolerance: 0.0,
            })
            // A 15-hop row flow: long enough to cross the churned region,
            // short enough that per-hop fading leaves healthy delivery
            // (the 62-hop diagonal above is the stress case — at that
            // length correlated fades make end-to-end survival rare, as
            // on a real dense mesh).
            .traffic(TrafficPattern::Cbr {
                src: NodeId(512),
                dst: NodeId(527),
                rate_pps: 1.0,
                start_s: 10.0,
                duration_s: 60.0,
                loss_tolerance: 0.1,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(528),
                fail_at_s: 40.0,
                recover_at_s: 90.0,
            })
            .dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(497),
                fail_at_s: 60.0,
                recover_at_s: 120.0,
            })
            .dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(496),
                b: NodeId(528),
                first_down_s: 130.0,
                down_s: 10.0,
                period_s: 40.0,
                cycles: 3,
            }),
            // 40 dense clusters × 25 nodes (1000 nodes) under mobility:
            // the placement's natural groups seed the hierarchy, and
            // drifting nodes force cluster splits — the worst case the
            // lawfulness pins cover.
            Scenario::new(
                "xl-clustered-mobile",
                TopologyKind::Clustered {
                    clusters: 40,
                    per_cluster: 25,
                    spread_m: 25.0,
                    cluster_spacing_m: 90.0,
                },
            )
            .duration_s(240.0)
            .seed(902)
            .routing_backend(RoutingBackendKind::Hierarchical)
            .slot_ms(1)
            .mobile(1.0)
            .traffic(TrafficPattern::Convergecast {
                sink: NodeId(0),
                sources: vec![NodeId(999), NodeId(500), NodeId(250)],
                packets: 30,
                start_s: 5.0,
                stagger_s: 10.0,
            }),
            // 1024-node lattice under heavy traffic: an incast storm at
            // the grid centre plus flash-crowd arrivals, with an area
            // failure knocking out a corner mid-run.
            Scenario::new(
                "xl-grid-heavy",
                TopologyKind::Grid {
                    cols: 32,
                    rows: 32,
                    spacing_m: 80.0,
                },
            )
            .duration_s(240.0)
            .seed(903)
            .routing_backend(RoutingBackendKind::Hierarchical)
            .slot_ms(1)
            .traffic(TrafficPattern::Incast {
                sink: NodeId(528),
                sources: vec![
                    NodeId(0),
                    NodeId(31),
                    NodeId(992),
                    NodeId(1023),
                    NodeId(16),
                    NodeId(1007),
                ],
                packets: 12,
                start_s: 5.0,
                waves: 2,
                period_s: 60.0,
            })
            .traffic(TrafficPattern::FlashCrowd {
                bursts: 2,
                burst_rate_per_s: 0.02,
                flows_per_burst: 3,
                packets: 6,
                start_s: 30.0,
                loss_tolerance: 0.1,
            })
            .dynamics(DynamicsSpec::AreaFailure {
                x_m: 0.0,
                y_m: 0.0,
                radius_m: 150.0,
                at_s: 120.0,
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_lowering_counts_packets() {
        let mut flows = Vec::new();
        TrafficPattern::Cbr {
            src: NodeId(0),
            dst: NodeId(1),
            rate_pps: 2.5,
            start_s: 3.0,
            duration_s: 10.0,
            loss_tolerance: 0.4,
        }
        .lower(&mut flows, false, 8, 1, 0);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 25);
        assert_eq!(flows[0].initial_rate_pps, Some(2.5));
        assert_eq!(flows[0].loss_tolerance, 0.4);
        // TCP/ATP lowering forces full reliability.
        let mut reliable = Vec::new();
        TrafficPattern::Cbr {
            src: NodeId(0),
            dst: NodeId(1),
            rate_pps: 2.5,
            start_s: 3.0,
            duration_s: 10.0,
            loss_tolerance: 0.4,
        }
        .lower(&mut reliable, true, 8, 1, 0);
        assert_eq!(reliable[0].loss_tolerance, 0.0);
    }

    #[test]
    fn onoff_lowering_staggers_bursts() {
        let mut flows = Vec::new();
        TrafficPattern::OnOff {
            src: NodeId(0),
            dst: NodeId(3),
            rate_pps: 4.0,
            on_s: 10.0,
            off_s: 20.0,
            start_s: 5.0,
            cycles: 3,
            loss_tolerance: 0.0,
        }
        .lower(&mut flows, false, 8, 1, 0);
        assert_eq!(flows.len(), 3);
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.packets, 40);
            let start = f.start.as_secs_f64();
            assert!((start - (5.0 + 30.0 * i as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn convergecast_and_cross_traffic_fan_out() {
        let mut flows = Vec::new();
        TrafficPattern::Convergecast {
            sink: NodeId(0),
            sources: vec![NodeId(1), NodeId(2), NodeId(3)],
            packets: 10,
            start_s: 1.0,
            stagger_s: 2.0,
        }
        .lower(&mut flows, false, 8, 1, 0);
        assert_eq!(flows.len(), 3);
        assert!(flows.iter().all(|f| f.dst == NodeId(0)));
        let mut cross = Vec::new();
        TrafficPattern::CrossTraffic {
            a: NodeId(0),
            b: NodeId(4),
            packets: 9,
            start_s: 2.0,
        }
        .lower(&mut cross, false, 8, 1, 0);
        assert_eq!(cross.len(), 2);
        assert_eq!((cross[0].src, cross[0].dst), (NodeId(0), NodeId(4)));
        assert_eq!((cross[1].src, cross[1].dst), (NodeId(4), NodeId(0)));
    }

    #[test]
    fn link_flap_lowers_paired_events() {
        let mut evs = Vec::new();
        DynamicsSpec::LinkFlap {
            a: NodeId(1),
            b: NodeId(2),
            first_down_s: 10.0,
            down_s: 5.0,
            period_s: 30.0,
            cycles: 2,
        }
        .lower(&mut evs);
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs[0].action,
            DynamicsAction::LinkDown(NodeId(1), NodeId(2))
        );
        assert_eq!(evs[1].action, DynamicsAction::LinkUp(NodeId(1), NodeId(2)));
        assert!((evs[2].at.as_secs_f64() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_lowering_is_deterministic_and_well_formed() {
        let pat = TrafficPattern::Poisson {
            flows: 12,
            rate_per_s: 0.1,
            packets: 9,
            start_s: 5.0,
            loss_tolerance: 0.3,
        };
        let mut a = Vec::new();
        pat.lower(&mut a, false, 10, 42, 0);
        let mut b = Vec::new();
        pat.lower(&mut b, false, 10, 42, 0);
        assert_eq!(a.len(), 12);
        let mut prev = 5.0;
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.src, fb.src, "same seed, same arrival pattern");
            assert_eq!(fa.start, fb.start);
            assert_ne!(fa.src, fa.dst, "endpoints must be distinct");
            assert!(fa.src.index() < 10 && fa.dst.index() < 10);
            assert!(fa.start.as_secs_f64() > prev, "arrivals strictly ordered");
            prev = fa.start.as_secs_f64();
            assert_eq!(fa.loss_tolerance, 0.3);
        }
        // Mean inter-arrival ≈ 1/rate = 10 s (loose statistical check).
        let span = a.last().unwrap().start.as_secs_f64() - 5.0;
        assert!((3.0..40.0).contains(&(span / 12.0)), "span {span}");
        // Different substream index → different arrivals.
        let mut c = Vec::new();
        pat.lower(&mut c, false, 10, 42, 1);
        assert!(a.iter().zip(&c).any(|(x, y)| x.start != y.start));
        // TCP/ATP lowering forces full reliability.
        let mut reliable = Vec::new();
        pat.lower(&mut reliable, true, 10, 42, 0);
        assert!(reliable.iter().all(|f| f.loss_tolerance == 0.0));
    }

    #[test]
    fn area_failure_lowers_to_area_fail_action() {
        let mut evs = Vec::new();
        DynamicsSpec::AreaFailure {
            x_m: 100.0,
            y_m: 50.0,
            radius_m: 75.0,
            at_s: 30.0,
        }
        .lower(&mut evs);
        assert_eq!(evs.len(), 1);
        assert!((evs[0].at.as_secs_f64() - 30.0).abs() < 1e-9);
        assert_eq!(
            evs[0].action,
            DynamicsAction::AreaFail {
                x_m: 100.0,
                y_m: 50.0,
                radius_m: 75.0,
            }
        );
    }

    #[test]
    fn lifetime_knobs_lower_onto_config() {
        let sc = Scenario::new(
            "knobs",
            TopologyKind::Linear {
                n: 4,
                spacing_m: 55.0,
            },
        )
        .battery(BatteryConfig::javelen_small())
        .duty_cycle(DutyCycleConfig::half())
        .energy_routing()
        .traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(3),
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 0.0,
        });
        let cfg = sc.build(TransportKind::Jtp);
        assert!(cfg.battery.is_some());
        assert!(cfg.duty_cycle.is_some());
        assert!(cfg.energy_routing.is_some());
    }

    #[test]
    fn try_build_reports_malformed_scenarios_without_panicking() {
        let chain = TopologyKind::Linear {
            n: 4,
            spacing_m: 55.0,
        };
        let unordered_churn =
            Scenario::new("bad-churn", chain.clone()).dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(1),
                fail_at_s: 50.0,
                recover_at_s: 20.0,
            });
        let nan_partition =
            Scenario::new("bad-partition", chain.clone()).dynamics(DynamicsSpec::Partition {
                group: vec![NodeId(0)],
                start_s: f64::NAN,
                end_s: 100.0,
            });
        let solid_flap =
            Scenario::new("bad-flap", chain.clone()).dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(0),
                b: NodeId(1),
                first_down_s: 10.0,
                down_s: 30.0,
                period_s: 30.0,
                cycles: 2,
            });
        let dead_poisson =
            Scenario::new("bad-poisson", chain.clone()).traffic(TrafficPattern::Poisson {
                flows: 3,
                rate_per_s: 0.0,
                packets: 5,
                start_s: 1.0,
                loss_tolerance: 0.0,
            });
        let lonely = Scenario::new(
            "bad-lonely",
            TopologyKind::Linear {
                n: 1,
                spacing_m: 55.0,
            },
        );
        for sc in [
            unordered_churn,
            nan_partition,
            solid_flap,
            dead_poisson,
            lonely,
        ] {
            let err = sc.try_build(TransportKind::Jtp).unwrap_err();
            assert!(
                matches!(err, ConfigError::Scenario { ref name, .. } if *name == sc.name),
                "{}: expected a scenario-level error, got {err}",
                sc.name
            );
        }
        // Errors below the scenario layer pass through untouched.
        let bad_flow = Scenario::new("bad-flow", chain).traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(9),
            packets: 5,
            start_s: 1.0,
            loss_tolerance: 0.0,
        });
        assert!(matches!(
            bad_flow.try_build(TransportKind::Jtp),
            Err(ConfigError::Flow { index: 0, .. })
        ));
    }

    #[test]
    fn catalog_lowers_valid_for_every_transport() {
        let cat = Scenario::catalog();
        assert!(
            cat.len() >= 16,
            "catalog shrank below the canonical sixteen (8 + the lifetime \
             family + the static and mobile 100+-node scale families)"
        );
        assert!(
            cat.iter()
                .filter(|s| s.topology.node_count() >= 100)
                .count()
                >= 5,
            "the scale family must keep 100+-node entries in the catalog"
        );
        assert!(
            cat.iter()
                .filter(|s| s.mobile_mps.is_some() && s.topology.node_count() >= 100)
                .count()
                >= 2,
            "the mobile scale family must keep 100+-node mobile entries"
        );
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "scenario names must be unique");
        assert!(
            cat.iter().filter(|s| s.battery.is_some()).count() >= 3,
            "the lifetime family must keep finite batteries in the catalog"
        );
        assert!(
            cat.iter().filter(|s| s.name.starts_with("heavy-")).count() >= 4,
            "the heavy family must keep flash/pareto/incast entries"
        );
        for sc in &cat {
            for t in [
                TransportKind::Jtp,
                TransportKind::Jnc,
                TransportKind::Tcp,
                TransportKind::Atp,
                TransportKind::Cubic,
                TransportKind::Bbr,
            ] {
                let cfg = sc.build(t);
                assert!(!cfg.flows.is_empty(), "{}: no traffic lowered", sc.name);
            }
        }
    }

    #[test]
    fn heavy_catalog_is_the_heavy_slice() {
        let heavy = Scenario::heavy_catalog();
        assert!(heavy.len() >= 4);
        assert!(heavy.iter().all(|s| s.name.starts_with("heavy-")));
        assert!(
            heavy.iter().any(|s| s.battery.is_some()),
            "the heavy family needs a lifetime column"
        );
    }

    #[test]
    fn flash_crowd_lowering_is_deterministic_and_synchronized() {
        let pat = TrafficPattern::FlashCrowd {
            bursts: 4,
            burst_rate_per_s: 0.05,
            flows_per_burst: 3,
            packets: 7,
            start_s: 5.0,
            loss_tolerance: 0.2,
        };
        let mut a = Vec::new();
        pat.lower(&mut a, false, 20, 42, 0);
        let mut b = Vec::new();
        pat.lower(&mut b, false, 20, 42, 0);
        assert_eq!(a.len(), 12, "bursts × flows_per_burst");
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!((fa.src, fa.dst, fa.start), (fb.src, fb.dst, fb.start));
            assert_ne!(fa.src, fa.dst);
            assert_eq!(fa.packets, 7);
            assert_eq!(fa.loss_tolerance, 0.2);
        }
        // Flows inside one burst share the arrival instant (the spike).
        for chunk in a.chunks(3) {
            assert!(chunk.iter().all(|f| f.start == chunk[0].start));
        }
        // Bursts are strictly ordered in time.
        assert!(a[0].start < a[3].start && a[3].start < a[6].start);
        // Baseline lowering forces full reliability.
        let mut reliable = Vec::new();
        pat.lower(&mut reliable, true, 20, 42, 0);
        assert!(reliable.iter().all(|f| f.loss_tolerance == 0.0));
    }

    #[test]
    fn pareto_sizes_are_bounded_and_heavy_tailed() {
        let pat = TrafficPattern::ParetoBulk {
            flows: 200,
            alpha: 1.2,
            min_packets: 4,
            max_packets: 120,
            start_s: 10.0,
            window_s: 60.0,
            loss_tolerance: 0.0,
        };
        let mut flows = Vec::new();
        pat.lower(&mut flows, false, 30, 7, 0);
        assert_eq!(flows.len(), 200);
        for f in &flows {
            assert!((4..=120).contains(&f.packets), "size {} escaped", f.packets);
            let s = f.start.as_secs_f64();
            assert!((10.0..70.0).contains(&s), "start {s} outside window");
            assert_ne!(f.src, f.dst);
        }
        // Heavy tail: most flows are mice, but elephants exist.
        let mice = flows.iter().filter(|f| f.packets <= 12).count();
        let elephants = flows.iter().filter(|f| f.packets >= 60).count();
        assert!(mice > 100, "mice = {mice}");
        assert!(elephants >= 1, "elephants = {elephants}");
        // Same seed, same draw.
        let mut again = Vec::new();
        pat.lower(&mut again, false, 30, 7, 0);
        assert_eq!(
            flows.iter().map(|f| f.packets).collect::<Vec<_>>(),
            again.iter().map(|f| f.packets).collect::<Vec<_>>()
        );
    }

    #[test]
    fn incast_waves_are_synchronized_fan_in() {
        let pat = TrafficPattern::Incast {
            sink: NodeId(0),
            sources: vec![NodeId(3), NodeId(5), NodeId(7)],
            packets: 9,
            start_s: 20.0,
            waves: 2,
            period_s: 100.0,
        };
        let mut flows = Vec::new();
        pat.lower(&mut flows, false, 10, 1, 0);
        assert_eq!(flows.len(), 6);
        assert!(flows.iter().all(|f| f.dst == NodeId(0)));
        assert!(flows.iter().all(|f| f.loss_tolerance == 0.0));
        let w0: Vec<_> = flows.iter().take(3).map(|f| f.start).collect();
        assert!(w0.iter().all(|&t| t == w0[0]), "wave is simultaneous");
        let gap = flows[3].start.as_secs_f64() - flows[0].start.as_secs_f64();
        assert!((gap - 100.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_specs_reject_malformed_input() {
        let chain = TopologyKind::Linear {
            n: 4,
            spacing_m: 55.0,
        };
        let nan_flash =
            Scenario::new("bad-flash", chain.clone()).traffic(TrafficPattern::FlashCrowd {
                bursts: 2,
                burst_rate_per_s: f64::NAN,
                flows_per_burst: 2,
                packets: 5,
                start_s: 1.0,
                loss_tolerance: 0.0,
            });
        let inverted_pareto =
            Scenario::new("bad-pareto", chain.clone()).traffic(TrafficPattern::ParetoBulk {
                flows: 3,
                alpha: 1.2,
                min_packets: 50,
                max_packets: 10,
                start_s: 1.0,
                window_s: 10.0,
                loss_tolerance: 0.0,
            });
        let nan_alpha =
            Scenario::new("bad-alpha", chain.clone()).traffic(TrafficPattern::ParetoBulk {
                flows: 3,
                alpha: f64::NAN,
                min_packets: 1,
                max_packets: 10,
                start_s: 1.0,
                window_s: 10.0,
                loss_tolerance: 0.0,
            });
        let empty_incast =
            Scenario::new("bad-incast", chain.clone()).traffic(TrafficPattern::Incast {
                sink: NodeId(0),
                sources: vec![],
                packets: 5,
                start_s: 1.0,
                waves: 1,
                period_s: 1.0,
            });
        let dead_period = Scenario::new("bad-period", chain).traffic(TrafficPattern::Incast {
            sink: NodeId(0),
            sources: vec![NodeId(1)],
            packets: 5,
            start_s: 1.0,
            waves: 3,
            period_s: 0.0,
        });
        for sc in [
            nan_flash,
            inverted_pareto,
            nan_alpha,
            empty_incast,
            dead_period,
        ] {
            let err = sc.try_build(TransportKind::Jtp).unwrap_err();
            assert!(
                matches!(err, ConfigError::Scenario { ref name, .. } if *name == sc.name),
                "{}: expected a scenario-level error, got {err}",
                sc.name
            );
        }
    }
}
