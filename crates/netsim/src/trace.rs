//! Time-series instrumentation for the paper's trace figures.
//!
//! * reception timestamps per flow — Fig. 5 (short/long-term reception
//!   rate) and Fig. 8 top (instantaneous throughput),
//! * per-packet MAC attempt budgets at a chosen node — Fig. 3(c),
//! * path-monitor state at a chosen flow's receiver — Fig. 8 bottom
//!   (reported value, mean, control limits).

use jtp_sim::{FlowId, NodeId, SimDuration, SimTime};

/// What to record.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    /// Record reception timestamps of every flow.
    pub receptions: bool,
    /// Record iJTP attempt budgets assigned at this node.
    pub attempts_at: Option<NodeId>,
    /// Record the rate monitor of this flow's receiver.
    pub monitor_of: Option<FlowId>,
}

/// One monitor sample (Fig. 8 bottom plots).
#[derive(Clone, Copy, Debug)]
pub struct MonitorSample {
    /// When the data packet arrived.
    pub at: SimTime,
    /// The rate reported in the packet header (min along path).
    pub reported: f64,
    /// Monitor mean x̄.
    pub mean: f64,
    /// Lower control limit.
    pub lcl: f64,
    /// Upper control limit.
    pub ucl: f64,
}

/// Collected traces.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// (time, flow) for every fresh in-order-or-not delivery.
    pub receptions: Vec<(SimTime, FlowId)>,
    /// (time, attempts budget) at the traced node.
    pub attempts: Vec<(SimTime, u32)>,
    /// Monitor evolution of the traced flow.
    pub monitor: Vec<MonitorSample>,
}

impl TraceLog {
    /// Windowed reception rate (packets/second) of `flow`, sampled every
    /// `step` over `[0, end]` with averaging window `window` — the
    /// post-processing behind Fig. 5 and Fig. 8 top plots.
    pub fn reception_rate_series(
        &self,
        flow: FlowId,
        window: SimDuration,
        step: SimDuration,
        end: SimTime,
    ) -> Vec<(f64, f64)> {
        assert!(!window.is_zero() && !step.is_zero());
        let times: Vec<SimTime> = self
            .receptions
            .iter()
            .filter(|(_, f)| *f == flow)
            .map(|(t, _)| *t)
            .collect();
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + window;
        while t <= end {
            let lo = t - window;
            let count = times.iter().filter(|&&x| x > lo && x <= t).count();
            out.push((t.as_secs_f64(), count as f64 / window.as_secs_f64()));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_counts_window() {
        let mut log = TraceLog::default();
        // 2 packets per second for 10 s on flow 1.
        for i in 0..20 {
            log.receptions
                .push((SimTime::from_millis(i * 500 + 1), FlowId(1)));
        }
        // Noise on flow 2.
        log.receptions.push((SimTime::from_millis(100), FlowId(2)));
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(10.0),
        );
        // In steady state the rate reads 2 pps.
        let mid = series
            .iter()
            .find(|(t, _)| (*t - 5.0).abs() < 1e-9)
            .unwrap();
        assert!((mid.1 - 2.0).abs() < 0.51, "rate = {}", mid.1);
    }

    #[test]
    fn empty_flow_rates_are_zero() {
        let log = TraceLog::default();
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(3.0),
        );
        assert!(series.iter().all(|(_, r)| *r == 0.0));
        assert_eq!(series.len(), 3);
    }
}
