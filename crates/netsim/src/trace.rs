//! Time-series instrumentation for the paper's trace figures.
//!
//! * reception timestamps per flow — Fig. 5 (short/long-term reception
//!   rate) and Fig. 8 top (instantaneous throughput),
//! * per-packet MAC attempt budgets at a chosen node — Fig. 3(c),
//! * path-monitor state at a chosen flow's receiver — Fig. 8 bottom
//!   (reported value, mean, control limits).

use jtp_events::{
    AttemptBudget, BatteryDeath, Delivery, DynamicsApplied, EnergyAdvert, FloodEnd, FloodStart,
    MobilityTick, MonitorUpdate, PacketDrop, PacketKind, PacketSend, SlotGrant, Subscriber,
};
use jtp_sim::{FlowId, NodeId, SimDuration, SimTime};

/// Streaming FNV-1a (64-bit) — the one hash behind both golden-digest
/// checksums ([`TraceLog::checksum`] and the metrics FNV in
/// `runner::run_digest`), so the algorithm and its constants live in
/// exactly one audited place.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Fold bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold one little-endian u64.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// What to record.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    /// Record reception timestamps of every flow.
    pub receptions: bool,
    /// Record iJTP attempt budgets assigned at this node.
    pub attempts_at: Option<NodeId>,
    /// Record the rate monitor of this flow's receiver.
    pub monitor_of: Option<FlowId>,
}

/// One monitor sample (Fig. 8 bottom plots).
#[derive(Clone, Copy, Debug)]
pub struct MonitorSample {
    /// When the data packet arrived.
    pub at: SimTime,
    /// The rate reported in the packet header (min along path).
    pub reported: f64,
    /// Monitor mean x̄.
    pub mean: f64,
    /// Lower control limit.
    pub lcl: f64,
    /// Upper control limit.
    pub ucl: f64,
}

/// Collected traces.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// (time, flow) for every fresh in-order-or-not delivery.
    pub receptions: Vec<(SimTime, FlowId)>,
    /// (time, attempts budget) at the traced node.
    pub attempts: Vec<(SimTime, u32)>,
    /// Monitor evolution of the traced flow.
    pub monitor: Vec<MonitorSample>,
}

impl TraceLog {
    /// Order-sensitive FNV-1a checksum of the full event stream
    /// (receptions, attempt budgets, monitor samples). Two runs with the
    /// same checksum recorded the same events at the same times in the
    /// same order — the backbone of the golden-trace regression layer.
    pub fn checksum(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.receptions.len() as u64);
        for (t, f) in &self.receptions {
            h.write_u64(t.as_micros());
            h.write_u64(f.0 as u64);
        }
        h.write_u64(self.attempts.len() as u64);
        for (t, a) in &self.attempts {
            h.write_u64(t.as_micros());
            h.write_u64(*a as u64);
        }
        h.write_u64(self.monitor.len() as u64);
        for s in &self.monitor {
            h.write_u64(s.at.as_micros());
            h.write_u64(s.reported.to_bits());
            h.write_u64(s.mean.to_bits());
            h.write_u64(s.lcl.to_bits());
            h.write_u64(s.ucl.to_bits());
        }
        h.finish()
    }

    /// Windowed reception rate (packets/second) of `flow`, sampled every
    /// `step` over `[0, end]` with averaging window `window` — the
    /// post-processing behind Fig. 5 and Fig. 8 top plots.
    ///
    /// One pass over the log plus one pass over the sample grid: the
    /// flow's timestamps are collected once (and sorted, so hand-built
    /// logs work too — engine logs are already time-ordered) and the
    /// window `(t - window, t]` slides with two monotone cursors.
    pub fn reception_rate_series(
        &self,
        flow: FlowId,
        window: SimDuration,
        step: SimDuration,
        end: SimTime,
    ) -> Vec<(f64, f64)> {
        assert!(!window.is_zero() && !step.is_zero());
        let mut times: Vec<SimTime> = self
            .receptions
            .iter()
            .filter(|(_, f)| *f == flow)
            .map(|(t, _)| *t)
            .collect();
        times.sort_unstable();
        let mut out = Vec::new();
        let (mut lo, mut hi) = (0usize, 0usize);
        let mut t = SimTime::ZERO + window;
        while t <= end {
            let floor = t - window;
            // `hi` = first index with time > t; `lo` = first with time > floor.
            while hi < times.len() && times[hi] <= t {
                hi += 1;
            }
            while lo < hi && times[lo] <= floor {
                lo += 1;
            }
            out.push((t.as_secs_f64(), (hi - lo) as f64 / window.as_secs_f64()));
            t += step;
        }
        out
    }
}

/// The [`TraceConfig`]-filtered subscriber behind every traced run: it
/// folds the typed event stream back into the exact [`TraceLog`] the
/// bespoke plumbing used to produce, so golden-trace checksums are
/// unchanged by the event layer.
#[derive(Clone, Debug, Default)]
pub struct TraceSubscriber {
    cfg: TraceConfig,
    log: TraceLog,
}

impl TraceSubscriber {
    /// A subscriber recording per `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceSubscriber {
            cfg,
            log: TraceLog::default(),
        }
    }

    /// The log collected so far.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Consume the subscriber, keeping the log.
    pub fn into_log(self) -> TraceLog {
        self.log
    }
}

impl Subscriber for TraceSubscriber {
    fn on_attempt_budget(&mut self, now: SimTime, ev: &AttemptBudget) {
        if self.cfg.attempts_at == Some(ev.node) {
            self.log.attempts.push((now, ev.budget));
        }
    }

    fn on_delivery(&mut self, now: SimTime, ev: &Delivery) {
        if self.cfg.receptions && ev.fresh {
            self.log.receptions.push((now, ev.flow));
        }
    }

    fn on_monitor(&mut self, now: SimTime, ev: &MonitorUpdate) {
        if self.cfg.monitor_of == Some(ev.flow) {
            self.log.monitor.push(MonitorSample {
                at: now,
                reported: ev.reported,
                mean: ev.mean,
                lcl: ev.lcl,
                ucl: ev.ucl,
            });
        }
    }
}

/// Order-sensitive FNV-1a over the *entire* typed event stream — every
/// deterministic event, every field, in emission order. This is the third
/// golden surface next to `metrics_fnv` and [`TraceLog::checksum`]: the
/// reception trace only sees fresh deliveries, while this digest also pins
/// slot grants, sends, drops, floods, deaths, adverts, dynamics and
/// mobility ticks. Wall-clock subsystem spans are deliberately *not*
/// folded — they are host noise and must never reach a compared value.
///
/// Each handler folds a distinct type tag, the event time and every field
/// (times as microseconds, floats as IEEE bit patterns, enums by their
/// stable `index()`), so two equal checksums mean the same events fired at
/// the same times in the same order with the same payloads.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventChecksum(Fnv64);

impl EventChecksum {
    /// The checksum over all events observed so far.
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }

    fn tag(&mut self, tag: u64, now: SimTime) {
        self.0.write_u64(tag);
        self.0.write_u64(now.as_micros());
    }
}

impl Subscriber for EventChecksum {
    fn on_slot(&mut self, now: SimTime, ev: &SlotGrant) {
        self.tag(1, now);
        self.0.write_u64(ev.slot);
        self.0.write_u64(ev.owner.0 as u64);
        self.0.write_u64(ev.busy as u64);
        self.0.write_u64(ev.queue_depth as u64);
    }
    fn on_send(&mut self, now: SimTime, ev: &PacketSend) {
        self.tag(2, now);
        self.0.write_u64(ev.from.0 as u64);
        self.0.write_u64(ev.to.0 as u64);
        self.0.write_u64(matches!(ev.kind, PacketKind::Ack) as u64);
        self.0.write_u64(ev.bytes as u64);
        self.0.write_u64(ev.delivered as u64);
    }
    fn on_attempt_budget(&mut self, now: SimTime, ev: &AttemptBudget) {
        self.tag(3, now);
        self.0.write_u64(ev.node.0 as u64);
        self.0.write_u64(ev.budget as u64);
    }
    fn on_delivery(&mut self, now: SimTime, ev: &Delivery) {
        self.tag(4, now);
        self.0.write_u64(ev.flow.0 as u64);
        self.0.write_u64(ev.node.0 as u64);
        self.0.write_u64(ev.bytes as u64);
        self.0.write_u64(ev.fresh as u64);
    }
    fn on_drop(&mut self, now: SimTime, ev: &PacketDrop) {
        self.tag(5, now);
        self.0.write_u64(ev.node.0 as u64);
        self.0.write_u64(ev.cause.index() as u64);
        self.0.write_u64(ev.packets);
    }
    fn on_monitor(&mut self, now: SimTime, ev: &MonitorUpdate) {
        self.tag(6, now);
        self.0.write_u64(ev.flow.0 as u64);
        self.0.write_u64(ev.reported.to_bits());
        self.0.write_u64(ev.mean.to_bits());
        self.0.write_u64(ev.lcl.to_bits());
        self.0.write_u64(ev.ucl.to_bits());
    }
    fn on_flood_start(&mut self, now: SimTime, ev: &FloodStart) {
        self.tag(7, now);
        self.0.write_u64(ev.cause.index() as u64);
    }
    fn on_flood_end(&mut self, now: SimTime, ev: &FloodEnd) {
        self.tag(8, now);
        self.0.write_u64(ev.cause.index() as u64);
        self.0.write_u64(ev.views_refreshed);
        self.0.write_u64(ev.sources_repaired);
        self.0.write_u64(ev.entries_changed);
    }
    fn on_battery_death(&mut self, now: SimTime, ev: &BatteryDeath) {
        self.tag(9, now);
        self.0.write_u64(ev.node.0 as u64);
        self.0.write_u64(ev.alive as u64);
    }
    fn on_energy_advert(&mut self, now: SimTime, ev: &EnergyAdvert) {
        self.tag(10, now);
        self.0.write_u64(ev.changed as u64);
    }
    fn on_dynamics(&mut self, now: SimTime, ev: &DynamicsApplied) {
        self.tag(11, now);
        self.0.write_u64(ev.index as u64);
    }
    fn on_mobility(&mut self, now: SimTime, ev: &MobilityTick) {
        self.tag(12, now);
        self.0.write_u64(ev.changed_edges as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_checksum_is_order_content_and_type_sensitive() {
        let t = SimTime::from_millis(10);
        let send = PacketSend {
            from: NodeId(1),
            to: NodeId(2),
            kind: PacketKind::Data,
            bytes: 840,
            delivered: true,
        };
        let drop = PacketDrop {
            node: NodeId(2),
            cause: jtp_events::DropCause::Queue,
            packets: 1,
        };
        let mut a = EventChecksum::default();
        a.on_send(t, &send);
        a.on_drop(t, &drop);
        let mut b = EventChecksum::default();
        b.on_drop(t, &drop);
        b.on_send(t, &send);
        assert_ne!(a.finish(), b.finish(), "order must matter");
        let mut c = EventChecksum::default();
        c.on_send(t, &send);
        c.on_drop(t, &drop);
        assert_eq!(a.finish(), c.finish(), "same stream, same checksum");
        let mut d = EventChecksum::default();
        d.on_send(
            t,
            &PacketSend {
                delivered: false,
                ..send
            },
        );
        d.on_drop(t, &drop);
        assert_ne!(a.finish(), d.finish(), "fields must matter");
        let mut e = EventChecksum::default();
        e.on_send(SimTime::from_millis(11), &send);
        e.on_drop(t, &drop);
        assert_ne!(a.finish(), e.finish(), "event times must matter");
        assert_ne!(
            EventChecksum::default().finish(),
            a.finish(),
            "content must matter"
        );
    }

    #[test]
    fn rate_series_counts_window() {
        let mut log = TraceLog::default();
        // 2 packets per second for 10 s on flow 1.
        for i in 0..20 {
            log.receptions
                .push((SimTime::from_millis(i * 500 + 1), FlowId(1)));
        }
        // Noise on flow 2.
        log.receptions.push((SimTime::from_millis(100), FlowId(2)));
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(10.0),
        );
        // In steady state the rate reads 2 pps.
        let mid = series
            .iter()
            .find(|(t, _)| (*t - 5.0).abs() < 1e-9)
            .unwrap();
        assert!((mid.1 - 2.0).abs() < 0.51, "rate = {}", mid.1);
    }

    #[test]
    fn checksum_is_order_and_content_sensitive() {
        let mut a = TraceLog::default();
        a.receptions.push((SimTime::from_millis(10), FlowId(0)));
        a.receptions.push((SimTime::from_millis(20), FlowId(1)));
        let mut b = TraceLog::default();
        b.receptions.push((SimTime::from_millis(20), FlowId(1)));
        b.receptions.push((SimTime::from_millis(10), FlowId(0)));
        assert_ne!(a.checksum(), b.checksum(), "order must matter");
        let mut c = TraceLog::default();
        c.receptions.push((SimTime::from_millis(10), FlowId(0)));
        c.receptions.push((SimTime::from_millis(20), FlowId(1)));
        assert_eq!(a.checksum(), c.checksum(), "same stream, same checksum");
        assert_ne!(
            TraceLog::default().checksum(),
            a.checksum(),
            "content must matter"
        );
        let mut d = a.clone();
        d.attempts.push((SimTime::from_millis(5), 3));
        assert_ne!(a.checksum(), d.checksum(), "attempts feed the checksum");
    }

    #[test]
    fn rate_series_matches_naive_rescan() {
        // Pin the sliding-window rewrite against the quadratic original,
        // including unsorted logs and step/window mismatches.
        let naive = |log: &TraceLog, flow: FlowId, window: SimDuration, step: SimDuration, end| {
            let times: Vec<SimTime> = log
                .receptions
                .iter()
                .filter(|(_, f)| *f == flow)
                .map(|(t, _)| *t)
                .collect();
            let mut out = Vec::new();
            let mut t = SimTime::ZERO + window;
            while t <= end {
                let lo = t - window;
                let count = times.iter().filter(|&&x| x > lo && x <= t).count();
                out.push((t.as_secs_f64(), count as f64 / window.as_secs_f64()));
                t += step;
            }
            out
        };
        let mut log = TraceLog::default();
        let mut x = 9u64;
        for _ in 0..400 {
            // Cheap xorshift scatter; out-of-order on purpose.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            log.receptions
                .push((SimTime::from_millis(x % 30_000), FlowId((x % 3) as u16)));
        }
        for (window_ms, step_ms) in [(1000, 1000), (2500, 400), (400, 2500), (7, 13)] {
            let window = SimDuration::from_millis(window_ms);
            let step = SimDuration::from_millis(step_ms);
            let end = SimTime::from_secs_f64(31.0);
            for flow in [FlowId(0), FlowId(1), FlowId(2), FlowId(9)] {
                assert_eq!(
                    log.reception_rate_series(flow, window, step, end),
                    naive(&log, flow, window, step, end),
                    "flow {flow:?} window {window_ms} step {step_ms}"
                );
            }
        }
    }

    #[test]
    fn trace_subscriber_filters_like_the_old_plumbing() {
        use jtp_events::{AttemptBudget, Delivery, MonitorUpdate};
        let cfg = TraceConfig {
            receptions: true,
            attempts_at: Some(NodeId(2)),
            monitor_of: Some(FlowId(1)),
        };
        let mut sub = TraceSubscriber::new(cfg);
        let t = SimTime::from_millis(10);
        sub.on_delivery(
            t,
            &Delivery {
                flow: FlowId(1),
                node: NodeId(5),
                bytes: 64,
                fresh: true,
            },
        );
        sub.on_delivery(
            t,
            &Delivery {
                flow: FlowId(1),
                node: NodeId(5),
                bytes: 64,
                fresh: false,
            },
        );
        sub.on_attempt_budget(
            t,
            &AttemptBudget {
                node: NodeId(2),
                budget: 3,
            },
        );
        sub.on_attempt_budget(
            t,
            &AttemptBudget {
                node: NodeId(3),
                budget: 9,
            },
        );
        let mon = MonitorUpdate {
            flow: FlowId(1),
            reported: 2.0,
            mean: 1.5,
            lcl: 1.0,
            ucl: 2.0,
        };
        sub.on_monitor(t, &mon);
        sub.on_monitor(
            t,
            &MonitorUpdate {
                flow: FlowId(0),
                ..mon
            },
        );
        let log = sub.into_log();
        assert_eq!(
            log.receptions,
            vec![(t, FlowId(1))],
            "duplicates are not receptions"
        );
        assert_eq!(log.attempts, vec![(t, 3)], "only the traced node");
        assert_eq!(log.monitor.len(), 1, "only the traced flow");
        assert_eq!(log.monitor[0].mean, 1.5);
    }

    #[test]
    fn empty_flow_rates_are_zero() {
        let log = TraceLog::default();
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(3.0),
        );
        assert!(series.iter().all(|(_, r)| *r == 0.0));
        assert_eq!(series.len(), 3);
    }
}
