//! Time-series instrumentation for the paper's trace figures.
//!
//! * reception timestamps per flow — Fig. 5 (short/long-term reception
//!   rate) and Fig. 8 top (instantaneous throughput),
//! * per-packet MAC attempt budgets at a chosen node — Fig. 3(c),
//! * path-monitor state at a chosen flow's receiver — Fig. 8 bottom
//!   (reported value, mean, control limits).

use jtp_sim::{FlowId, NodeId, SimDuration, SimTime};

/// Streaming FNV-1a (64-bit) — the one hash behind both golden-digest
/// checksums ([`TraceLog::checksum`] and the metrics FNV in
/// `runner::run_digest`), so the algorithm and its constants live in
/// exactly one audited place.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Fold bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold one little-endian u64.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// What to record.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    /// Record reception timestamps of every flow.
    pub receptions: bool,
    /// Record iJTP attempt budgets assigned at this node.
    pub attempts_at: Option<NodeId>,
    /// Record the rate monitor of this flow's receiver.
    pub monitor_of: Option<FlowId>,
}

/// One monitor sample (Fig. 8 bottom plots).
#[derive(Clone, Copy, Debug)]
pub struct MonitorSample {
    /// When the data packet arrived.
    pub at: SimTime,
    /// The rate reported in the packet header (min along path).
    pub reported: f64,
    /// Monitor mean x̄.
    pub mean: f64,
    /// Lower control limit.
    pub lcl: f64,
    /// Upper control limit.
    pub ucl: f64,
}

/// Collected traces.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// (time, flow) for every fresh in-order-or-not delivery.
    pub receptions: Vec<(SimTime, FlowId)>,
    /// (time, attempts budget) at the traced node.
    pub attempts: Vec<(SimTime, u32)>,
    /// Monitor evolution of the traced flow.
    pub monitor: Vec<MonitorSample>,
}

impl TraceLog {
    /// Order-sensitive FNV-1a checksum of the full event stream
    /// (receptions, attempt budgets, monitor samples). Two runs with the
    /// same checksum recorded the same events at the same times in the
    /// same order — the backbone of the golden-trace regression layer.
    pub fn checksum(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write_u64(self.receptions.len() as u64);
        for (t, f) in &self.receptions {
            h.write_u64(t.as_micros());
            h.write_u64(f.0 as u64);
        }
        h.write_u64(self.attempts.len() as u64);
        for (t, a) in &self.attempts {
            h.write_u64(t.as_micros());
            h.write_u64(*a as u64);
        }
        h.write_u64(self.monitor.len() as u64);
        for s in &self.monitor {
            h.write_u64(s.at.as_micros());
            h.write_u64(s.reported.to_bits());
            h.write_u64(s.mean.to_bits());
            h.write_u64(s.lcl.to_bits());
            h.write_u64(s.ucl.to_bits());
        }
        h.finish()
    }

    /// Windowed reception rate (packets/second) of `flow`, sampled every
    /// `step` over `[0, end]` with averaging window `window` — the
    /// post-processing behind Fig. 5 and Fig. 8 top plots.
    pub fn reception_rate_series(
        &self,
        flow: FlowId,
        window: SimDuration,
        step: SimDuration,
        end: SimTime,
    ) -> Vec<(f64, f64)> {
        assert!(!window.is_zero() && !step.is_zero());
        let times: Vec<SimTime> = self
            .receptions
            .iter()
            .filter(|(_, f)| *f == flow)
            .map(|(t, _)| *t)
            .collect();
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + window;
        while t <= end {
            let lo = t - window;
            let count = times.iter().filter(|&&x| x > lo && x <= t).count();
            out.push((t.as_secs_f64(), count as f64 / window.as_secs_f64()));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_counts_window() {
        let mut log = TraceLog::default();
        // 2 packets per second for 10 s on flow 1.
        for i in 0..20 {
            log.receptions
                .push((SimTime::from_millis(i * 500 + 1), FlowId(1)));
        }
        // Noise on flow 2.
        log.receptions.push((SimTime::from_millis(100), FlowId(2)));
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(10.0),
        );
        // In steady state the rate reads 2 pps.
        let mid = series
            .iter()
            .find(|(t, _)| (*t - 5.0).abs() < 1e-9)
            .unwrap();
        assert!((mid.1 - 2.0).abs() < 0.51, "rate = {}", mid.1);
    }

    #[test]
    fn checksum_is_order_and_content_sensitive() {
        let mut a = TraceLog::default();
        a.receptions.push((SimTime::from_millis(10), FlowId(0)));
        a.receptions.push((SimTime::from_millis(20), FlowId(1)));
        let mut b = TraceLog::default();
        b.receptions.push((SimTime::from_millis(20), FlowId(1)));
        b.receptions.push((SimTime::from_millis(10), FlowId(0)));
        assert_ne!(a.checksum(), b.checksum(), "order must matter");
        let mut c = TraceLog::default();
        c.receptions.push((SimTime::from_millis(10), FlowId(0)));
        c.receptions.push((SimTime::from_millis(20), FlowId(1)));
        assert_eq!(a.checksum(), c.checksum(), "same stream, same checksum");
        assert_ne!(
            TraceLog::default().checksum(),
            a.checksum(),
            "content must matter"
        );
        let mut d = a.clone();
        d.attempts.push((SimTime::from_millis(5), 3));
        assert_ne!(a.checksum(), d.checksum(), "attempts feed the checksum");
    }

    #[test]
    fn empty_flow_rates_are_zero() {
        let log = TraceLog::default();
        let series = log.reception_rate_series(
            FlowId(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimTime::from_secs_f64(3.0),
        );
        assert!(series.iter().all(|(_, r)| *r == 0.0));
        assert_eq!(series.len(), 3);
    }
}
