//! # jtp-netsim — network assembly, workloads, metrics
//!
//! Glues the substrates into runnable experiments:
//!
//! * [`config`] — experiment descriptions with builders
//!   ([`ExperimentConfig::linear`], [`ExperimentConfig::random`], …),
//! * [`topology`] — node placement and ground-truth connectivity,
//! * [`network`] — the assembled simulation (nodes = MAC + iJTP + energy
//!   meter; TDMA slots; routing; per-protocol endpoints),
//! * [`scenario`] — the declarative scenario engine: traffic patterns ×
//!   substrate dynamics × topologies, lowered onto [`ExperimentConfig`],
//! * [`partition`] — topology cuts and the flood-plane synchronizer
//!   behind the `workers` knob (partitioned output is byte-identical to
//!   sequential — see ARCHITECTURE.md, "Partitioned flood-plane engine"),
//! * [`runner`] — single runs, traced runs, parallel multi-seed batches
//!   with confidence intervals, and golden-trace digests,
//! * [`metrics`] — energy-per-bit, goodput and mechanism counters,
//! * [`trace`] — time-series instrumentation for the paper's trace
//!   figures,
//! * [`report`] — netbench-style per-scenario reports (deterministic
//!   JSON + markdown) folded from the `jtp_events` subscriber stream.
//!
//! ```
//! use jtp_netsim::{ExperimentConfig, TransportKind, run_experiment};
//!
//! let cfg = ExperimentConfig::linear(4)
//!     .transport(TransportKind::Jtp)
//!     .duration_s(400.0)
//!     .seed(3)
//!     .bulk_flow(50, 5.0, 0.0);
//! let m = run_experiment(&cfg);
//! assert!(m.delivered_packets >= 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fuzz;
pub mod metrics;
pub mod network;
pub mod partition;
pub mod payload;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod topology;
pub mod trace;
pub mod truth;

pub use config::{
    ConfigError, DynamicsAction, DynamicsEvent, EnergyRoutingConfig, ExperimentConfig, FlowSpec,
    MobilityConfig, RoutingBackendKind, TopologyKind, TransportKind,
};
pub use fuzz::{
    check_scenario, shrink_scenario, CaseOutcome, CaseReport, GeneratedCase, ScenarioGen,
};
pub use metrics::{FlowMetrics, Metrics};
pub use network::{cluster_spec_for, Event, Network};
pub use partition::{FloodSync, TopologyCut};
pub use report::{
    render_markdown, run_report, try_run_report, FlowReport, ReportRecorder, ScenarioReport,
    TimeBreakdown,
};
pub use runner::{
    run_digest, run_digest_events, run_experiment, run_many, run_many_on, run_subscribed,
    run_traced, summarize_runs, try_run_digest, try_run_digest_events, try_run_digest_on,
    try_run_digest_with, try_run_experiment, try_run_subscribed, try_run_traced, GoldenDigest,
    Summary,
};
pub use scenario::{DynamicsSpec, Scenario, TrafficPattern};
pub use trace::{EventChecksum, TraceConfig, TraceLog, TraceSubscriber};
pub use truth::MaskedTruth;
