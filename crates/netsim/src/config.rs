//! Experiment configuration: topology, transport, workload and substrate
//! parameters, with a builder mirroring the paper's scenario descriptions.

use jtp::JtpConfig;
use jtp_baselines::atp::AtpConfig;
use jtp_baselines::tcp::TcpConfig;
use jtp_mac::MacConfig;
use jtp_phys::gilbert::GilbertConfig;
use jtp_phys::{PathLoss, RadioEnergyModel};
use jtp_sim::{NodeId, SimDuration};

/// Which transport protocol a flow (and the whole run) uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// JTP with in-network caching (the paper's protocol).
    Jtp,
    /// JTP with caching disabled (the paper's JNC comparison).
    Jnc,
    /// Rate-based TCP-SACK.
    Tcp,
    /// ATP-like explicit-rate transport.
    Atp,
}

/// Node placement.
#[derive(Clone, Debug)]
pub enum TopologyKind {
    /// `n` nodes in a chain, neighbours `spacing_m` apart (§6.1.1).
    Linear {
        /// Node count.
        n: usize,
        /// Inter-node spacing in metres.
        spacing_m: f64,
    },
    /// `n` nodes uniform in a square field sized for connectivity with
    /// high probability (§6.1.2); resampled until connected.
    Random {
        /// Node count.
        n: usize,
        /// Field side in metres.
        field_side_m: f64,
    },
}

impl TopologyKind {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            TopologyKind::Linear { n, .. } | TopologyKind::Random { n, .. } => *n,
        }
    }
}

/// Random-waypoint mobility parameters (None = static network).
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Movement speed (paper: 0.1 / 1 / 5 m/s).
    pub speed_mps: f64,
    /// Mean leg length (paper: 47 m).
    pub mean_leg_m: f64,
    /// Mean pause (paper: 100 s).
    pub mean_pause_s: f64,
    /// Position/topology re-evaluation period.
    pub update_period: SimDuration,
}

impl MobilityConfig {
    /// The paper's §6.1.2 parameterisation at the given speed.
    pub fn paper(speed_mps: f64) -> Self {
        MobilityConfig {
            speed_mps,
            mean_leg_m: 47.0,
            mean_pause_s: 100.0,
            update_period: SimDuration::from_secs(1),
        }
    }
}

/// One flow of the workload.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the transfer starts.
    pub start: SimDuration,
    /// Packets to transfer (800-byte payloads by default).
    pub packets: u32,
    /// End-to-end loss tolerance (0.0 = full reliability; only JTP uses
    /// values other than 0).
    pub loss_tolerance: f64,
    /// Initial sending rate override (pps). None = protocol default.
    /// Short-lived bursts that arrive "hot" are modelled by setting this
    /// above the default 1 pps.
    pub initial_rate_pps: Option<f64>,
}

impl FlowSpec {
    /// A full-reliability flow with protocol-default initial rate.
    pub fn new(src: NodeId, dst: NodeId, start: SimDuration, packets: u32) -> Self {
        FlowSpec {
            src,
            dst,
            start,
            packets,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        }
    }
}

/// Full experiment description.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Placement of nodes.
    pub topology: TopologyKind,
    /// Protocol under test.
    pub transport: TransportKind,
    /// Flows; empty means "one bulk flow end-to-end" filled at build time.
    pub flows: Vec<FlowSpec>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// TDMA slot length.
    pub slot: SimDuration,
    /// MAC parameters.
    pub mac: MacConfig,
    /// JTP parameters (used by Jtp/Jnc runs).
    pub jtp: JtpConfig,
    /// TCP parameters (Tcp runs).
    pub tcp: TcpConfig,
    /// ATP parameters (Atp runs).
    pub atp: AtpConfig,
    /// Distance → loss model.
    pub pathloss: PathLoss,
    /// Good/bad channel process.
    pub gilbert: GilbertConfig,
    /// Radio energy parameters.
    pub energy: RadioEnergyModel,
    /// Mobility (None = static).
    pub mobility: Option<MobilityConfig>,
    /// Link-state view refresh interval.
    pub routing_refresh: SimDuration,
    /// Periodic delayed-ACK flush for TCP receivers.
    pub tcp_ack_flush: SimDuration,
    /// Skip TDMA slots owned by nodes with empty MAC queues, jumping the
    /// event clock straight to the next busy slot. Observationally
    /// identical to firing every slot (idle-slot statistics are replayed
    /// exactly), but collapses idle stretches from O(slots) events to
    /// O(1). Disable only to cross-check the engine against the naive
    /// per-slot loop.
    pub idle_slot_skipping: bool,
    /// Keep at most one pending sender wakeup per flow (an earlier request
    /// cancels a later one). The pre-overhaul engine spawned a fresh
    /// wakeup chain per ACK arrival that never died — O(acks²) no-op
    /// timer events per flow. Disable only to benchmark against that
    /// behaviour.
    pub wakeup_coalescing: bool,
}

impl ExperimentConfig {
    fn base(topology: TopologyKind) -> Self {
        ExperimentConfig {
            topology,
            transport: TransportKind::Jtp,
            flows: Vec::new(),
            duration: SimDuration::from_secs(1000),
            seed: 1,
            slot: SimDuration::from_millis(25),
            mac: MacConfig::default(),
            jtp: JtpConfig::default(),
            tcp: TcpConfig::default(),
            atp: AtpConfig::default(),
            pathloss: PathLoss::javelen_default(),
            gilbert: GilbertConfig::paper_default(),
            energy: RadioEnergyModel::javelen_default(),
            mobility: None,
            routing_refresh: SimDuration::from_secs(5),
            tcp_ack_flush: SimDuration::from_millis(500),
            idle_slot_skipping: true,
            wakeup_coalescing: true,
        }
    }

    /// A linear chain of `n` nodes, 55 m spacing (full-quality links,
    /// single-hop neighbours only).
    pub fn linear(n: usize) -> Self {
        assert!(n >= 2, "need at least source and destination");
        Self::base(TopologyKind::Linear { n, spacing_m: 55.0 })
    }

    /// `n` nodes uniform in a square field sized for connectivity
    /// (side = 60·√n metres, mean degree ≈ 8 at 100 m range).
    pub fn random(n: usize) -> Self {
        assert!(n >= 2);
        let side = 60.0 * (n as f64).sqrt();
        Self::base(TopologyKind::Random {
            n,
            field_side_m: side,
        })
    }

    /// Select the transport protocol. `Jnc` also disables JTP caching.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        if t == TransportKind::Jnc {
            self.jtp.caching_enabled = false;
        }
        self
    }

    /// Set the simulated duration in seconds.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.duration = SimDuration::from_secs_f64(s);
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a flow.
    pub fn flow(mut self, spec: FlowSpec) -> Self {
        self.flows.push(spec);
        self
    }

    /// Enable random-waypoint mobility at the paper's parameters.
    pub fn mobile(mut self, speed_mps: f64) -> Self {
        self.mobility = Some(MobilityConfig::paper(speed_mps));
        self
    }

    /// Convenience: one bulk transfer of `packets` packets from node 0 to
    /// the last node, starting at `start_s`, with loss tolerance `lt`.
    pub fn bulk_flow(self, packets: u32, start_s: f64, lt: f64) -> Self {
        let n = self.topology.node_count();
        let spec = FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs_f64(start_s),
            packets,
            loss_tolerance: lt,
            initial_rate_pps: None,
        };
        self.flow(spec)
    }

    /// Validate cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topology.node_count();
        if n < 2 {
            return Err("need at least 2 nodes".into());
        }
        self.jtp.validate()?;
        self.pathloss.validate()?;
        for (i, f) in self.flows.iter().enumerate() {
            if f.src.index() >= n || f.dst.index() >= n {
                return Err(format!("flow {i} endpoints outside topology"));
            }
            if f.src == f.dst {
                return Err(format!("flow {i} has identical endpoints"));
            }
            if !(0.0..=1.0).contains(&f.loss_tolerance) {
                return Err(format!("flow {i} loss tolerance outside [0,1]"));
            }
            if (self.transport == TransportKind::Tcp || self.transport == TransportKind::Atp)
                && f.loss_tolerance != 0.0
            {
                return Err(format!(
                    "flow {i}: {:?} only supports full reliability",
                    self.transport
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_config() {
        let cfg = ExperimentConfig::linear(5)
            .transport(TransportKind::Jtp)
            .duration_s(500.0)
            .seed(7)
            .bulk_flow(100, 10.0, 0.1);
        cfg.validate().unwrap();
        assert_eq!(cfg.topology.node_count(), 5);
        assert_eq!(cfg.flows.len(), 1);
        assert_eq!(cfg.flows[0].dst, NodeId(4));
    }

    #[test]
    fn jnc_disables_caching() {
        let cfg = ExperimentConfig::linear(3).transport(TransportKind::Jnc);
        assert!(!cfg.jtp.caching_enabled);
    }

    #[test]
    fn tcp_rejects_loss_tolerance() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Tcp)
            .bulk_flow(10, 0.0, 0.2);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn flow_endpoint_bounds_checked() {
        let cfg = ExperimentConfig::linear(3).flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            start: SimDuration::ZERO,
            packets: 1,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn random_field_scales_with_n() {
        let small = ExperimentConfig::random(4);
        let large = ExperimentConfig::random(25);
        let (
            TopologyKind::Random {
                field_side_m: s, ..
            },
            TopologyKind::Random {
                field_side_m: l, ..
            },
        ) = (small.topology.clone(), large.topology.clone())
        else {
            panic!()
        };
        assert!(l > s);
    }
}
