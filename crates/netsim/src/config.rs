//! Experiment configuration: topology, transport, workload and substrate
//! parameters, with a builder mirroring the paper's scenario descriptions.

use jtp::JtpConfig;
use jtp_baselines::atp::AtpConfig;
use jtp_baselines::bbr::BbrConfig;
use jtp_baselines::cubic::CubicConfig;
use jtp_baselines::tcp::TcpConfig;
use jtp_mac::{DutyCycleConfig, MacConfig};
use jtp_phys::gilbert::GilbertConfig;
use jtp_phys::{BatteryConfig, PathLoss, RadioEnergyModel};
use jtp_sim::{NodeId, SimDuration};

/// Why a configuration (or a scenario lowering onto one) was rejected.
///
/// Every malformed-input path in the simulator funnels through this type:
/// [`ExperimentConfig::validate`] is the single choke point, and the
/// fallible entry points (`Network::try_new`, `try_run_experiment`,
/// `Scenario::try_build`, `try_place_nodes`) surface it instead of
/// panicking. The variants are coarse-grained by *which knob* was wrong,
/// so fuzzers and CLIs can branch on the class while humans read the
/// embedded reason.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Node placement parameters are unusable (too few nodes,
    /// non-positive/non-finite geometry).
    Topology(String),
    /// A flow references nodes outside the topology or carries
    /// out-of-range parameters.
    Flow {
        /// Index into [`ExperimentConfig::flows`].
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// A scheduled dynamics event is malformed.
    Dynamics {
        /// Index into [`ExperimentConfig::dynamics`].
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// Mobility parameters would corrupt or hang the run.
    Mobility(String),
    /// A period or duration that drives the event loop is zero or
    /// otherwise degenerate (zero-period events never advance time).
    Timing(String),
    /// JTP transport parameters rejected by [`JtpConfig::validate`].
    Jtp(String),
    /// Path-loss model parameters rejected by [`PathLoss::validate`].
    PathLoss(String),
    /// Battery parameters rejected by `BatteryConfig::validate`.
    Battery(String),
    /// Duty-cycle parameters rejected by `DutyCycleConfig::validate`.
    DutyCycle(String),
    /// Energy-aware-routing parameters rejected by
    /// [`EnergyRoutingConfig::validate`], or routing requested without a
    /// battery to advertise.
    EnergyRouting(String),
    /// A [`crate::scenario::Scenario`] failed to lower: its declarative
    /// fields are inconsistent before they ever reach an
    /// [`ExperimentConfig`].
    Scenario {
        /// The scenario's name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Node placement failed: the sampled geometry never produced a
    /// connected network within the resampling budget.
    Placement(String),
    /// The worker-thread knob is unusable (zero workers would leave the
    /// flood-plane fan-outs with nobody to run them).
    Workers(String),
    /// The routing-backend knob clashes with another knob (today:
    /// hierarchical routing cannot consume energy-weighted tables).
    RoutingBackend(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Topology(r) => write!(f, "topology: {r}"),
            ConfigError::Flow { index, reason } => write!(f, "flow {index}: {reason}"),
            ConfigError::Dynamics { index, reason } => write!(f, "dynamics {index}: {reason}"),
            ConfigError::Mobility(r) => write!(f, "mobility: {r}"),
            ConfigError::Timing(r) => write!(f, "timing: {r}"),
            ConfigError::Jtp(r) => write!(f, "jtp: {r}"),
            ConfigError::PathLoss(r) => write!(f, "pathloss: {r}"),
            ConfigError::Battery(r) => write!(f, "battery: {r}"),
            ConfigError::DutyCycle(r) => write!(f, "duty cycle: {r}"),
            ConfigError::EnergyRouting(r) => write!(f, "energy routing: {r}"),
            ConfigError::Scenario { name, reason } => write!(f, "scenario {name:?}: {reason}"),
            ConfigError::Placement(r) => write!(f, "placement: {r}"),
            ConfigError::Workers(r) => write!(f, "workers: {r}"),
            ConfigError::RoutingBackend(r) => write!(f, "routing backend: {r}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which routing backend maintains the per-node link-state views.
///
/// `Exact` is the historical flat-table machinery: full n×n distance
/// tables with incremental BFS-row repair — every golden trace in the
/// repository was produced by it and stays byte-identical under it.
/// `Hierarchical` partitions the network into connected clusters (derived
/// from the topology: grid blocks, the clustered family's natural groups,
/// or ⌈√n⌉ BFS-grown patches) and keeps exact tables only within each
/// cluster plus one distance-to-cluster row per cluster — O(n·√n)-ish
/// state instead of O(n²), at the cost of bounded route stretch
/// (≤ destination-cluster diameter). Traces differ from `Exact` wherever
/// an inter-cluster route takes a lawful-but-longer path, so goldens are
/// pinned per backend. Hierarchical routing does not consume
/// energy-advertised weights; combining it with
/// [`ExperimentConfig::energy_aware_routing`] is rejected by
/// [`ExperimentConfig::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RoutingBackendKind {
    /// Flat exact tables with incremental repair (the default; all
    /// pre-existing goldens).
    #[default]
    Exact,
    /// Cluster-partitioned tables: exact intra-cluster, summarized
    /// inter-cluster, loop-free with bounded stretch.
    Hierarchical,
}

/// Which transport protocol a flow (and the whole run) uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// JTP with in-network caching (the paper's protocol).
    Jtp,
    /// JTP with caching disabled (the paper's JNC comparison).
    Jnc,
    /// Rate-based TCP-SACK.
    Tcp,
    /// ATP-like explicit-rate transport.
    Atp,
    /// CUBIC (RFC 8312) window curve, rate-paced.
    Cubic,
    /// BBR bandwidth/RTT path model with pacing-gain cycling.
    Bbr,
}

impl TransportKind {
    /// Transports that only support full-reliability transfers (loss
    /// tolerance 0): every non-JTP baseline.
    pub fn requires_full_reliability(self) -> bool {
        matches!(
            self,
            TransportKind::Tcp | TransportKind::Atp | TransportKind::Cubic | TransportKind::Bbr
        )
    }
}

/// Node placement.
#[derive(Clone, Debug)]
pub enum TopologyKind {
    /// `n` nodes in a chain, neighbours `spacing_m` apart (§6.1.1).
    Linear {
        /// Node count.
        n: usize,
        /// Inter-node spacing in metres.
        spacing_m: f64,
    },
    /// `n` nodes uniform in a square field sized for connectivity with
    /// high probability (§6.1.2); resampled until connected.
    Random {
        /// Node count.
        n: usize,
        /// Field side in metres.
        field_side_m: f64,
    },
    /// `cols × rows` nodes on a regular lattice, `spacing_m` apart. With
    /// the default 80 m spacing and the 100 m radio range the lattice is
    /// 4-connected (diagonals are out of range), giving the multipath-rich
    /// mesh the scenario engine's cross-traffic patterns want.
    Grid {
        /// Columns (node id = `row * cols + col`).
        cols: usize,
        /// Rows.
        rows: usize,
        /// Lattice spacing in metres.
        spacing_m: f64,
    },
    /// `clusters × per_cluster` nodes in dense clusters whose centres sit
    /// on a coarse lattice: intra-cluster links are short and strong,
    /// inter-cluster connectivity funnels through the few nodes near the
    /// cluster edges. Resampled (deterministically) until connected.
    Clustered {
        /// Number of clusters (centres on a near-square lattice).
        clusters: usize,
        /// Nodes per cluster.
        per_cluster: usize,
        /// Maximum node distance from its cluster centre, in metres.
        spread_m: f64,
        /// Distance between adjacent cluster centres, in metres.
        cluster_spacing_m: f64,
    },
}

impl TopologyKind {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            TopologyKind::Linear { n, .. } | TopologyKind::Random { n, .. } => *n,
            TopologyKind::Grid { cols, rows, .. } => cols * rows,
            TopologyKind::Clustered {
                clusters,
                per_cluster,
                ..
            } => clusters * per_cluster,
        }
    }
}

/// One scheduled change to the network substrate (node churn, link
/// blackouts, partitions). Actions take effect instantaneously at their
/// scheduled time and are advertised to routing as a flooded link-state
/// update; data already in flight keeps failing at the channel until the
/// views converge — exactly the transient the recovery machinery must
/// absorb.
#[derive(Clone, Debug, PartialEq)]
pub enum DynamicsAction {
    /// The node crashes: its MAC queue is lost, it stops transmitting and
    /// receiving, and its links vanish from the advertised topology.
    NodeDown(NodeId),
    /// The node recovers with an empty queue.
    NodeUp(NodeId),
    /// The undirected link is blacked out (jammed / obstructed) even if
    /// the radios are in range.
    LinkDown(NodeId, NodeId),
    /// The blackout lifts.
    LinkUp(NodeId, NodeId),
    /// Every link between the listed group and the rest of the network
    /// blacks out — a clean network partition. At most one partition is
    /// active at a time.
    PartitionStart(Vec<NodeId>),
    /// The partition heals.
    PartitionEnd,
    /// A correlated area failure: every node within `radius_m` of the
    /// point `(x_m, y_m)` crashes at once (queues lost, links gone). The
    /// spatially-correlated analogue of [`DynamicsAction::NodeDown`];
    /// victims can be revived individually with `NodeUp`.
    ///
    /// **Disc semantics under mobility**: the victim set is sampled from
    /// node positions **at the instant the event fires** — i.e. the
    /// positions as of the last mobility tick before (or at) the blast
    /// time — not from the initial placement. A node that wandered into
    /// the disc by then dies; one that wandered out survives. Pinned by
    /// `lifetime::area_failure_under_mobility_samples_positions_at_event_time`.
    AreaFail {
        /// Blast centre x (metres).
        x_m: f64,
        /// Blast centre y (metres).
        y_m: f64,
        /// Blast radius (metres).
        radius_m: f64,
    },
}

/// A dynamics action with its activation time.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicsEvent {
    /// When the action takes effect.
    pub at: SimDuration,
    /// What happens.
    pub action: DynamicsAction,
}

impl DynamicsEvent {
    /// Convenience constructor from seconds.
    pub fn at_s(at_s: f64, action: DynamicsAction) -> Self {
        DynamicsEvent {
            at: SimDuration::from_secs_f64(at_s),
            action,
        }
    }
}

/// Random-waypoint mobility parameters (None = static network).
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Movement speed (paper: 0.1 / 1 / 5 m/s).
    pub speed_mps: f64,
    /// Mean leg length (paper: 47 m).
    pub mean_leg_m: f64,
    /// Mean pause (paper: 100 s).
    pub mean_pause_s: f64,
    /// Position/topology re-evaluation period.
    pub update_period: SimDuration,
}

impl MobilityConfig {
    /// The paper's §6.1.2 parameterisation at the given speed.
    pub fn paper(speed_mps: f64) -> Self {
        MobilityConfig {
            speed_mps,
            mean_leg_m: 47.0,
            mean_pause_s: 100.0,
            update_period: SimDuration::from_secs(1),
        }
    }
}

/// Energy-aware routing parameters: nodes periodically advertise their
/// residual battery fraction, quantised into a per-node forwarding weight;
/// the link-state layer then routes on residual-energy-weighted shortest
/// paths (max-min-lifetime style) instead of raw hop counts.
#[derive(Clone, Copy, Debug)]
pub struct EnergyRoutingConfig {
    /// How often residual-energy advertisements flood the network.
    pub advert_period: SimDuration,
    /// Quantisation levels above the base weight: a full battery weighs 1,
    /// an empty one `1 + levels`. Coarse levels keep re-floods rare.
    pub levels: u16,
    /// Extra weight once a node falls below its battery's low-power
    /// threshold — the max-min hammer that makes nearly-drained relays a
    /// last resort.
    pub low_penalty: u16,
}

impl Default for EnergyRoutingConfig {
    fn default() -> Self {
        EnergyRoutingConfig {
            advert_period: SimDuration::from_secs(10),
            levels: 7,
            low_penalty: 24,
        }
    }
}

impl EnergyRoutingConfig {
    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.advert_period.is_zero() {
            return Err("energy routing advert period must be positive".into());
        }
        if self.levels == 0 {
            return Err("energy routing needs at least one quantisation level".into());
        }
        // The heaviest advertised weight is 1 + levels + low_penalty (a
        // dead node); it must fit the u16 weight lattice.
        if 1 + self.levels as u32 + self.low_penalty as u32 > u16::MAX as u32 {
            return Err("energy routing weights overflow u16: shrink levels/low_penalty".into());
        }
        Ok(())
    }
}

/// One flow of the workload.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the transfer starts.
    pub start: SimDuration,
    /// Packets to transfer (800-byte payloads by default).
    pub packets: u32,
    /// End-to-end loss tolerance (0.0 = full reliability; only JTP uses
    /// values other than 0).
    pub loss_tolerance: f64,
    /// Initial sending rate override (pps). None = protocol default.
    /// Short-lived bursts that arrive "hot" are modelled by setting this
    /// above the default 1 pps.
    pub initial_rate_pps: Option<f64>,
}

impl FlowSpec {
    /// A full-reliability flow with protocol-default initial rate.
    pub fn new(src: NodeId, dst: NodeId, start: SimDuration, packets: u32) -> Self {
        FlowSpec {
            src,
            dst,
            start,
            packets,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        }
    }
}

/// Full experiment description.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Placement of nodes.
    pub topology: TopologyKind,
    /// Protocol under test.
    pub transport: TransportKind,
    /// Flows; empty means "one bulk flow end-to-end" filled at build time.
    pub flows: Vec<FlowSpec>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// TDMA slot length.
    pub slot: SimDuration,
    /// MAC parameters.
    pub mac: MacConfig,
    /// JTP parameters (used by Jtp/Jnc runs).
    pub jtp: JtpConfig,
    /// TCP parameters (Tcp runs).
    pub tcp: TcpConfig,
    /// ATP parameters (Atp runs).
    pub atp: AtpConfig,
    /// CUBIC parameters (Cubic runs).
    pub cubic: CubicConfig,
    /// BBR parameters (Bbr runs).
    pub bbr: BbrConfig,
    /// Distance → loss model.
    pub pathloss: PathLoss,
    /// Good/bad channel process.
    pub gilbert: GilbertConfig,
    /// Radio energy parameters.
    pub energy: RadioEnergyModel,
    /// Finite per-node energy budgets (None = the paper's tally-only
    /// monitor: joules are counted but never run out). With a battery,
    /// radio charges plus a per-frame idle/sleep draw deplete each node;
    /// a depleted node dies for good — the lifetime subsystem's core knob.
    pub battery: Option<BatteryConfig>,
    /// Duty-cycled sleep schedule (None = always listening). Sleeping
    /// nodes keep transmitting in their owned slots but do not receive,
    /// and pay the battery's sleep draw instead of the idle draw.
    pub duty_cycle: Option<DutyCycleConfig>,
    /// Residual-energy-aware routing (None = hop-count shortest paths).
    /// Requires a battery: the advertised weights are residual fractions.
    pub energy_routing: Option<EnergyRoutingConfig>,
    /// Mobility (None = static).
    pub mobility: Option<MobilityConfig>,
    /// Scheduled substrate dynamics: node churn, link blackouts,
    /// partitions. Empty = a static, always-healthy substrate.
    pub dynamics: Vec<DynamicsEvent>,
    /// Link-state view refresh interval.
    pub routing_refresh: SimDuration,
    /// Periodic delayed-ACK flush for TCP receivers.
    pub tcp_ack_flush: SimDuration,
    /// Skip TDMA slots owned by nodes with empty MAC queues, jumping the
    /// event clock straight to the next busy slot. Observationally
    /// identical to firing every slot (idle-slot statistics are replayed
    /// exactly), but collapses idle stretches from O(slots) events to
    /// O(1). Disable only to cross-check the engine against the naive
    /// per-slot loop.
    pub idle_slot_skipping: bool,
    /// Keep at most one pending sender wakeup per flow (an earlier request
    /// cancels a later one). The pre-overhaul engine spawned a fresh
    /// wakeup chain per ACK arrival that never died — O(acks²) no-op
    /// timer events per flow. Disable only to benchmark against that
    /// behaviour.
    pub wakeup_coalescing: bool,
    /// Maintain the effective ground truth and the energy-weighted
    /// routing table **incrementally** per dynamics event / energy
    /// re-advertisement (a node failure touches its incident edges, a
    /// weight change repairs only the affected shortest-path regions).
    /// Disable to run the legacy from-scratch rebuilds — O(n²) truth +
    /// O(n³) weighted Dijkstra per change — for benchmarking; results
    /// are byte-identical in both modes.
    pub incremental_rebuilds: bool,
    /// Worker threads for the partitioned flood-plane engine: every
    /// flooded advertisement's routing recomputation (BFS row repairs,
    /// weighted-APSP repairs, next-hop row rebuilds) is partitioned
    /// across this many scoped threads in contiguous source chunks and
    /// merged in source order at the flood's virtual time. A **pure
    /// performance knob**: traces, metrics and golden digests are
    /// byte-identical for every value (1, the default, is today's fully
    /// sequential path; values above the node count clamp to one node
    /// per partition). The sequential TDMA event plane is the
    /// conservative synchronizer — see ARCHITECTURE.md, "Partitioned
    /// flood-plane engine".
    pub workers: usize,
    /// Which routing backend maintains per-node views (see
    /// [`RoutingBackendKind`]). `Exact` (the default) reproduces every
    /// historical trace byte-for-byte; `Hierarchical` trades bounded
    /// route stretch for sub-quadratic routing state, opening the
    /// 1000-node scenario families.
    pub routing_backend: RoutingBackendKind,
}

impl ExperimentConfig {
    fn base(topology: TopologyKind) -> Self {
        ExperimentConfig {
            topology,
            transport: TransportKind::Jtp,
            flows: Vec::new(),
            duration: SimDuration::from_secs(1000),
            seed: 1,
            slot: SimDuration::from_millis(25),
            mac: MacConfig::default(),
            jtp: JtpConfig::default(),
            tcp: TcpConfig::default(),
            atp: AtpConfig::default(),
            cubic: CubicConfig::default(),
            bbr: BbrConfig::default(),
            pathloss: PathLoss::javelen_default(),
            gilbert: GilbertConfig::paper_default(),
            energy: RadioEnergyModel::javelen_default(),
            battery: None,
            duty_cycle: None,
            energy_routing: None,
            mobility: None,
            dynamics: Vec::new(),
            routing_refresh: SimDuration::from_secs(5),
            tcp_ack_flush: SimDuration::from_millis(500),
            idle_slot_skipping: true,
            wakeup_coalescing: true,
            incremental_rebuilds: true,
            workers: 1,
            routing_backend: RoutingBackendKind::Exact,
        }
    }

    /// A config over an explicit topology, with paper-default substrate
    /// parameters (the entry point the scenario engine lowers through).
    ///
    /// Constructors never panic: an unusable topology (fewer than two
    /// nodes, degenerate geometry) is reported by [`Self::validate`],
    /// which every run entry point calls before building a network.
    pub fn with_topology(topology: TopologyKind) -> Self {
        Self::base(topology)
    }

    /// A linear chain of `n` nodes, 55 m spacing (full-quality links,
    /// single-hop neighbours only).
    pub fn linear(n: usize) -> Self {
        Self::base(TopologyKind::Linear { n, spacing_m: 55.0 })
    }

    /// `n` nodes uniform in a square field sized for connectivity
    /// (side = 60·√n metres, mean degree ≈ 8 at 100 m range).
    pub fn random(n: usize) -> Self {
        let side = 60.0 * (n as f64).sqrt();
        Self::base(TopologyKind::Random {
            n,
            field_side_m: side,
        })
    }

    /// A `cols × rows` lattice, 80 m spacing (4-connected at the 100 m
    /// radio range).
    pub fn grid(cols: usize, rows: usize) -> Self {
        Self::base(TopologyKind::Grid {
            cols,
            rows,
            spacing_m: 80.0,
        })
    }

    /// `clusters` dense clusters of `per_cluster` nodes: 25 m spread
    /// around centres 90 m apart, so clusters interconnect only through
    /// their rims.
    pub fn clustered(clusters: usize, per_cluster: usize) -> Self {
        Self::base(TopologyKind::Clustered {
            clusters,
            per_cluster,
            spread_m: 25.0,
            cluster_spacing_m: 90.0,
        })
    }

    /// Select the transport protocol. `Jnc` also disables JTP caching.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        if t == TransportKind::Jnc {
            self.jtp.caching_enabled = false;
        }
        self
    }

    /// Set the simulated duration in seconds.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.duration = SimDuration::from_secs_f64(s);
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a flow.
    pub fn flow(mut self, spec: FlowSpec) -> Self {
        self.flows.push(spec);
        self
    }

    /// Enable random-waypoint mobility at the paper's parameters.
    pub fn mobile(mut self, speed_mps: f64) -> Self {
        self.mobility = Some(MobilityConfig::paper(speed_mps));
        self
    }

    /// Give every node a finite battery.
    pub fn battery(mut self, battery: BatteryConfig) -> Self {
        self.battery = Some(battery);
        self
    }

    /// Put every node on a duty-cycled sleep schedule.
    pub fn duty_cycle(mut self, duty: DutyCycleConfig) -> Self {
        self.duty_cycle = Some(duty);
        self
    }

    /// Route on residual-energy-weighted shortest paths (default
    /// parameters). Requires [`ExperimentConfig::battery`].
    pub fn energy_aware_routing(mut self) -> Self {
        self.energy_routing = Some(EnergyRoutingConfig::default());
        self
    }

    /// Schedule a substrate dynamics event.
    pub fn dynamic(mut self, ev: DynamicsEvent) -> Self {
        self.dynamics.push(ev);
        self
    }

    /// Set the worker-thread count for the partitioned flood-plane
    /// engine (see [`ExperimentConfig::workers`]). Byte-identical output
    /// for every value ≥ 1; zero is rejected by [`Self::validate`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Select the routing backend (see [`RoutingBackendKind`]). The
    /// hierarchical backend is incompatible with
    /// [`ExperimentConfig::energy_aware_routing`]; the combination is
    /// rejected by [`Self::validate`].
    pub fn routing_backend(mut self, kind: RoutingBackendKind) -> Self {
        self.routing_backend = kind;
        self
    }

    /// Convenience: one bulk transfer of `packets` packets from node 0 to
    /// the last node, starting at `start_s`, with loss tolerance `lt`.
    pub fn bulk_flow(self, packets: u32, start_s: f64, lt: f64) -> Self {
        let n = self.topology.node_count();
        let spec = FlowSpec {
            src: NodeId(0),
            dst: NodeId(n.saturating_sub(1) as u32),
            start: SimDuration::from_secs_f64(start_s),
            packets,
            loss_tolerance: lt,
            initial_rate_pps: None,
        };
        self.flow(spec)
    }

    /// Validate cross-field consistency. The single choke point every run
    /// entry point (`Network::try_new`, `try_run_experiment`,
    /// `Scenario::try_build`) passes through: a config that validates
    /// runs without panicking, however degenerate its outcome.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let n = self.topology.node_count();
        if n < 2 {
            return Err(ConfigError::Topology(format!(
                "need at least source and destination (got {n} nodes)"
            )));
        }
        self.validate_topology_geometry()?;
        self.validate_timing()?;
        if self.workers == 0 {
            return Err(ConfigError::Workers(
                "worker count must be at least 1 (1 = sequential engine)".into(),
            ));
        }
        self.jtp.validate().map_err(ConfigError::Jtp)?;
        self.pathloss.validate().map_err(ConfigError::PathLoss)?;
        if let Some(b) = &self.battery {
            b.validate().map_err(ConfigError::Battery)?;
        }
        if let Some(d) = &self.duty_cycle {
            d.validate().map_err(ConfigError::DutyCycle)?;
        }
        if let Some(e) = &self.energy_routing {
            e.validate().map_err(ConfigError::EnergyRouting)?;
            if self.battery.is_none() {
                return Err(ConfigError::EnergyRouting(
                    "needs a battery (weights are residual fractions)".into(),
                ));
            }
            if self.routing_backend == RoutingBackendKind::Hierarchical {
                return Err(ConfigError::RoutingBackend(
                    "hierarchical routing cannot consume energy-weighted tables \
                     (cluster summaries are hop-count only); use the exact backend"
                        .into(),
                ));
            }
        }
        if let Some(m) = &self.mobility {
            if m.update_period.is_zero() {
                return Err(ConfigError::Mobility(
                    "update period must be positive (zero would re-tick forever at one instant)"
                        .into(),
                ));
            }
            if !m.speed_mps.is_finite() || m.speed_mps < 0.0 {
                return Err(ConfigError::Mobility(format!(
                    "speed must be finite and non-negative (got {} m/s)",
                    m.speed_mps
                )));
            }
            if !m.mean_leg_m.is_finite() || m.mean_leg_m <= 0.0 {
                return Err(ConfigError::Mobility(format!(
                    "mean leg must be finite and positive (got {} m)",
                    m.mean_leg_m
                )));
            }
            if !m.mean_pause_s.is_finite() || m.mean_pause_s < 0.0 {
                return Err(ConfigError::Mobility(format!(
                    "mean pause must be finite and non-negative (got {} s)",
                    m.mean_pause_s
                )));
            }
        }
        for (i, f) in self.flows.iter().enumerate() {
            let flow_err = |reason: String| ConfigError::Flow { index: i, reason };
            if f.src.index() >= n || f.dst.index() >= n {
                return Err(flow_err("endpoints outside topology".into()));
            }
            if f.src == f.dst {
                return Err(flow_err("identical endpoints".into()));
            }
            if !(0.0..=1.0).contains(&f.loss_tolerance) {
                return Err(flow_err(format!(
                    "loss tolerance {} outside [0,1]",
                    f.loss_tolerance
                )));
            }
            if self.transport.requires_full_reliability() && f.loss_tolerance != 0.0 {
                return Err(flow_err(format!(
                    "{:?} only supports full reliability",
                    self.transport
                )));
            }
            if let Some(r) = f.initial_rate_pps {
                if !r.is_finite() || r <= 0.0 {
                    return Err(flow_err(format!(
                        "initial rate must be finite and positive (got {r} pps)"
                    )));
                }
            }
        }
        for (i, ev) in self.dynamics.iter().enumerate() {
            let dyn_err = |reason: String| ConfigError::Dynamics { index: i, reason };
            match &ev.action {
                DynamicsAction::NodeDown(v) | DynamicsAction::NodeUp(v) => {
                    if v.index() >= n {
                        return Err(dyn_err(format!("node {v} outside topology")));
                    }
                }
                DynamicsAction::LinkDown(a, b) | DynamicsAction::LinkUp(a, b) => {
                    if a.index() >= n || b.index() >= n {
                        return Err(dyn_err("link endpoint outside topology".into()));
                    }
                    if a == b {
                        return Err(dyn_err("link endpoints identical".into()));
                    }
                }
                DynamicsAction::PartitionStart(group) => {
                    if group.is_empty() || group.len() >= n {
                        return Err(dyn_err(
                            "partition group must be a non-empty proper subset".into(),
                        ));
                    }
                    if group.iter().any(|v| v.index() >= n) {
                        return Err(dyn_err("partition member outside topology".into()));
                    }
                }
                DynamicsAction::PartitionEnd => {}
                DynamicsAction::AreaFail {
                    x_m, y_m, radius_m, ..
                } => {
                    if !radius_m.is_finite() || *radius_m <= 0.0 {
                        return Err(dyn_err(format!(
                            "area failure radius must be finite and positive (got {radius_m} m)"
                        )));
                    }
                    if !x_m.is_finite() || !y_m.is_finite() {
                        return Err(dyn_err("area failure centre must be finite".into()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Geometry sanity for the four placement families: every length that
    /// feeds the position sampler must be finite and positive, else
    /// distances go NaN and "resample until connected" never terminates.
    fn validate_topology_geometry(&self) -> Result<(), ConfigError> {
        let positive = |what: &str, v: f64| -> Result<(), ConfigError> {
            if !v.is_finite() || v <= 0.0 {
                Err(ConfigError::Topology(format!(
                    "{what} must be finite and positive (got {v} m)"
                )))
            } else {
                Ok(())
            }
        };
        match &self.topology {
            TopologyKind::Linear { spacing_m, .. } => positive("chain spacing", *spacing_m),
            TopologyKind::Random { field_side_m, .. } => positive("field side", *field_side_m),
            TopologyKind::Grid { spacing_m, .. } => positive("lattice spacing", *spacing_m),
            TopologyKind::Clustered {
                spread_m,
                cluster_spacing_m,
                ..
            } => {
                positive("cluster spacing", *cluster_spacing_m)?;
                positive("cluster spread", *spread_m)?;
                // Discs must stay inside the implied deployment field
                // (whose cells are cluster_spacing wide, centres at cell
                // midpoints): otherwise mobility clamping would silently
                // move nodes off the connectivity-checked placement.
                if *spread_m > cluster_spacing_m / 2.0 {
                    return Err(ConfigError::Topology(format!(
                        "clustered spread ({spread_m} m) must be in \
                         (0, cluster_spacing/2 = {} m]",
                        cluster_spacing_m / 2.0
                    )));
                }
                Ok(())
            }
        }
    }

    /// Every period that re-schedules `now + period` must be positive, or
    /// the event loop re-fires forever at one instant. `SimDuration`
    /// construction already clamps negative/NaN seconds to zero, so a
    /// zero check covers the whole malformed range.
    fn validate_timing(&self) -> Result<(), ConfigError> {
        if self.duration.is_zero() {
            return Err(ConfigError::Timing(
                "simulated duration must be positive".into(),
            ));
        }
        if self.slot.is_zero() {
            return Err(ConfigError::Timing(
                "TDMA slot length must be positive".into(),
            ));
        }
        if self.tcp_ack_flush.is_zero() {
            return Err(ConfigError::Timing(
                "TCP ack-flush period must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_config() {
        let cfg = ExperimentConfig::linear(5)
            .transport(TransportKind::Jtp)
            .duration_s(500.0)
            .seed(7)
            .bulk_flow(100, 10.0, 0.1);
        cfg.validate().unwrap();
        assert_eq!(cfg.topology.node_count(), 5);
        assert_eq!(cfg.flows.len(), 1);
        assert_eq!(cfg.flows[0].dst, NodeId(4));
    }

    #[test]
    fn jnc_disables_caching() {
        let cfg = ExperimentConfig::linear(3).transport(TransportKind::Jnc);
        assert!(!cfg.jtp.caching_enabled);
    }

    #[test]
    fn tcp_rejects_loss_tolerance() {
        let cfg = ExperimentConfig::linear(3)
            .transport(TransportKind::Tcp)
            .bulk_flow(10, 0.0, 0.2);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn every_baseline_rejects_loss_tolerance() {
        for t in [
            TransportKind::Tcp,
            TransportKind::Atp,
            TransportKind::Cubic,
            TransportKind::Bbr,
        ] {
            assert!(t.requires_full_reliability());
            let cfg = ExperimentConfig::linear(3)
                .transport(t)
                .bulk_flow(10, 0.0, 0.2);
            assert!(cfg.validate().is_err(), "{t:?} must reject tolerance");
            let ok = ExperimentConfig::linear(3)
                .transport(t)
                .bulk_flow(10, 0.0, 0.0);
            ok.validate().unwrap();
        }
        assert!(!TransportKind::Jtp.requires_full_reliability());
        assert!(!TransportKind::Jnc.requires_full_reliability());
    }

    #[test]
    fn flow_endpoint_bounds_checked() {
        let cfg = ExperimentConfig::linear(3).flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            start: SimDuration::ZERO,
            packets: 1,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn workers_zero_rejected_large_values_accepted() {
        let base = ExperimentConfig::linear(3).bulk_flow(5, 0.0, 0.0);
        assert_eq!(base.workers, 1, "sequential by default");
        let zero = base.clone().workers(0);
        assert!(matches!(zero.validate(), Err(ConfigError::Workers(_))));
        assert!(zero.validate().unwrap_err().to_string().contains("workers"));
        // Worker counts above the node count are valid (they clamp to
        // one source per partition inside the routing layer).
        base.clone().workers(64).validate().unwrap();
    }

    #[test]
    fn hierarchical_backend_rejects_energy_routing() {
        let hier = ExperimentConfig::grid(4, 4)
            .bulk_flow(5, 0.0, 0.0)
            .routing_backend(RoutingBackendKind::Hierarchical);
        assert_eq!(
            ExperimentConfig::grid(4, 4).routing_backend,
            RoutingBackendKind::Exact,
            "exact by default"
        );
        hier.validate().unwrap();
        let clash = hier
            .clone()
            .battery(BatteryConfig::javelen_small())
            .energy_aware_routing();
        let err = clash.validate().unwrap_err();
        assert!(matches!(err, ConfigError::RoutingBackend(_)));
        assert!(err.to_string().contains("routing backend"));
        // The same knobs with the exact backend are fine.
        clash
            .routing_backend(RoutingBackendKind::Exact)
            .validate()
            .unwrap();
    }

    #[test]
    fn grid_and_clustered_node_counts() {
        assert_eq!(ExperimentConfig::grid(4, 3).topology.node_count(), 12);
        assert_eq!(ExperimentConfig::clustered(3, 5).topology.node_count(), 15);
    }

    #[test]
    fn clustered_spread_must_fit_the_cell() {
        let mut cfg = ExperimentConfig::clustered(3, 4);
        cfg.validate().unwrap();
        if let TopologyKind::Clustered { spread_m, .. } = &mut cfg.topology {
            *spread_m = 60.0; // > 90/2: discs would spill out of the field
        }
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn dynamics_validation_catches_bad_specs() {
        let ok = ExperimentConfig::linear(4)
            .dynamic(DynamicsEvent::at_s(
                10.0,
                DynamicsAction::NodeDown(NodeId(2)),
            ))
            .dynamic(DynamicsEvent::at_s(20.0, DynamicsAction::NodeUp(NodeId(2))));
        ok.validate().unwrap();
        let bad_node = ExperimentConfig::linear(4).dynamic(DynamicsEvent::at_s(
            1.0,
            DynamicsAction::NodeDown(NodeId(9)),
        ));
        assert!(bad_node.validate().is_err());
        let bad_link = ExperimentConfig::linear(4).dynamic(DynamicsEvent::at_s(
            1.0,
            DynamicsAction::LinkDown(NodeId(1), NodeId(1)),
        ));
        assert!(bad_link.validate().is_err());
        let bad_partition = ExperimentConfig::linear(4).dynamic(DynamicsEvent::at_s(
            1.0,
            DynamicsAction::PartitionStart(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
        ));
        assert!(bad_partition.validate().is_err());
    }

    #[test]
    fn battery_and_duty_cycle_knobs_validate() {
        let ok = ExperimentConfig::linear(4)
            .battery(BatteryConfig::javelen_small())
            .duty_cycle(DutyCycleConfig::half())
            .energy_aware_routing();
        ok.validate().unwrap();
        // Energy routing without a battery has nothing to advertise.
        let orphan = ExperimentConfig::linear(4).energy_aware_routing();
        assert!(orphan.validate().is_err());
        let mut bad_batt = ExperimentConfig::linear(4).battery(BatteryConfig::javelen_small());
        bad_batt.battery.as_mut().unwrap().capacity_j = -1.0;
        assert!(bad_batt.validate().is_err());
        let mut bad_duty = ExperimentConfig::linear(4).duty_cycle(DutyCycleConfig::half());
        bad_duty.duty_cycle.as_mut().unwrap().awake_frames = 0;
        assert!(bad_duty.validate().is_err());
        // Dead-node weight 1 + levels + low_penalty must fit u16.
        let mut overflow = ExperimentConfig::linear(4)
            .battery(BatteryConfig::javelen_small())
            .energy_aware_routing();
        overflow.energy_routing.as_mut().unwrap().levels = u16::MAX;
        assert!(overflow.validate().is_err());
    }

    #[test]
    fn area_failure_radius_validated() {
        let ok = ExperimentConfig::linear(4).dynamic(DynamicsEvent::at_s(
            5.0,
            DynamicsAction::AreaFail {
                x_m: 55.0,
                y_m: 0.0,
                radius_m: 60.0,
            },
        ));
        ok.validate().unwrap();
        let bad = ExperimentConfig::linear(4).dynamic(DynamicsEvent::at_s(
            5.0,
            DynamicsAction::AreaFail {
                x_m: 0.0,
                y_m: 0.0,
                radius_m: 0.0,
            },
        ));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tiny_topologies_error_instead_of_panicking() {
        // Constructors are total; validate() is the choke point.
        for cfg in [
            ExperimentConfig::linear(0),
            ExperimentConfig::linear(1),
            ExperimentConfig::random(1),
            ExperimentConfig::grid(1, 1),
            ExperimentConfig::grid(0, 7),
            ExperimentConfig::clustered(1, 1),
            ExperimentConfig::with_topology(TopologyKind::Linear {
                n: 0,
                spacing_m: 55.0,
            }),
        ] {
            assert!(
                matches!(cfg.validate(), Err(ConfigError::Topology(_))),
                "{:?} should fail topology validation",
                cfg.topology
            );
        }
        // bulk_flow on a zero-node chain must not underflow either.
        let cfg = ExperimentConfig::linear(0).bulk_flow(1, 0.0, 0.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn degenerate_geometry_and_timing_rejected() {
        let mut nan_spacing = ExperimentConfig::linear(3);
        if let TopologyKind::Linear { spacing_m, .. } = &mut nan_spacing.topology {
            *spacing_m = f64::NAN;
        }
        assert!(matches!(
            nan_spacing.validate(),
            Err(ConfigError::Topology(_))
        ));

        let zero_duration = ExperimentConfig::linear(3).duration_s(0.0);
        assert!(matches!(
            zero_duration.validate(),
            Err(ConfigError::Timing(_))
        ));
        // from_secs_f64 clamps NaN/negative to zero, so these funnel into
        // the same rejection.
        let nan_duration = ExperimentConfig::linear(3).duration_s(f64::NAN);
        assert!(nan_duration.validate().is_err());

        let mut zero_slot = ExperimentConfig::linear(3);
        zero_slot.slot = SimDuration::ZERO;
        assert!(matches!(zero_slot.validate(), Err(ConfigError::Timing(_))));

        let mut zero_mob = ExperimentConfig::linear(3).mobile(1.0);
        zero_mob.mobility.as_mut().unwrap().update_period = SimDuration::ZERO;
        assert!(matches!(zero_mob.validate(), Err(ConfigError::Mobility(_))));
        let mut nan_speed = ExperimentConfig::linear(3).mobile(f64::NAN);
        assert!(matches!(
            nan_speed.validate(),
            Err(ConfigError::Mobility(_))
        ));
        nan_speed.mobility = None;
        nan_speed.validate().unwrap();
    }

    #[test]
    fn bad_flow_rates_rejected() {
        let mut cfg = ExperimentConfig::linear(3).bulk_flow(10, 0.0, 0.0);
        cfg.flows[0].initial_rate_pps = Some(f64::INFINITY);
        assert!(matches!(cfg.validate(), Err(ConfigError::Flow { .. })));
        cfg.flows[0].initial_rate_pps = Some(0.0);
        assert!(cfg.validate().is_err());
        cfg.flows[0].initial_rate_pps = Some(8.0);
        cfg.validate().unwrap();
    }

    #[test]
    fn config_error_displays_its_class() {
        let err = ExperimentConfig::linear(1).validate().unwrap_err();
        assert!(err.to_string().contains("topology"));
        let err = ExperimentConfig::linear(3)
            .bulk_flow(1, 0.0, 7.0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("flow 0"));
    }

    #[test]
    fn random_field_scales_with_n() {
        let small = ExperimentConfig::random(4);
        let large = ExperimentConfig::random(25);
        let (
            TopologyKind::Random {
                field_side_m: s, ..
            },
            TopologyKind::Random {
                field_side_m: l, ..
            },
        ) = (small.topology.clone(), large.topology.clone())
        else {
            panic!()
        };
        assert!(l > s);
    }
}
