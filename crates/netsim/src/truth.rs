//! The effective ground truth: geometric connectivity masked by the
//! substrate state, maintained **incrementally** per dynamics event.
//!
//! An edge `{i, j}` exists in the effective truth iff all of:
//!
//! 1. the radios are in range (the *geometric* adjacency, a pure function
//!    of node positions),
//! 2. both endpoints are powered (`node_up` — dynamics churn, area
//!    failures and battery death all clear it),
//! 3. the link is not blacked out (`LinkDown` dynamics),
//! 4. no active partition separates the endpoints.
//!
//! The historical `rebuild_truth` re-derived this from scratch — an
//! O(n²) pair scan with a distance computation per pair — on **every**
//! dynamics event and battery death, which is one of the two walls the
//! scenario engine hit past 16 nodes. [`MaskedTruth`] instead keeps the
//! geometric adjacency cached (it only changes on mobility ticks, which
//! genuinely move every node) and applies each mask change to exactly
//! the edges it can affect: a node failure touches its incident edges, a
//! link blackout touches one edge, a partition change touches the
//! geometric edges whose cut-crossing status changed. Every mutator
//! produces the identical adjacency a from-scratch rebuild would — the
//! skip-engine byte-equivalence suite and this module's tests pin that.

use crate::topology::adjacency_from_positions;
use jtp_phys::{PathLoss, Point};
use jtp_routing::Adjacency;
use jtp_sim::NodeId;

/// Geometric connectivity plus substrate masks (see the module docs).
#[derive(Clone, Debug)]
pub struct MaskedTruth {
    /// Pure in-range connectivity of the current positions.
    geo: Adjacency,
    /// The masked, effective adjacency advertised to routing.
    truth: Adjacency,
    /// `node_up[i]` ⇔ node i is powered.
    node_up: Vec<bool>,
    /// Blacked-out undirected links (dense triangular index).
    blocked: Vec<bool>,
    /// Active partition: side membership per node. At most one at a time.
    partition: Option<Vec<bool>>,
}

impl MaskedTruth {
    /// A fresh truth over `geo` with every node up, no blackouts and no
    /// partition: the effective truth *is* the geometry.
    pub fn new(geo: Adjacency) -> Self {
        let n = geo.len();
        MaskedTruth {
            truth: geo.clone(),
            geo,
            node_up: vec![true; n],
            blocked: vec![false; n * n.saturating_sub(1) / 2],
            partition: None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_up.len()
    }

    /// True when tracking zero nodes.
    pub fn is_empty(&self) -> bool {
        self.node_up.is_empty()
    }

    /// The effective (masked) adjacency — what routing gets flooded with.
    pub fn adjacency(&self) -> &Adjacency {
        &self.truth
    }

    /// The unmasked geometric adjacency.
    pub fn geometry(&self) -> &Adjacency {
        &self.geo
    }

    /// Is the node powered?
    pub fn is_up(&self, v: NodeId) -> bool {
        self.node_up[v.index()]
    }

    /// Is the undirected link `{a, b}` blacked out?
    pub fn link_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked[self.pair_index(a.0.min(b.0), a.0.max(b.0))]
    }

    /// Are `a` and `b` on the same side of the active partition (vacuously
    /// true without one)?
    pub fn same_side(&self, a: NodeId, b: NodeId) -> bool {
        self.partition
            .as_ref()
            .is_none_or(|side| side[a.index()] == side[b.index()])
    }

    /// Dense index of the undirected pair `{lo, hi}` (upper-triangular,
    /// row-major; same layout as the channel table).
    fn pair_index(&self, lo: u32, hi: u32) -> usize {
        let n = self.len();
        let (lo, hi) = (lo as usize, hi as usize);
        debug_assert!(lo < hi && hi < n);
        lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Should the edge `{a, b}` exist under the current geometry + masks?
    fn edge_allowed(&self, a: NodeId, b: NodeId) -> bool {
        self.geo.has_edge(a, b)
            && self.node_up[a.index()]
            && self.node_up[b.index()]
            && !self.link_blocked(a, b)
            && self.same_side(a, b)
    }

    /// Power a node on or off, touching only its incident edges. A crash
    /// severs every incident truth edge; a heal restores exactly the
    /// geometric edges the other masks allow. No-op when already in the
    /// requested state.
    pub fn set_node_up(&mut self, v: NodeId, up: bool) {
        if self.node_up[v.index()] == up {
            return;
        }
        self.node_up[v.index()] = up;
        if up {
            for i in 0..self.geo.neighbors(v).len() {
                let u = self.geo.neighbors(v)[i];
                if self.edge_allowed(v, u) {
                    self.truth.set_edge(v, u, true);
                }
            }
        } else {
            while let Some(&u) = self.truth.neighbors(v).first() {
                self.truth.set_edge(v, u, false);
            }
        }
    }

    /// Black out (or lift the blackout on) one undirected link.
    pub fn set_link_blocked(&mut self, a: NodeId, b: NodeId, blocked: bool) {
        let idx = self.pair_index(a.0.min(b.0), a.0.max(b.0));
        if self.blocked[idx] == blocked {
            return;
        }
        self.blocked[idx] = blocked;
        let want = self.edge_allowed(a, b);
        if self.truth.has_edge(a, b) != want {
            self.truth.set_edge(a, b, want);
        }
    }

    /// Install, replace or clear the partition, touching only the
    /// geometric edges whose cut-crossing status changed (O(edges), not
    /// O(n²)).
    pub fn set_partition(&mut self, side: Option<Vec<bool>>) {
        if let Some(s) = &side {
            assert_eq!(s.len(), self.len(), "one side flag per node");
        }
        let old = std::mem::replace(&mut self.partition, side);
        let cut =
            |p: &Option<Vec<bool>>, i: usize, j: usize| p.as_ref().is_some_and(|s| s[i] != s[j]);
        for i in 0..self.len() {
            let v = NodeId(i as u32);
            for k in 0..self.geo.neighbors(v).len() {
                let u = self.geo.neighbors(v)[k];
                if u.index() <= i {
                    continue;
                }
                if cut(&old, i, u.index()) == cut(&self.partition, i, u.index()) {
                    continue;
                }
                let want = self.edge_allowed(v, u);
                if self.truth.has_edge(v, u) != want {
                    self.truth.set_edge(v, u, want);
                }
            }
        }
    }

    /// Replace the geometric adjacency and re-derive the effective truth
    /// from scratch — the legacy mobility-tick path
    /// (`ExperimentConfig::incremental_rebuilds = false`), kept runnable
    /// as the oracle [`MaskedTruth::apply_geometry_diff`] is pinned
    /// against.
    pub fn set_geometry(&mut self, geo: Adjacency) {
        assert_eq!(geo.len(), self.len(), "geometry node count mismatch");
        self.geo = geo;
        self.truth = self.rebuilt();
    }

    /// Advance the geometric adjacency by its **edge diff**, in place:
    /// only the geometric edges that appeared or vanished are patched
    /// and re-masked, so a mobility tick costs O(changed edges) — no
    /// graph construction, no whole-truth rebuild. `diff` must be the
    /// exact old→new geometry diff (`old.diff_edges(&new)` or
    /// `topology::geometry_edge_diff` against an in-range edge list; the
    /// caller computes it anyway to feed the routing repair). The
    /// resulting truth is identical to [`MaskedTruth::set_geometry`] on
    /// the new geometry: edges untouched by the diff keep a mask status
    /// that cannot have changed, and every touched edge is re-derived
    /// through the same `edge_allowed` predicate the scratch rebuild
    /// applies.
    pub fn apply_geometry_diff(&mut self, diff: &[(NodeId, NodeId, bool)]) {
        for &(a, b, present) in diff {
            self.geo.set_edge(a, b, present);
            let want = present && self.edge_allowed(a, b);
            if self.truth.has_edge(a, b) != want {
                self.truth.set_edge(a, b, want);
            }
        }
    }

    /// Recompute positions → geometry (spatial-grid discovery) → masked
    /// truth in one call, rebuilding the truth from scratch. The live
    /// mobility tick instead applies a geometry *diff*
    /// ([`MaskedTruth::apply_geometry_diff`]); this convenience remains
    /// for tests and one-shot consumers.
    pub fn set_positions(&mut self, positions: &[Point], pathloss: &PathLoss) {
        self.set_geometry(adjacency_from_positions(positions, pathloss));
    }

    /// The effective adjacency derived from scratch — the reference the
    /// incremental mutators must agree with (tests diff against this).
    pub fn rebuilt(&self) -> Adjacency {
        let n = self.len();
        let mut adj = Adjacency::new(n);
        for i in 0..n {
            let v = NodeId(i as u32);
            for &u in self.geo.neighbors(v) {
                if u.index() > i && self.edge_allowed(v, u) {
                    adj.set_edge(v, u, true);
                }
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> MaskedTruth {
        MaskedTruth::new(Adjacency::linear(n))
    }

    #[test]
    fn node_down_severs_and_heal_restores() {
        let mut t = chain(5);
        t.set_node_up(NodeId(2), false);
        assert!(!t.adjacency().has_edge(NodeId(1), NodeId(2)));
        assert!(!t.adjacency().has_edge(NodeId(2), NodeId(3)));
        assert!(t.adjacency().has_edge(NodeId(0), NodeId(1)));
        assert_eq!(*t.adjacency(), t.rebuilt());
        t.set_node_up(NodeId(2), true);
        assert_eq!(*t.adjacency(), Adjacency::linear(5));
    }

    #[test]
    fn heal_respects_other_masks() {
        let mut t = chain(4);
        t.set_node_up(NodeId(1), false);
        t.set_link_blocked(NodeId(1), NodeId(2), true);
        t.set_node_up(NodeId(1), true);
        assert!(t.adjacency().has_edge(NodeId(0), NodeId(1)));
        assert!(
            !t.adjacency().has_edge(NodeId(1), NodeId(2)),
            "blackout must survive the heal"
        );
        assert_eq!(*t.adjacency(), t.rebuilt());
    }

    #[test]
    fn partition_cuts_only_crossing_edges() {
        let mut t = chain(6);
        t.set_partition(Some(vec![true, true, true, false, false, false]));
        assert!(!t.adjacency().has_edge(NodeId(2), NodeId(3)));
        assert!(t.adjacency().has_edge(NodeId(1), NodeId(2)));
        assert_eq!(*t.adjacency(), t.rebuilt());
        // Replace with a different cut in one call.
        t.set_partition(Some(vec![true, false, false, false, false, false]));
        assert!(t.adjacency().has_edge(NodeId(2), NodeId(3)));
        assert!(!t.adjacency().has_edge(NodeId(0), NodeId(1)));
        assert_eq!(*t.adjacency(), t.rebuilt());
        t.set_partition(None);
        assert_eq!(*t.adjacency(), Adjacency::linear(6));
    }

    #[test]
    fn geometry_swap_reapplies_masks() {
        let mut t = chain(4);
        t.set_node_up(NodeId(3), false);
        let mut richer = Adjacency::linear(4);
        richer.set_edge(NodeId(0), NodeId(3), true);
        t.set_geometry(richer);
        assert!(
            !t.adjacency().has_edge(NodeId(0), NodeId(3)),
            "down node stays down through a geometry change"
        );
        assert_eq!(*t.adjacency(), t.rebuilt());
    }

    /// The diffed geometry swap must agree edge-for-edge with the
    /// scratch `set_geometry` under random geometry churn layered over
    /// random masks.
    #[test]
    fn geometry_diff_matches_scratch_swap_under_churn() {
        use jtp_sim::SimRng;
        let n = 12;
        let mut rng = SimRng::derive(123, "geometry-diff-churn");
        let mut fast = MaskedTruth::new(Adjacency::linear(n));
        let mut scratch = MaskedTruth::new(Adjacency::linear(n));
        for step in 0..200 {
            // Random mask churn applied identically to both.
            match rng.below(6) {
                0 => {
                    let v = NodeId(rng.below(n) as u32);
                    let up = fast.is_up(v);
                    fast.set_node_up(v, !up);
                    scratch.set_node_up(v, !up);
                }
                1 => {
                    let a = rng.below(n);
                    let b = rng.below(n);
                    if a != b {
                        let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                        let blocked = fast.link_blocked(a, b);
                        fast.set_link_blocked(a, b, !blocked);
                        scratch.set_link_blocked(a, b, !blocked);
                    }
                }
                2 => {
                    let side: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
                    fast.set_partition(Some(side.clone()));
                    scratch.set_partition(Some(side));
                }
                _ => {
                    // A "mobility tick": flip a few geometric edges.
                    let mut geo = fast.geometry().clone();
                    for _ in 0..1 + rng.below(4) {
                        let a = rng.below(n);
                        let b = rng.below(n);
                        if a != b {
                            let has = geo.has_edge(NodeId(a as u32), NodeId(b as u32));
                            geo.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                        }
                    }
                    let diff = fast.geometry().diff_edges(&geo);
                    fast.apply_geometry_diff(&diff);
                    assert_eq!(*fast.geometry(), geo, "patched geometry drifted");
                    scratch.set_geometry(geo);
                }
            }
            assert_eq!(
                *fast.adjacency(),
                *scratch.adjacency(),
                "step {step}: diffed truth diverged from scratch swap"
            );
            assert_eq!(*fast.adjacency(), fast.rebuilt(), "step {step}");
        }
    }

    /// Randomised mask churn: every incremental step must agree with the
    /// from-scratch reference rebuild.
    #[test]
    fn random_mask_churn_matches_scratch_rebuild() {
        use jtp_sim::SimRng;
        let n = 14;
        let mut geo = Adjacency::linear(n);
        geo.set_edge(NodeId(0), NodeId(9), true);
        geo.set_edge(NodeId(4), NodeId(13), true);
        geo.set_edge(NodeId(2), NodeId(7), true);
        let mut t = MaskedTruth::new(geo);
        let mut rng = SimRng::derive(99, "masked-truth-churn");
        for step in 0..300 {
            match rng.below(8) {
                0 | 1 => {
                    let v = NodeId(rng.below(n) as u32);
                    t.set_node_up(v, !t.is_up(v));
                }
                2 | 3 => {
                    let a = rng.below(n);
                    let b = rng.below(n);
                    if a != b {
                        let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                        let blocked = t.link_blocked(a, b);
                        t.set_link_blocked(a, b, !blocked);
                    }
                }
                4 => {
                    let side: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
                    // A partition must be a proper subset to mean anything,
                    // but the mask machinery handles any side vector.
                    t.set_partition(Some(side));
                }
                5 => t.set_partition(None),
                _ => {
                    let a = rng.below(n);
                    let b = rng.below(n);
                    if a != b {
                        let mut geo = t.geometry().clone();
                        let has = geo.has_edge(NodeId(a as u32), NodeId(b as u32));
                        geo.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                        t.set_geometry(geo);
                    }
                }
            }
            assert_eq!(
                *t.adjacency(),
                t.rebuilt(),
                "step {step}: incremental truth diverged from scratch rebuild"
            );
        }
    }
}
