//! Node placement and ground-truth connectivity.
//!
//! Geometric adjacency is derived through a [`SpatialGrid`] (cell size =
//! radio range): candidate pairs come from same-or-adjacent cells and the
//! **exact same float predicate** (`pathloss.in_range(distance)`) the
//! historical all-pairs scan used decides membership — so the grid path
//! is bit-identical to [`adjacency_from_positions_brute`] (pinned by the
//! boundary tests and the `spatial_grid_matches_brute_force` proptest)
//! while costing O(n·k) per mobility tick instead of O(n²). Never switch
//! the grid path to a squared-distance comparison: `sqrt` rounding can
//! make `d² < r²` and `sqrt(d²) < r` disagree for distances at the range
//! boundary, which would flake every byte-equivalence pin downstream.

use crate::config::{ConfigError, TopologyKind};
use jtp_phys::{Field, PathLoss, Point, SpatialGrid};
use jtp_routing::Adjacency;
use jtp_sim::{NodeId, SimRng};

/// Place nodes according to the topology kind. Random placements are
/// resampled (deterministically from the seed) until the implied
/// connectivity graph is connected — the paper sizes fields so the network
/// "is connected with high probability", we make it a certainty.
///
/// Panics if the resampling budget runs out; [`try_place_nodes`] reports
/// that as [`ConfigError::Placement`] instead.
pub fn place_nodes(kind: &TopologyKind, pathloss: &PathLoss, seed: u64) -> Vec<Point> {
    try_place_nodes(kind, pathloss, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// [`place_nodes`], with placement failure (a field too sparse for its
/// radio range to ever connect within the deterministic resampling
/// budget) reported as [`ConfigError::Placement`] instead of a panic.
pub fn try_place_nodes(
    kind: &TopologyKind,
    pathloss: &PathLoss,
    seed: u64,
) -> Result<Vec<Point>, ConfigError> {
    match kind {
        TopologyKind::Linear { n, spacing_m } => Ok((0..*n)
            .map(|i| Point::new(i as f64 * spacing_m, 0.0))
            .collect()),
        TopologyKind::Random { n, field_side_m } => {
            let field = Field::square(*field_side_m);
            let mut rng = SimRng::derive(seed, "placement");
            for _attempt in 0..1000 {
                let pts: Vec<Point> = (0..*n).map(|_| field.random_point(&mut rng)).collect();
                if adjacency_from_positions(&pts, pathloss).is_connected() {
                    return Ok(pts);
                }
            }
            Err(ConfigError::Placement(format!(
                "could not find a connected placement of {n} nodes in a \
                 {field_side_m} m field after 1000 attempts — enlarge the \
                 range or shrink the field"
            )))
        }
        TopologyKind::Grid {
            cols,
            rows,
            spacing_m,
        } => Ok((0..rows * cols)
            .map(|i| Point::new((i % cols) as f64 * spacing_m, (i / cols) as f64 * spacing_m))
            .collect()),
        TopologyKind::Clustered {
            clusters,
            per_cluster,
            spread_m,
            cluster_spacing_m,
        } => {
            let centers = cluster_centers(*clusters, *cluster_spacing_m);
            let mut rng = SimRng::derive(seed, "placement-clustered");
            for _attempt in 0..1000 {
                let mut pts = Vec::with_capacity(clusters * per_cluster);
                for c in &centers {
                    for _ in 0..*per_cluster {
                        // Uniform in the disc of radius `spread_m` around
                        // the centre (rejection-free: r = R·√u).
                        let r = spread_m * rng.f64().sqrt();
                        let a = rng.uniform(0.0, std::f64::consts::TAU);
                        pts.push(Point::new(c.x + r * a.cos(), c.y + r * a.sin()));
                    }
                }
                if adjacency_from_positions(&pts, pathloss).is_connected() {
                    return Ok(pts);
                }
            }
            Err(ConfigError::Placement(format!(
                "could not find a connected clustered placement \
                 ({clusters}×{per_cluster}, spread {spread_m} m, spacing \
                 {cluster_spacing_m} m) after 1000 attempts"
            )))
        }
    }
}

/// Cluster centres on a near-square lattice, `spacing` apart, offset so
/// every disc of nodes stays inside the positive quadrant.
fn cluster_centers(clusters: usize, spacing: f64) -> Vec<Point> {
    let cols = (clusters as f64).sqrt().ceil() as usize;
    (0..clusters)
        .map(|c| {
            Point::new(
                spacing * (0.5 + (c % cols) as f64),
                spacing * (0.5 + (c / cols) as f64),
            )
        })
        .collect()
}

/// Ground-truth adjacency: an edge wherever two radios are in range.
///
/// Spatial-grid fast path (see the module docs): candidate pairs come
/// from a uniform hash with cell size = `max_range`, the range decision
/// is the identical float predicate the brute-force scan applies, and
/// the result is bit-identical to [`adjacency_from_positions_brute`].
pub fn adjacency_from_positions(positions: &[Point], pathloss: &PathLoss) -> Adjacency {
    let n = positions.len();
    let mut adj = Adjacency::new(n);
    if n < 2 {
        return adj;
    }
    let grid = SpatialGrid::build(positions, grid_cell(pathloss));
    grid.for_each_candidate_pair(|i, j| {
        let d = positions[i as usize].distance(positions[j as usize]);
        if pathloss.in_range(d) {
            adj.set_edge(NodeId(i), NodeId(j), true);
        }
    });
    adj
}

/// Grid cell side for neighbour discovery: the radio range plus a hair
/// of slack, so the adjacent-cell guarantee dominates every float-
/// rounding term in the cell indexing (see [`SpatialGrid::build`]).
fn grid_cell(pathloss: &PathLoss) -> f64 {
    pathloss.max_range * (1.0 + 1e-9)
}

/// The in-range undirected pairs `(a, b)` with `a < b`, sorted
/// lexicographically — the allocation-light form of
/// [`adjacency_from_positions`] the mobility tick consumes: candidates
/// from the spatial grid, membership by the identical float predicate,
/// and **no** per-tick graph construction (the caller diffs the list
/// against the standing geometry via [`geometry_edge_diff`] and patches
/// only what changed).
pub fn edges_from_positions(positions: &[Point], pathloss: &PathLoss) -> Vec<(NodeId, NodeId)> {
    EdgeScratch::new()
        .edges_from_positions(positions, pathloss)
        .to_vec()
}

/// Persistent buffers for [`edges_from_positions`]: the spatial grid's
/// CSR arrays, the packed candidate list and the output edge list are
/// all reused call to call, so a steady-state mobility tick performs
/// zero allocations in neighbour discovery (the buffers grow once to the
/// field's working size and stay). The computed edge set is identical to
/// the free function's — [`EdgeScratch::edges_from_positions`] *is* its
/// implementation.
#[derive(Clone, Debug, Default)]
pub struct EdgeScratch {
    grid: Option<SpatialGrid>,
    packed: Vec<u64>,
    edges: Vec<(NodeId, NodeId)>,
}

impl EdgeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`edges_from_positions`] into the reused buffers: the in-range
    /// undirected pairs `(a, b)` with `a < b`, sorted lexicographically.
    /// The returned slice is valid until the next call.
    pub fn edges_from_positions(
        &mut self,
        positions: &[Point],
        pathloss: &PathLoss,
    ) -> &[(NodeId, NodeId)] {
        self.edges.clear();
        if positions.len() < 2 {
            return &self.edges;
        }
        let cell = grid_cell(pathloss);
        let grid = match &mut self.grid {
            Some(g) => {
                g.rebuild(positions, cell);
                g
            }
            None => self.grid.insert(SpatialGrid::build(positions, cell)),
        };
        // Squared-distance **prefilter only**: a candidate strictly beyond
        // `r·(1+1e-9)` squared provably has `sqrt(d²) > max_range`, so it can
        // be rejected without the sqrt. Everything inside the loose bound
        // still goes through the exact `in_range(distance)` predicate — the
        // boundary decision is never made on squared values (see the module
        // docs), so the result stays bit-identical to the brute scan.
        let rr_loose = (pathloss.max_range * (1.0 + 1e-9)).powi(2);
        let packed = &mut self.packed;
        packed.clear();
        grid.for_each_candidate_pair(|i, j| {
            let (p, q) = (positions[i as usize], positions[j as usize]);
            let d2 = (p.x - q.x) * (p.x - q.x) + (p.y - q.y) * (p.y - q.y);
            if d2 > rr_loose {
                return;
            }
            if pathloss.in_range(p.distance(q)) {
                packed.push((i as u64) << 32 | j as u64);
            }
        });
        // Lexicographic `(a, b)` order == numeric order of the packed keys.
        packed.sort_unstable();
        self.edges.extend(
            packed
                .iter()
                .map(|&k| (NodeId((k >> 32) as u32), NodeId(k as u32))),
        );
        &self.edges
    }
}

/// Diff the standing geometric adjacency against a sorted in-range edge
/// list (from [`edges_from_positions`]): a merge of the two sorted edge
/// streams, O(E_old + E_new), yielding `(a, b, present_in_new)` in
/// ascending `(a, b)` order — the exact shape
/// `MaskedTruth::apply_geometry_edge_diff` and the routing repair eat.
pub fn geometry_edge_diff(
    geo: &Adjacency,
    new_edges: &[(NodeId, NodeId)],
) -> Vec<(NodeId, NodeId, bool)> {
    let mut out = Vec::new();
    let mut it = new_edges.iter().copied().peekable();
    for i in 0..geo.len() {
        let a = NodeId(i as u32);
        for &b in geo.neighbors(a) {
            if b <= a {
                continue;
            }
            // Emit every new edge sorting strictly before (a, b): absent
            // from the old geometry, so it was added.
            while let Some(&(na, nb)) = it.peek() {
                if (na, nb) < (a, b) {
                    out.push((na, nb, true));
                    it.next();
                } else {
                    break;
                }
            }
            if it.peek() == Some(&(a, b)) {
                it.next(); // unchanged edge
            } else {
                out.push((a, b, false)); // vanished from the new list
            }
        }
    }
    for (na, nb) in it {
        out.push((na, nb, true));
    }
    out
}

/// The historical all-pairs scan, kept runnable as the oracle the grid
/// path is pinned against (and as the legacy geometry pass selected by
/// `ExperimentConfig::incremental_rebuilds = false`).
pub fn adjacency_from_positions_brute(positions: &[Point], pathloss: &PathLoss) -> Adjacency {
    let n = positions.len();
    let mut adj = Adjacency::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = positions[i].distance(positions[j]);
            if pathloss.in_range(d) {
                adj.set_edge(NodeId(i as u32), NodeId(j as u32), true);
            }
        }
    }
    adj
}

/// The deployment field implied by a topology (for mobility bounds).
///
/// Degenerate lattices are clamped to the **actual placement extent**: a
/// 1-column grid puts every node at x = 0, so its field is 1 m wide (the
/// `+1.0` slack), not `spacing + 1` — the old `max(1)` clamp inflated the
/// empty axis and let waypoint mobility roam a full spacing off the
/// placement line.
pub fn field_for(kind: &TopologyKind) -> Field {
    // `+1.0` keeps the Field constructor's positive-area invariant when
    // an axis has zero extent (single row/column/node).
    let span = |count: usize, spacing: f64| count.saturating_sub(1) as f64 * spacing + 1.0;
    match kind {
        TopologyKind::Linear { n, spacing_m } => Field::new(span(*n, *spacing_m), 50.0),
        TopologyKind::Random { field_side_m, .. } => Field::square(*field_side_m),
        TopologyKind::Grid {
            cols,
            rows,
            spacing_m,
        } => Field::new(span(*cols, *spacing_m), span(*rows, *spacing_m)),
        TopologyKind::Clustered {
            clusters,
            cluster_spacing_m,
            ..
        } => {
            let cols = (*clusters as f64).sqrt().ceil() as usize;
            let rows = clusters.div_ceil(cols);
            Field::new(
                cols as f64 * cluster_spacing_m,
                rows as f64 * cluster_spacing_m,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyKind;

    fn pl() -> PathLoss {
        PathLoss::javelen_default()
    }

    #[test]
    fn linear_placement_is_a_chain() {
        let kind = TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        };
        let pts = place_nodes(&kind, &pl(), 1);
        let adj = adjacency_from_positions(&pts, &pl());
        // Chain: node i connects to i±1 only (110 m to i±2 is out of range).
        for i in 0..5u32 {
            for j in 0..5u32 {
                let expect = i.abs_diff(j) == 1;
                assert_eq!(adj.has_edge(NodeId(i), NodeId(j)), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn random_placement_is_connected_and_deterministic() {
        let kind = TopologyKind::Random {
            n: 15,
            field_side_m: 60.0 * 15f64.sqrt(),
        };
        let a = place_nodes(&kind, &pl(), 9);
        let b = place_nodes(&kind, &pl(), 9);
        assert_eq!(a.len(), 15);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p, q, "same seed, same placement");
        }
        assert!(adjacency_from_positions(&a, &pl()).is_connected());
        let c = place_nodes(&kind, &pl(), 10);
        assert!(a.iter().zip(&c).any(|(p, q)| p != q), "seeds differ");
    }

    #[test]
    fn edge_scratch_reuse_matches_fresh_computation() {
        // The same scratch walked across many distinct position sets
        // (different sizes, including degenerate ones) must reproduce
        // the free function exactly — buffer reuse is invisible.
        let mut scratch = EdgeScratch::new();
        let mut rng = jtp_sim::SimRng::derive(42, "edge-scratch-test");
        for round in 0..12 {
            let n = match round % 4 {
                0 => 0,
                1 => 1,
                2 => 9,
                _ => 40,
            };
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)))
                .collect();
            let fresh = edges_from_positions(&pts, &pl());
            let reused = scratch.edges_from_positions(&pts, &pl());
            assert_eq!(fresh, reused, "round {round} (n = {n}) diverged");
        }
    }

    #[test]
    fn adjacency_respects_range() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(99.0, 0.0),
            Point::new(250.0, 0.0),
        ];
        let adj = adjacency_from_positions(&pts, &pl());
        assert!(adj.has_edge(NodeId(0), NodeId(1)));
        assert!(!adj.has_edge(NodeId(0), NodeId(2)));
        assert!(!adj.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn grid_placement_is_four_connected_at_80m() {
        let kind = TopologyKind::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 80.0,
        };
        let pts = place_nodes(&kind, &pl(), 1);
        assert_eq!(pts.len(), 12);
        let adj = adjacency_from_positions(&pts, &pl());
        assert!(adj.is_connected());
        // Lattice neighbours only: id = row*cols + col.
        for i in 0..12u32 {
            let (r, c) = (i / 4, i % 4);
            for j in 0..12u32 {
                let (r2, c2) = (j / 4, j % 4);
                let lattice_adjacent = r.abs_diff(r2) + c.abs_diff(c2) == 1;
                assert_eq!(adj.has_edge(NodeId(i), NodeId(j)), lattice_adjacent);
            }
        }
    }

    #[test]
    fn clustered_placement_is_connected_deterministic_and_clustered() {
        let kind = TopologyKind::Clustered {
            clusters: 3,
            per_cluster: 4,
            spread_m: 25.0,
            cluster_spacing_m: 90.0,
        };
        let a = place_nodes(&kind, &pl(), 5);
        let b = place_nodes(&kind, &pl(), 5);
        assert_eq!(a.len(), 12);
        assert_eq!(a, b, "same seed, same placement");
        assert!(adjacency_from_positions(&a, &pl()).is_connected());
        let f = field_for(&kind);
        for p in &a {
            assert!(f.contains(*p), "node outside implied field: {p:?}");
        }
        // Nodes of one cluster sit within 2×spread of each other.
        for c in 0..3 {
            for i in 0..4 {
                for j in 0..4 {
                    let d = a[c * 4 + i].distance(a[c * 4 + j]);
                    assert!(d <= 50.0 + 1e-9, "intra-cluster distance {d}");
                }
            }
        }
    }

    /// The sorted edge list and its merge-diff against a standing
    /// geometry must agree with the full-adjacency oracle across random
    /// placements and perturbations.
    #[test]
    fn edge_list_and_diff_match_adjacency_oracle() {
        let pl = pl();
        let mut rng = SimRng::derive(17, "edge-list-oracle");
        let n = 40;
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)))
            .collect();
        let mut geo = adjacency_from_positions(&pts, &pl);
        for step in 0..60 {
            // Jitter a few nodes (a mobility-tick-shaped perturbation).
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(n);
                pts[i] = Point::new(
                    (pts[i].x + rng.uniform(-30.0, 30.0)).clamp(0.0, 400.0),
                    (pts[i].y + rng.uniform(-30.0, 30.0)).clamp(0.0, 400.0),
                );
            }
            let edges = edges_from_positions(&pts, &pl);
            let expect = adjacency_from_positions_brute(&pts, &pl);
            let diff = geometry_edge_diff(&geo, &edges);
            assert_eq!(
                diff,
                geo.diff_edges(&expect),
                "step {step}: edge-list diff diverged from adjacency diff"
            );
            for &(a, b, present) in &diff {
                geo.set_edge(a, b, present);
            }
            assert_eq!(geo, expect, "step {step}: patched geometry drifted");
        }
    }

    /// The grid path and the brute-force scan must agree **exactly at the
    /// range boundary**: `in_range` is a strict `<` on the float distance,
    /// and the grid path applies the identical predicate (never a squared-
    /// distance shortcut), so a pair at exactly `max_range` is out of
    /// range in both paths and a pair one ULP below is in range in both.
    #[test]
    fn at_boundary_distances_agree_between_grid_and_brute() {
        let pl = pl();
        let r = pl.max_range;
        let just_under = f64::from_bits(r.to_bits() - 1); // nextafter(r, 0)
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(r, 0.0),          // exactly at range: no edge
            Point::new(0.0, just_under), // one ULP inside: edge
            Point::new(r + 1e-9, -r),    // just beyond: no edge to 0
        ];
        let grid = adjacency_from_positions(&pts, &pl);
        let brute = adjacency_from_positions_brute(&pts, &pl);
        assert_eq!(grid, brute, "grid and brute paths diverged at boundary");
        assert!(
            !grid.has_edge(NodeId(0), NodeId(1)),
            "d == max_range is out"
        );
        assert!(grid.has_edge(NodeId(0), NodeId(2)), "d < max_range is in");
        assert!(!grid.has_edge(NodeId(0), NodeId(3)));
    }

    /// Grid-backed adjacency is bit-identical to the all-pairs scan on
    /// assorted placements (the proptest in `tests/` widens the sweep).
    #[test]
    fn grid_adjacency_matches_brute_on_catalog_shapes() {
        let pl = pl();
        for kind in [
            TopologyKind::Grid {
                cols: 10,
                rows: 10,
                spacing_m: 80.0,
            },
            TopologyKind::Clustered {
                clusters: 4,
                per_cluster: 8,
                spread_m: 25.0,
                cluster_spacing_m: 90.0,
            },
            TopologyKind::Random {
                n: 30,
                field_side_m: 330.0,
            },
            TopologyKind::Linear {
                n: 9,
                spacing_m: 55.0,
            },
        ] {
            let pts = place_nodes(&kind, &pl, 3);
            assert_eq!(
                adjacency_from_positions(&pts, &pl),
                adjacency_from_positions_brute(&pts, &pl),
                "grid vs brute diverged on {kind:?}"
            );
        }
    }

    /// A 1-column (or 1-row) grid must imply a field clamped to the
    /// actual placement extent — all nodes sit on the degenerate axis, so
    /// waypoint mobility may not roam a full spacing away from it.
    #[test]
    fn degenerate_grid_fields_clamp_to_placement_extent() {
        let col = TopologyKind::Grid {
            cols: 1,
            rows: 6,
            spacing_m: 80.0,
        };
        let f = field_for(&col);
        assert_eq!(f.width, 1.0, "1-column grid spans 0 m in x (+1 slack)");
        assert_eq!(f.height, 5.0 * 80.0 + 1.0);
        for p in place_nodes(&col, &pl(), 1) {
            assert!(f.contains(p), "placement outside implied field: {p:?}");
        }
        let row = TopologyKind::Grid {
            cols: 6,
            rows: 1,
            spacing_m: 80.0,
        };
        let f = field_for(&row);
        assert_eq!(f.height, 1.0, "1-row grid spans 0 m in y (+1 slack)");
        assert_eq!(f.width, 5.0 * 80.0 + 1.0);
    }

    /// Waypoint mobility over a degenerate grid's implied field stays on
    /// (within 1 m of) the placement axis for the whole run.
    #[test]
    fn waypoint_on_one_column_grid_stays_on_the_axis() {
        use jtp_phys::{MobilityModel, RandomWaypoint};
        use jtp_sim::SimTime;
        let kind = TopologyKind::Grid {
            cols: 1,
            rows: 5,
            spacing_m: 80.0,
        };
        let field = field_for(&kind);
        let pts = place_nodes(&kind, &pl(), 2);
        for (i, start) in pts.into_iter().enumerate() {
            let mut w = RandomWaypoint::new(field, start, 5.0, 47.0, 10.0, 9, i as u64);
            for t in 0..400 {
                let p = w.position_at(SimTime::from_secs_f64(t as f64));
                assert!(
                    (0.0..=1.0).contains(&p.x),
                    "node {i} roamed off the column at t={t}: {p:?}"
                );
                assert!(field.contains(p));
            }
        }
    }

    #[test]
    fn field_covers_linear_span() {
        let kind = TopologyKind::Linear {
            n: 8,
            spacing_m: 55.0,
        };
        let f = field_for(&kind);
        assert!(f.width >= 7.0 * 55.0);
    }
}
