//! Node placement and ground-truth connectivity.

use crate::config::TopologyKind;
use jtp_phys::{Field, PathLoss, Point};
use jtp_routing::Adjacency;
use jtp_sim::{NodeId, SimRng};

/// Place nodes according to the topology kind. Random placements are
/// resampled (deterministically from the seed) until the implied
/// connectivity graph is connected — the paper sizes fields so the network
/// "is connected with high probability", we make it a certainty.
pub fn place_nodes(kind: &TopologyKind, pathloss: &PathLoss, seed: u64) -> Vec<Point> {
    match kind {
        TopologyKind::Linear { n, spacing_m } => (0..*n)
            .map(|i| Point::new(i as f64 * spacing_m, 0.0))
            .collect(),
        TopologyKind::Random { n, field_side_m } => {
            let field = Field::square(*field_side_m);
            let mut rng = SimRng::derive(seed, "placement");
            for _attempt in 0..1000 {
                let pts: Vec<Point> = (0..*n).map(|_| field.random_point(&mut rng)).collect();
                if adjacency_from_positions(&pts, pathloss).is_connected() {
                    return pts;
                }
            }
            panic!(
                "could not find a connected placement of {n} nodes in a \
                 {field_side_m} m field after 1000 attempts — enlarge the \
                 range or shrink the field"
            );
        }
        TopologyKind::Grid {
            cols,
            rows,
            spacing_m,
        } => (0..rows * cols)
            .map(|i| Point::new((i % cols) as f64 * spacing_m, (i / cols) as f64 * spacing_m))
            .collect(),
        TopologyKind::Clustered {
            clusters,
            per_cluster,
            spread_m,
            cluster_spacing_m,
        } => {
            let centers = cluster_centers(*clusters, *cluster_spacing_m);
            let mut rng = SimRng::derive(seed, "placement-clustered");
            for _attempt in 0..1000 {
                let mut pts = Vec::with_capacity(clusters * per_cluster);
                for c in &centers {
                    for _ in 0..*per_cluster {
                        // Uniform in the disc of radius `spread_m` around
                        // the centre (rejection-free: r = R·√u).
                        let r = spread_m * rng.f64().sqrt();
                        let a = rng.uniform(0.0, std::f64::consts::TAU);
                        pts.push(Point::new(c.x + r * a.cos(), c.y + r * a.sin()));
                    }
                }
                if adjacency_from_positions(&pts, pathloss).is_connected() {
                    return pts;
                }
            }
            panic!(
                "could not find a connected clustered placement \
                 ({clusters}×{per_cluster}, spread {spread_m} m, spacing \
                 {cluster_spacing_m} m) after 1000 attempts"
            );
        }
    }
}

/// Cluster centres on a near-square lattice, `spacing` apart, offset so
/// every disc of nodes stays inside the positive quadrant.
fn cluster_centers(clusters: usize, spacing: f64) -> Vec<Point> {
    let cols = (clusters as f64).sqrt().ceil() as usize;
    (0..clusters)
        .map(|c| {
            Point::new(
                spacing * (0.5 + (c % cols) as f64),
                spacing * (0.5 + (c / cols) as f64),
            )
        })
        .collect()
}

/// Ground-truth adjacency: an edge wherever two radios are in range.
pub fn adjacency_from_positions(positions: &[Point], pathloss: &PathLoss) -> Adjacency {
    let n = positions.len();
    let mut adj = Adjacency::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = positions[i].distance(positions[j]);
            if pathloss.in_range(d) {
                adj.set_edge(NodeId(i as u32), NodeId(j as u32), true);
            }
        }
    }
    adj
}

/// The deployment field implied by a topology (for mobility bounds).
pub fn field_for(kind: &TopologyKind) -> Field {
    match kind {
        TopologyKind::Linear { n, spacing_m } => {
            Field::new(((*n - 1).max(1)) as f64 * spacing_m + 1.0, 50.0)
        }
        TopologyKind::Random { field_side_m, .. } => Field::square(*field_side_m),
        TopologyKind::Grid {
            cols,
            rows,
            spacing_m,
        } => Field::new(
            (cols.saturating_sub(1)).max(1) as f64 * spacing_m + 1.0,
            (rows.saturating_sub(1)).max(1) as f64 * spacing_m + 1.0,
        ),
        TopologyKind::Clustered {
            clusters,
            cluster_spacing_m,
            ..
        } => {
            let cols = (*clusters as f64).sqrt().ceil() as usize;
            let rows = clusters.div_ceil(cols);
            Field::new(
                cols as f64 * cluster_spacing_m,
                rows as f64 * cluster_spacing_m,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyKind;

    fn pl() -> PathLoss {
        PathLoss::javelen_default()
    }

    #[test]
    fn linear_placement_is_a_chain() {
        let kind = TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        };
        let pts = place_nodes(&kind, &pl(), 1);
        let adj = adjacency_from_positions(&pts, &pl());
        // Chain: node i connects to i±1 only (110 m to i±2 is out of range).
        for i in 0..5u32 {
            for j in 0..5u32 {
                let expect = i.abs_diff(j) == 1;
                assert_eq!(adj.has_edge(NodeId(i), NodeId(j)), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn random_placement_is_connected_and_deterministic() {
        let kind = TopologyKind::Random {
            n: 15,
            field_side_m: 60.0 * 15f64.sqrt(),
        };
        let a = place_nodes(&kind, &pl(), 9);
        let b = place_nodes(&kind, &pl(), 9);
        assert_eq!(a.len(), 15);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p, q, "same seed, same placement");
        }
        assert!(adjacency_from_positions(&a, &pl()).is_connected());
        let c = place_nodes(&kind, &pl(), 10);
        assert!(a.iter().zip(&c).any(|(p, q)| p != q), "seeds differ");
    }

    #[test]
    fn adjacency_respects_range() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(99.0, 0.0),
            Point::new(250.0, 0.0),
        ];
        let adj = adjacency_from_positions(&pts, &pl());
        assert!(adj.has_edge(NodeId(0), NodeId(1)));
        assert!(!adj.has_edge(NodeId(0), NodeId(2)));
        assert!(!adj.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn grid_placement_is_four_connected_at_80m() {
        let kind = TopologyKind::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 80.0,
        };
        let pts = place_nodes(&kind, &pl(), 1);
        assert_eq!(pts.len(), 12);
        let adj = adjacency_from_positions(&pts, &pl());
        assert!(adj.is_connected());
        // Lattice neighbours only: id = row*cols + col.
        for i in 0..12u32 {
            let (r, c) = (i / 4, i % 4);
            for j in 0..12u32 {
                let (r2, c2) = (j / 4, j % 4);
                let lattice_adjacent = r.abs_diff(r2) + c.abs_diff(c2) == 1;
                assert_eq!(adj.has_edge(NodeId(i), NodeId(j)), lattice_adjacent);
            }
        }
    }

    #[test]
    fn clustered_placement_is_connected_deterministic_and_clustered() {
        let kind = TopologyKind::Clustered {
            clusters: 3,
            per_cluster: 4,
            spread_m: 25.0,
            cluster_spacing_m: 90.0,
        };
        let a = place_nodes(&kind, &pl(), 5);
        let b = place_nodes(&kind, &pl(), 5);
        assert_eq!(a.len(), 12);
        assert_eq!(a, b, "same seed, same placement");
        assert!(adjacency_from_positions(&a, &pl()).is_connected());
        let f = field_for(&kind);
        for p in &a {
            assert!(f.contains(*p), "node outside implied field: {p:?}");
        }
        // Nodes of one cluster sit within 2×spread of each other.
        for c in 0..3 {
            for i in 0..4 {
                for j in 0..4 {
                    let d = a[c * 4 + i].distance(a[c * 4 + j]);
                    assert!(d <= 50.0 + 1e-9, "intra-cluster distance {d}");
                }
            }
        }
    }

    #[test]
    fn field_covers_linear_span() {
        let kind = TopologyKind::Linear {
            n: 8,
            spacing_m: 55.0,
        };
        let f = field_for(&kind);
        assert!(f.width >= 7.0 * 55.0);
    }
}
