//! Topology partitioning and the flood-plane synchronizer.
//!
//! ## What is parallel, and what is provably not
//!
//! The JTP engine's TDMA event plane is *inherently serial* under the
//! byte-identity rule: every slot has one global owner, channel attempts
//! draw from one shared RNG substream (`"channel-attempts"`), and
//! Gilbert–Elliott link states initialise lazily in first-touch order.
//! Splitting that plane across threads would either reorder RNG draws
//! (different bytes) or serialise on a lock per slot (no speedup). So the
//! sequential event loop **is** the conservative synchronizer: it alone
//! advances virtual time, and its lookahead barrier is the next TDMA
//! slot/propagation boundary — no cross-partition event can take effect
//! earlier than the slot in which it is delivered.
//!
//! What *is* embarrassingly parallel is the **flood plane**: when a
//! dissemination flood (churn, energy advert, battery death, mobility
//! tick) lands, the routing layer recomputes per-source state — BFS
//! screen/repair rows, weighted-APSP repairs, next-hop rows. Each source's
//! recomputation is a pure function of the shared pre-flood snapshot: no
//! RNG, no cross-source writes. [`TopologyCut`] fixes the assignment of
//! sources to workers as a pure function of `(n, workers)`, and the
//! workers' timestamped result batches are merged **in ascending source
//! order** at the flood's virtual time — byte-identical to the sequential
//! loop by construction, which is what lets `ExperimentConfig::workers`
//! be a pure performance knob.
//!
//! [`FloodSync`] is the bookkeeping side of that barrier: it records each
//! flood instant (the virtual times at which every partition must have
//! converged on the same routing state) and enforces that those barrier
//! times are monotonic, i.e. that no fan-out is ever merged into the past.

use jtp_sim::par::chunk_ranges;
use jtp_sim::{NodeId, SimTime};
use std::ops::Range;

/// A static cut of the topology into at most `workers` contiguous
/// node-index ranges. The cut is a pure function of `(n, workers)` —
/// identical on every host, every run, every replay — and clamps the
/// worker count into `[1, n]` so `workers > n` degenerates to one node
/// per partition (pinned by `engine_equivalence`'s degenerate tests).
#[derive(Clone, Debug)]
pub struct TopologyCut {
    n: usize,
    ranges: Vec<Range<usize>>,
}

impl TopologyCut {
    /// Cut `n` nodes into at most `workers` contiguous partitions.
    pub fn new(n: usize, workers: usize) -> Self {
        TopologyCut {
            n,
            ranges: chunk_ranges(n, workers),
        }
    }

    /// Number of nodes partitioned.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Effective partition count (`workers` clamped to `[1, n]`).
    pub fn workers(&self) -> usize {
        self.ranges.len()
    }

    /// The contiguous node-index range of each partition, in order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Which partition owns `node`. Partition sizes differ by at most
    /// one element, so ownership is a closed-form division, not a scan.
    pub fn owner_of(&self, node: NodeId) -> usize {
        let i = node.index();
        assert!(i < self.n, "node {i} outside cut of {} nodes", self.n);
        let w = self.ranges.len();
        let base = self.n / w;
        let extra = self.n % w;
        // The first `extra` partitions hold `base + 1` nodes.
        let fat = extra * (base + 1);
        if i < fat {
            i / (base + 1)
        } else {
            extra + (i - fat) / base
        }
    }
}

/// The flood-plane barrier ledger: every recorded instant is a virtual
/// time at which all partitions exchanged their recomputation batches
/// and converged on identical routing state. Purely observational — the
/// sequential event loop provides the ordering; this type asserts it.
#[derive(Clone, Copy, Debug, Default)]
pub struct FloodSync {
    batches: u64,
    last: Option<SimTime>,
}

impl FloodSync {
    /// Record a flood barrier at virtual time `now`. Barriers must be
    /// non-decreasing: the conservative synchronizer never merges a
    /// cross-partition batch into the past (debug-asserted).
    pub fn note_flood(&mut self, now: SimTime) {
        if let Some(last) = self.last {
            debug_assert!(
                now >= last,
                "flood barrier moved backwards: {now:?} < {last:?}"
            );
        }
        self.last = Some(now);
        self.batches += 1;
    }

    /// Cross-partition batch exchanges performed (one per flood barrier).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Virtual time of the most recent barrier, if any flood happened.
    pub fn last_barrier(&self) -> Option<SimTime> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_matches_chunk_ranges_and_owner_is_consistent() {
        for n in [1usize, 2, 5, 13, 100, 121] {
            for workers in [1usize, 2, 3, 4, 8, 64, 200] {
                let cut = TopologyCut::new(n, workers);
                assert_eq!(cut.nodes(), n);
                assert_eq!(cut.workers(), workers.min(n));
                assert_eq!(cut.ranges(), chunk_ranges(n, workers).as_slice());
                for i in 0..n {
                    let owner = cut.owner_of(NodeId(i as u32));
                    assert!(
                        cut.ranges()[owner].contains(&i),
                        "n={n} workers={workers} node {i}: owner {owner} \
                         range {:?}",
                        cut.ranges()[owner]
                    );
                }
            }
        }
    }

    #[test]
    fn workers_beyond_nodes_degenerate_to_singletons() {
        let cut = TopologyCut::new(5, 64);
        assert_eq!(cut.workers(), 5);
        for (i, r) in cut.ranges().iter().enumerate() {
            assert_eq!(r.clone().count(), 1, "partition {i} is a singleton");
            assert_eq!(cut.owner_of(NodeId(i as u32)), i);
        }
    }

    #[test]
    #[should_panic(expected = "outside cut")]
    fn owner_of_out_of_range_panics() {
        TopologyCut::new(4, 2).owner_of(NodeId(4));
    }

    #[test]
    fn flood_sync_counts_and_tracks_monotonic_barriers() {
        let mut sync = FloodSync::default();
        assert_eq!(sync.batches(), 0);
        assert_eq!(sync.last_barrier(), None);
        sync.note_flood(SimTime::from_micros(10));
        sync.note_flood(SimTime::from_micros(10)); // same-instant flood is fine
        sync.note_flood(SimTime::from_micros(25));
        assert_eq!(sync.batches(), 3);
        assert_eq!(sync.last_barrier(), Some(SimTime::from_micros(25)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "moved backwards")]
    fn flood_sync_rejects_time_travel() {
        let mut sync = FloodSync::default();
        sync.note_flood(SimTime::from_micros(25));
        sync.note_flood(SimTime::from_micros(10));
    }
}
