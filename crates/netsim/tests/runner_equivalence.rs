//! The parallel multi-seed runner must be a pure reshuffling of work:
//! for any thread count, `run_many` returns **byte-identical** per-seed
//! metrics to a plain sequential loop of `run_experiment` calls. PR 1
//! asserted a couple of counters; this pins every field via the total
//! JSON encoding, across transports and scenario dynamics.

use jtp_netsim::scenario::{DynamicsSpec, Scenario, TrafficPattern};
use jtp_netsim::{
    run_experiment, run_many, run_many_on, ExperimentConfig, Metrics, TopologyKind, TransportKind,
};
use jtp_sim::NodeId;

fn json(m: &Metrics) -> String {
    serde_json::to_string(m).expect("metrics serialise")
}

/// Per-seed sequential baseline: exactly what `run_many` promises to
/// parallelise.
fn sequential_baseline(cfg: &ExperimentConfig, runs: usize) -> Vec<String> {
    (0..runs)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(i as u64);
            json(&run_experiment(&c))
        })
        .collect()
}

fn assert_batch_identical(cfg: &ExperimentConfig, runs: usize, what: &str) {
    let baseline = sequential_baseline(cfg, runs);
    for threads in [1usize, 2, 3, 8] {
        let batch = run_many_on(cfg, runs, threads);
        assert_eq!(batch.len(), runs, "{what}: wrong replica count");
        for (i, m) in batch.iter().enumerate() {
            assert_eq!(
                json(m),
                baseline[i],
                "{what}: replica {i} diverged at {threads} threads"
            );
        }
    }
    // The auto-threaded entry point too.
    for (i, m) in run_many(cfg, runs).iter().enumerate() {
        assert_eq!(json(m), baseline[i], "{what}: run_many replica {i}");
    }
}

#[test]
fn batches_match_sequential_loops_across_transports() {
    for (t, name) in [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Tcp, "tcp"),
        (TransportKind::Atp, "atp"),
    ] {
        let cfg = ExperimentConfig::linear(4)
            .transport(t)
            .duration_s(250.0)
            .seed(400)
            .bulk_flow(25, 2.0, 0.0);
        assert_batch_identical(&cfg, 5, name);
    }
}

#[test]
fn batches_match_sequential_loops_with_dynamics() {
    let sc = Scenario::new(
        "batch-dynamics",
        TopologyKind::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 80.0,
        },
    )
    .duration_s(300.0)
    .seed(77)
    .traffic(TrafficPattern::CrossTraffic {
        a: NodeId(0),
        b: NodeId(8),
        packets: 20,
        start_s: 5.0,
    })
    .dynamics(DynamicsSpec::NodeChurn {
        node: NodeId(4),
        fail_at_s: 40.0,
        recover_at_s: 90.0,
    });
    assert_batch_identical(&sc.build(TransportKind::Jtp), 4, "grid churn batch");
}
