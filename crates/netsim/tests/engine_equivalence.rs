//! Idle-slot skipping must be *observationally invisible*: for any
//! configuration and seed, a run with `idle_slot_skipping` on produces
//! byte-identical [`Metrics`] to the naive slot-per-event engine.
//!
//! The skipping engine replays every skipped slot's idle-slot accounting
//! (counters + the EWMA available-rate estimate) in slot order before the
//! next MAC read, schedules slot events in class 0 so slot/timer ties
//! resolve identically in both modes, and mirrors the naive engine's
//! early-stop once all flows complete — these tests pin all of that down
//! across transports, loads, mobility and partial transfers.
//!
//! The same rule binds the partitioned flood-plane engine: the
//! `ExperimentConfig::workers` knob must be *pure performance* — every
//! worker count reproduces the sequential run byte-for-byte (golden
//! digests included), pinned here across the whole scenario catalog and
//! on targeted compositions (mid-run battery death, churn floods,
//! mobility ticks) plus the degenerate worker counts (workers > nodes,
//! one node per partition).

use jtp_netsim::{
    run_experiment, run_traced, ExperimentConfig, FlowSpec, Metrics, TraceConfig, TransportKind,
};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{NodeId, SimDuration};

/// Byte-exact comparison via the (total) JSON encoding of every field.
fn assert_identical(a: &Metrics, b: &Metrics, what: &str) {
    let ja = serde_json::to_string(a).unwrap();
    let jb = serde_json::to_string(b).unwrap();
    assert_eq!(ja, jb, "{what}: skipping changed observable metrics");
}

fn run_both(mut cfg: ExperimentConfig) -> (Metrics, Metrics) {
    cfg.idle_slot_skipping = true;
    let fast = run_experiment(&cfg);
    cfg.idle_slot_skipping = false;
    let naive = run_experiment(&cfg);
    (fast, naive)
}

/// Fig. 5-style scenario: two long-lived competing flows (one UDP-like,
/// one fully reliable) on an 8-node chain with deep fades — the workload
/// whose averages every caching figure is built from.
#[test]
fn fig5_style_run_is_byte_identical() {
    let n = 8;
    let mut cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(800.0)
        .seed(500)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2, // long-lived
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        })
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.25,
        bad_loss_floor: 0.85,
        ..GilbertConfig::paper_default()
    };
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "fig5-style");
    assert!(fast.delivered_packets > 0, "scenario must exercise traffic");
}

/// Completed bulk transfers (early all-done stop) across every transport.
#[test]
fn completed_transfers_identical_across_transports() {
    for (kind, name) in [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Jnc, "jnc"),
        (TransportKind::Tcp, "tcp"),
        (TransportKind::Atp, "atp"),
    ] {
        let cfg = ExperimentConfig::linear(5)
            .transport(kind)
            .duration_s(600.0)
            .seed(901)
            .bulk_flow(40, 5.0, 0.0);
        let (fast, naive) = run_both(cfg);
        assert_identical(&fast, &naive, name);
        assert!(fast.flows[0].completed, "{name}: transfer should finish");
    }
}

/// Transfers cut off by the horizon (no early stop; the idle tail after
/// the last event must be replayed by `finalize`).
#[test]
fn horizon_truncated_run_identical() {
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(120.0)
        .seed(77)
        .bulk_flow(5000, 1.0, 0.0); // cannot finish in 120 s
    cfg.gilbert = GilbertConfig::paper_default();
    let (fast, naive) = run_both(cfg);
    assert!(!fast.flows[0].completed, "transfer must be cut off");
    assert_identical(&fast, &naive, "horizon-truncated");
}

/// Mobility: topology changes mid-run exercise rescheduling around
/// MobilityTick events and the incremental routing refresh.
#[test]
fn mobile_run_identical() {
    let cfg = ExperimentConfig::random(12)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(42)
        .mobile(1.0)
        .bulk_flow(60, 5.0, 0.0);
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "mobile");
}

/// The diffed mobility path (spatial-grid neighbour discovery + geometry
/// edge-diff + affected-region BFS repair + column-incremental next-hop
/// rebuild) must be byte-identical to the legacy from-scratch path
/// (brute-force all-pairs scan + whole-truth rebuild + full BFS rows +
/// full table builds) — on a mobile run composed with churn so both the
/// per-tick and the flooded-refresh shapes are exercised.
#[test]
fn mobile_incremental_rebuilds_identical_to_scratch() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    let mut cfg = ExperimentConfig::random(14)
        .transport(TransportKind::Jtp)
        .duration_s(500.0)
        .seed(647)
        .mobile(2.0)
        .bulk_flow(50, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            60.0,
            DynamicsAction::NodeDown(NodeId(5)),
        ))
        .dynamic(DynamicsEvent::at_s(
            140.0,
            DynamicsAction::NodeUp(NodeId(5)),
        ));
    let fast = run_experiment(&cfg);
    cfg.incremental_rebuilds = false;
    let scratch = run_experiment(&cfg);
    assert_identical(&fast, &scratch, "mobile incremental vs scratch");
    assert!(fast.delivered_packets > 0);
}

/// Same pin at mobile-scale-family size: a 100-node grid where every
/// node moves, with batteries and energy re-advertisements layered on —
/// the full composition the tentpole exists for. (Skip engine in both
/// modes; the naive engine's mobile equivalence is covered above and at
/// scale by `scale_grid_run_identical`.)
#[test]
fn mobile_scale_incremental_rebuilds_identical_to_scratch() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::grid(10, 10)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(648)
        .mobile(1.0)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(22),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.28,
        ..BatteryConfig::javelen_small()
    });
    cfg.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let fast = run_experiment(&cfg);
    cfg.incremental_rebuilds = false;
    let scratch = run_experiment(&cfg);
    assert_identical(&fast, &scratch, "mobile 100-node incremental vs scratch");
    assert!(
        fast.battery_deaths > 0,
        "deaths must flood refreshes under mobility"
    );
}

/// Mobility composed with batteries across the skip/naive engines: the
/// diffed geometry path must not disturb the idle-slot replay or the
/// death-slot aiming.
#[test]
fn mobile_battery_run_identical() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::random(10)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(649)
        .mobile(1.0)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.3,
        ..BatteryConfig::javelen_small()
    });
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "mobile + battery");
    assert!(fast.battery_deaths > 0);
}

/// Loss-tolerant flows + random topology + several staggered flows: ties
/// between slot boundaries and timers are common here.
#[test]
fn multi_flow_random_topology_identical() {
    let mut cfg = ExperimentConfig::random(15)
        .transport(TransportKind::Jtp)
        .duration_s(500.0)
        .seed(7);
    for (i, (s, d, lt)) in [(0u32, 14u32, 0.0), (3, 11, 0.2), (8, 2, 0.5)]
        .into_iter()
        .enumerate()
    {
        cfg = cfg.flow(FlowSpec {
            src: NodeId(s),
            dst: NodeId(d),
            start: SimDuration::from_secs(5 + 3 * i as u64),
            packets: 50,
            loss_tolerance: lt,
            initial_rate_pps: None,
        });
    }
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "multi-flow random");
}

/// Zero flows: the naive engine spins an event per slot for the whole
/// run; the skipping engine should schedule (almost) nothing yet report
/// identical metrics.
#[test]
fn empty_workload_identical() {
    let cfg = ExperimentConfig::linear(4)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(1);
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "empty workload");
}

/// Idle-slot skipping must stay byte-identical under the legacy
/// (uncoalesced) wakeup-chain mode too — the two optimisations are
/// orthogonal.
#[test]
fn skipping_identical_with_legacy_wakeup_chains() {
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(21)
        .bulk_flow(60, 3.0, 0.0);
    cfg.wakeup_coalescing = false;
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "legacy wakeup chains");
}

/// Wakeup coalescing keeps one pending wakeup per flow; the event count
/// collapses but delivery results stay plausible (coalescing changes
/// handler *timing*, so metrics are not expected to be byte-identical —
/// this pins the intended effect instead).
#[test]
fn coalescing_delivers_same_transfer() {
    let base = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(600.0)
        .seed(13)
        .bulk_flow(50, 2.0, 0.0);
    let mut on = base.clone();
    on.wakeup_coalescing = true;
    let mut off = base.clone();
    off.wakeup_coalescing = false;
    let m_on = run_experiment(&on);
    let m_off = run_experiment(&off);
    assert_eq!(m_on.delivered_packets, 50);
    assert_eq!(m_off.delivered_packets, 50);
    assert!(m_on.flows[0].completed && m_off.flows[0].completed);
}

/// Substrate dynamics — node churn, a partition window and a link flap,
/// all in one run — must preserve byte-identical equivalence: dynamics
/// events fire at the same instants in both engines, the crash's queue
/// flush feeds the same backlog bookkeeping, and blacked-out channels
/// consume no RNG in either mode.
#[test]
fn dynamics_run_identical() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    let cfg = ExperimentConfig::linear(7)
        .transport(TransportKind::Jtp)
        .duration_s(900.0)
        .seed(321)
        .bulk_flow(60, 5.0, 0.0)
        .flow(FlowSpec {
            src: NodeId(6),
            dst: NodeId(0),
            start: SimDuration::from_secs(10),
            packets: 40,
            loss_tolerance: 0.2,
            initial_rate_pps: None,
        })
        .dynamic(DynamicsEvent::at_s(
            40.0,
            DynamicsAction::NodeDown(NodeId(3)),
        ))
        .dynamic(DynamicsEvent::at_s(
            160.0,
            DynamicsAction::NodeUp(NodeId(3)),
        ))
        .dynamic(DynamicsEvent::at_s(
            220.0,
            DynamicsAction::PartitionStart(vec![NodeId(0), NodeId(1), NodeId(2)]),
        ))
        .dynamic(DynamicsEvent::at_s(320.0, DynamicsAction::PartitionEnd))
        .dynamic(DynamicsEvent::at_s(
            400.0,
            DynamicsAction::LinkDown(NodeId(4), NodeId(5)),
        ))
        .dynamic(DynamicsEvent::at_s(
            430.0,
            DynamicsAction::LinkUp(NodeId(4), NodeId(5)),
        ));
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "dynamics");
    assert!(
        fast.churn_drops + fast.no_route_drops > 0,
        "dynamics must actually bite for the equivalence to mean anything"
    );
}

/// Battery depletion — endogenous node death — must be byte-identical:
/// the skipping engine charges skipped slots' baseline draw in bulk on
/// replay and aims a real slot event at every predicted death slot, so
/// deaths (and the routing floods they trigger) land at the exact instant
/// the naive per-slot loop detects them — mid-transfer included.
#[test]
fn battery_death_run_identical() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(700.0)
        .seed(640)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2, // long-lived: outlives the relays
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.35,
        ..BatteryConfig::javelen_small()
    });
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "battery death");
    assert!(
        fast.battery_deaths > 0,
        "batteries must actually die mid-transfer for this to prove anything"
    );
    assert!(fast.delivered_packets > 0);
}

/// Same, with an *empty* workload: the naive engine grinds an event per
/// slot to find the deaths; the skipping engine must derive the identical
/// death times from predictions alone.
#[test]
fn idle_battery_deaths_identical() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(500.0)
        .seed(641);
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.25,
        ..BatteryConfig::javelen_small()
    });
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "idle battery deaths");
    assert_eq!(fast.battery_deaths, 5, "every node dies of baseline draw");
}

/// Duty-cycled sleep (satellite of the battery work): sleeping receivers
/// reject frames deterministically before any RNG draw, and the sleep
/// draw changes the per-frame baseline sequence — still byte-identical,
/// with battery death striking mid-transfer under the duty cycle.
#[test]
fn duty_cycled_battery_run_identical() {
    use jtp_mac::DutyCycleConfig;
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::grid(3, 2)
        .transport(TransportKind::Jtp)
        .duration_s(900.0)
        .seed(642)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.4,
        ..BatteryConfig::javelen_small()
    });
    cfg.duty_cycle = Some(DutyCycleConfig::half());
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "duty-cycled battery");
    assert!(fast.battery_deaths > 0, "death under duty cycling required");
    assert!(
        fast.mac_attempts > fast.delivered_packets,
        "sleep must force retries for the equivalence to be interesting"
    );
}

/// Energy-aware routing adds periodic advertisement floods whose weights
/// are read from *materialised* battery levels — the skipping engine must
/// catch up skipped baseline draws before quantising, or the two engines
/// would advertise different weights.
#[test]
fn energy_aware_routing_run_identical() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::grid(3, 2)
        .transport(TransportKind::Jtp)
        .duration_s(900.0)
        .seed(643)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.5,
        ..BatteryConfig::javelen_small()
    });
    cfg.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "energy-aware routing");
    assert!(fast.battery_deaths > 0);
}

/// Scenario-dynamics churn composed with battery death: a node crashes,
/// its battery keeps draining while down, the heal is void once the
/// battery empties — the masked-truth bookkeeping must agree byte-for-
/// byte across engines.
#[test]
fn churn_plus_battery_run_identical() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(800.0)
        .seed(644)
        .bulk_flow(60, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            30.0,
            DynamicsAction::NodeDown(NodeId(2)),
        ))
        .dynamic(DynamicsEvent::at_s(90.0, DynamicsAction::NodeUp(NodeId(2))))
        .dynamic(DynamicsEvent::at_s(
            120.0,
            DynamicsAction::AreaFail {
                x_m: 220.0,
                y_m: 0.0,
                radius_m: 30.0,
            },
        ));
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.4,
        ..BatteryConfig::javelen_small()
    });
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "churn + area failure + battery");
    assert!(fast.battery_deaths > 0);
    assert!(fast.churn_drops + fast.no_route_drops + fast.arq_drops > 0);
}

/// The incremental rebuild engine (masked-truth edits per dynamics
/// event, weighted-APSP repair per energy re-advertisement) must be
/// byte-identical to the legacy from-scratch rebuilds — on a workload
/// that composes churn, an area failure, battery death floods and
/// periodic weight re-advertisements, so every repair path is exercised.
#[test]
fn incremental_rebuilds_identical_to_scratch_rebuilds() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::grid(6, 6)
        .transport(TransportKind::Jtp)
        .duration_s(700.0)
        .seed(645)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(35),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        })
        .dynamic(DynamicsEvent::at_s(
            40.0,
            DynamicsAction::NodeDown(NodeId(14)),
        ))
        .dynamic(DynamicsEvent::at_s(
            120.0,
            DynamicsAction::NodeUp(NodeId(14)),
        ))
        .dynamic(DynamicsEvent::at_s(
            160.0,
            DynamicsAction::PartitionStart((0..18).map(NodeId).collect()),
        ))
        .dynamic(DynamicsEvent::at_s(220.0, DynamicsAction::PartitionEnd))
        .dynamic(DynamicsEvent::at_s(
            300.0,
            DynamicsAction::AreaFail {
                x_m: 240.0,
                y_m: 240.0,
                radius_m: 100.0,
            },
        ));
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.5,
        ..BatteryConfig::javelen_small()
    });
    cfg.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let fast = run_experiment(&cfg);
    cfg.incremental_rebuilds = false;
    let scratch = run_experiment(&cfg);
    assert_identical(&fast, &scratch, "incremental vs from-scratch rebuilds");
    assert!(
        fast.battery_deaths > 0,
        "deaths must exercise the flood path"
    );
    assert!(
        fast.churn_drops + fast.no_route_drops > 0,
        "dynamics must bite for the equivalence to mean anything"
    );
    assert!(fast.delivered_packets > 0);
}

/// Idle-slot skipping stays byte-identical at scale-family size: a
/// 100-node grid with battery death, energy re-advertisements and an
/// area failure (short horizon — the naive engine fires every slot).
#[test]
fn scale_grid_run_identical() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::grid(10, 10)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(646)
        // A short diagonal hop count (0 → 22 is 4 hops): at 100 nodes a
        // frame is ~2.5 s, so corner-to-corner transfers would not
        // deliver inside a naive-engine-affordable horizon.
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(22),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        })
        .dynamic(DynamicsEvent::at_s(
            120.0,
            DynamicsAction::AreaFail {
                x_m: 360.0,
                y_m: 400.0,
                radius_m: 90.0,
            },
        ));
    // ~3 s frames at 100 nodes: a 0.35 J battery dies of idle draw at
    // ~140 frames ≈ 350 s, inside the horizon.
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.35,
        ..BatteryConfig::javelen_small()
    });
    cfg.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let (fast, naive) = run_both(cfg);
    assert_identical(&fast, &naive, "100-node scale grid");
    assert!(
        fast.battery_deaths > 0,
        "scale run must reach battery death"
    );
    assert!(fast.delivered_packets > 0);
}

/// Traces must also be unaffected (receptions drive the fig-5 series).
#[test]
fn traces_identical_under_skipping() {
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(55)
        .bulk_flow(80, 2.0, 0.0);
    let trace_cfg = TraceConfig {
        receptions: true,
        attempts_at: Some(NodeId(1)),
        ..Default::default()
    };
    cfg.idle_slot_skipping = true;
    let (m_fast, t_fast) = run_traced(&cfg, trace_cfg);
    cfg.idle_slot_skipping = false;
    let (m_naive, t_naive) = run_traced(&cfg, trace_cfg);
    assert_identical(&m_fast, &m_naive, "traced");
    assert_eq!(t_fast.receptions, t_naive.receptions);
    assert_eq!(t_fast.attempts, t_naive.attempts);
}

// ---------------------------------------------------------------------
// Partitioned flood-plane engine: workers is a pure performance knob
// ---------------------------------------------------------------------

/// Run `cfg` with the flood plane on `workers` threads.
fn run_workers(cfg: &ExperimentConfig, workers: usize) -> Metrics {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    run_experiment(&cfg)
}

/// The committed golden digests (also pinned, at workers = 1, by
/// `golden_traces.rs`), keyed by pin name (`name` for JTP, `name:tag`
/// for the baseline transports) so the tests are layout-independent:
/// the file grows append-only and heavy-* entries are grouped by
/// scenario rather than by transport block.
fn committed_golden_map() -> std::collections::HashMap<String, String> {
    include_str!("golden/digests.txt")
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let name = l.split_whitespace().next().expect("non-empty pin line");
            (name.to_string(), l.to_string())
        })
        .collect()
}

/// The whole scenario catalog, partitioned across 2, 4 and 8 workers,
/// must reproduce the committed golden digests byte-for-byte. The
/// committed lines *are* the workers = 1 output (`golden_traces.rs` pins
/// that side), so this closes the full workers ∈ {1, 2, 4, 8} square:
/// same traces, same metrics, same digests, for every catalog entry.
#[test]
fn catalog_digests_identical_across_workers() {
    use jtp_netsim::{try_run_digest_on, Scenario};
    let cat = Scenario::catalog();
    let golden = committed_golden_map();
    let mut drift = Vec::new();
    for sc in cat.iter() {
        let want = golden
            .get(sc.name.as_str())
            .unwrap_or_else(|| panic!("no golden JTP pin for {}", sc.name));
        let cfg = sc.build(TransportKind::Jtp);
        for workers in [2usize, 4, 8] {
            let got = try_run_digest_on(&cfg, workers)
                .expect("catalog scenario must run")
                .to_line(&sc.name);
            if got != *want {
                drift.push(format!(
                    "  {} (workers={workers}):\n    want {want}\n    got  {got}",
                    sc.name
                ));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "partitioned engine diverged from the sequential goldens:\n{}",
        drift.join("\n")
    );
}

/// A slice of the baseline-transport golden pins (TCP, ATP, CUBIC, BBR)
/// under the partitioned engine: the byte-identity rule is
/// transport-independent.
#[test]
fn baseline_transport_digests_identical_across_workers() {
    use jtp_netsim::{try_run_digest_on, Scenario};
    let cat = Scenario::catalog();
    let golden = committed_golden_map();
    assert_eq!(
        golden.len(),
        5 * cat.len(),
        "five transport pins per catalog entry"
    );
    for (t, tag) in [
        (TransportKind::Tcp, "tcp"),
        (TransportKind::Atp, "atp"),
        (TransportKind::Cubic, "cubic"),
        (TransportKind::Bbr, "bbr"),
    ] {
        for sc in cat.iter().take(3) {
            let name = format!("{}:{tag}", sc.name);
            let want = golden
                .get(name.as_str())
                .unwrap_or_else(|| panic!("no golden pin for {name}"));
            let got = try_run_digest_on(&sc.build(t), 4)
                .expect("catalog scenario must run")
                .to_line(&name);
            assert_eq!(&got, want, "{name} diverged at workers=4");
        }
    }
}

/// Mid-run battery death: the death flood (and the routing recomputation
/// it fans out) must merge identically whatever the worker count.
#[test]
fn battery_death_identical_across_workers() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(700.0)
        .seed(640)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.35,
        ..BatteryConfig::javelen_small()
    });
    let seq = run_workers(&cfg, 1);
    assert!(seq.battery_deaths > 0, "deaths must flood mid-run");
    for w in [2usize, 4] {
        let par = run_workers(&cfg, w);
        assert_identical(&seq, &par, &format!("battery death, workers={w}"));
    }
}

/// Churn floods (node crash/heal, a partition window, link flaps): every
/// dynamics event floods a refresh whose fan-out must merge in source
/// order on any worker count.
#[test]
fn churn_floods_identical_across_workers() {
    use jtp_netsim::{DynamicsAction, DynamicsEvent};
    let cfg = ExperimentConfig::linear(7)
        .transport(TransportKind::Jtp)
        .duration_s(900.0)
        .seed(321)
        .bulk_flow(60, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            40.0,
            DynamicsAction::NodeDown(NodeId(3)),
        ))
        .dynamic(DynamicsEvent::at_s(
            160.0,
            DynamicsAction::NodeUp(NodeId(3)),
        ))
        .dynamic(DynamicsEvent::at_s(
            220.0,
            DynamicsAction::PartitionStart(vec![NodeId(0), NodeId(1), NodeId(2)]),
        ))
        .dynamic(DynamicsEvent::at_s(320.0, DynamicsAction::PartitionEnd))
        .dynamic(DynamicsEvent::at_s(
            400.0,
            DynamicsAction::LinkDown(NodeId(4), NodeId(5)),
        ))
        .dynamic(DynamicsEvent::at_s(
            430.0,
            DynamicsAction::LinkUp(NodeId(4), NodeId(5)),
        ));
    let seq = run_workers(&cfg, 1);
    assert!(seq.churn_drops + seq.no_route_drops > 0, "churn must bite");
    for w in [2usize, 4] {
        let par = run_workers(&cfg, w);
        assert_identical(&seq, &par, &format!("churn floods, workers={w}"));
    }
}

/// Mobility ticks move nodes across partition boundaries every update
/// period; the per-tick view refreshes must stay byte-identical, with
/// batteries and energy re-advertisement floods layered on top.
#[test]
fn mobility_ticks_identical_across_workers() {
    use jtp_phys::BatteryConfig;
    let mut cfg = ExperimentConfig::random(10)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(649)
        .mobile(1.0)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    cfg.battery = Some(BatteryConfig {
        capacity_j: 0.3,
        ..BatteryConfig::javelen_small()
    });
    let seq = run_workers(&cfg, 1);
    assert!(seq.battery_deaths > 0, "deaths must flood under mobility");
    for w in [2usize, 4] {
        let par = run_workers(&cfg, w);
        assert_identical(&seq, &par, &format!("mobility ticks, workers={w}"));
    }
}

/// Degenerate worker counts: more workers than nodes (the cut clamps to
/// one node per partition) and exactly one node per partition must both
/// behave identically to the sequential engine.
#[test]
fn degenerate_worker_counts_identical() {
    let n = 6;
    let cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(600.0)
        .seed(901)
        .bulk_flow(40, 5.0, 0.0);
    let seq = run_workers(&cfg, 1);
    assert!(seq.delivered_packets > 0);
    for w in [n, 64] {
        let par = run_workers(&cfg, w);
        assert_identical(&seq, &par, &format!("degenerate workers={w}"));
    }
    // The cut itself clamps: 64 requested workers on 6 nodes = 6
    // single-node partitions.
    let mut wcfg = cfg.clone();
    wcfg.workers = 64;
    let (net, _q) = jtp_netsim::Network::try_new(&wcfg, TraceConfig::default()).unwrap();
    assert_eq!(net.partition_cut().workers(), n);
    assert!(net.partition_cut().ranges().iter().all(|r| r.len() == 1));
}
