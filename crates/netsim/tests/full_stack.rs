//! Integration tests of the assembled network: full transfers across the
//! TDMA MAC, Gilbert-Elliott channel, link-state routing and all three
//! transport protocols.

use jtp_netsim::{
    run_experiment, run_traced, ExperimentConfig, FlowSpec, TraceConfig, TransportKind,
};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{NodeId, SimDuration};

fn quick(n: usize, transport: TransportKind, packets: u32, lt: f64) -> ExperimentConfig {
    ExperimentConfig::linear(n)
        .transport(transport)
        .duration_s(1500.0)
        .seed(11)
        .bulk_flow(packets, 5.0, lt)
}

#[test]
fn jtp_delivers_full_transfer_over_lossy_chain() {
    let m = run_experiment(&quick(5, TransportKind::Jtp, 60, 0.0));
    let f = &m.flows[0];
    assert!(f.completed, "transfer did not complete: {f:?}");
    assert_eq!(f.delivered_packets, 60, "0% tolerance => all delivered");
    assert!(m.energy_total_j > 0.0);
    assert!(m.mac_attempts >= 60 * 4, "at least one attempt per hop");
}

#[test]
fn tcp_delivers_full_transfer() {
    let m = run_experiment(&quick(4, TransportKind::Tcp, 40, 0.0));
    let f = &m.flows[0];
    assert!(f.completed, "TCP transfer incomplete: {f:?}");
    assert_eq!(f.delivered_packets, 40);
}

#[test]
fn atp_delivers_full_transfer() {
    let m = run_experiment(&quick(4, TransportKind::Atp, 40, 0.0));
    let f = &m.flows[0];
    assert!(f.completed, "ATP transfer incomplete: {f:?}");
    assert_eq!(f.delivered_packets, 40);
}

#[test]
fn loss_tolerant_flow_meets_but_may_not_exceed_requirement() {
    let mut cfg = quick(5, TransportKind::Jtp, 200, 0.20);
    // Lossier channel so the tolerance actually bites.
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.2,
        ..GilbertConfig::paper_default()
    };
    let m = run_experiment(&cfg);
    let f = &m.flows[0];
    assert!(f.completed, "tolerant flow should complete: {f:?}");
    let ratio = f.delivered_packets as f64 / 200.0;
    assert!(
        ratio >= 0.80 - 1e-9,
        "application requirement violated: {ratio}"
    );
}

#[test]
fn determinism_same_seed_identical_metrics() {
    let cfg = quick(5, TransportKind::Jtp, 50, 0.0);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.mac_attempts, b.mac_attempts);
    assert_eq!(a.source_retransmissions, b.source_retransmissions);
    assert!((a.energy_total_j - b.energy_total_j).abs() < 1e-12);
}

#[test]
fn different_seeds_differ() {
    let a = run_experiment(&quick(5, TransportKind::Jtp, 50, 0.0));
    let b = run_experiment(&quick(5, TransportKind::Jtp, 50, 0.0).seed(12));
    // Channel realisations differ, so the attempt counts almost surely do.
    assert_ne!(a.mac_attempts, b.mac_attempts);
}

#[test]
fn caching_reduces_source_retransmissions() {
    // Lossy enough that end-to-end recovery is regularly needed.
    let mut base = quick(7, TransportKind::Jtp, 120, 0.0);
    base.gilbert = GilbertConfig {
        bad_fraction: 0.25,
        ..GilbertConfig::paper_default()
    };
    let mut jnc = base.clone().transport(TransportKind::Jnc);
    jnc.gilbert = base.gilbert;
    let mut jtp_rtx = 0;
    let mut jnc_rtx = 0;
    let mut jtp_recovered = 0;
    for seed in 0..5 {
        let m1 = run_experiment(&base.clone().seed(100 + seed));
        let m2 = run_experiment(&jnc.clone().seed(100 + seed));
        jtp_rtx += m1.source_retransmissions;
        jnc_rtx += m2.source_retransmissions;
        jtp_recovered += m1.local_recoveries;
    }
    assert!(jtp_recovered > 0, "caches never recovered anything");
    assert!(
        jtp_rtx < jnc_rtx,
        "caching should cut source retransmissions: jtp {jtp_rtx} vs jnc {jnc_rtx}"
    );
}

#[test]
fn jtp_more_energy_efficient_than_tcp_on_long_paths() {
    let mut jtp_epb = 0.0;
    let mut tcp_epb = 0.0;
    for seed in 0..3 {
        let j = run_experiment(&quick(6, TransportKind::Jtp, 80, 0.0).seed(40 + seed));
        let t = run_experiment(&quick(6, TransportKind::Tcp, 80, 0.0).seed(40 + seed));
        jtp_epb += j.energy_per_bit_uj();
        tcp_epb += t.energy_per_bit_uj();
    }
    assert!(
        jtp_epb < tcp_epb,
        "JTP should beat TCP on energy/bit: {jtp_epb} vs {tcp_epb}"
    );
}

#[test]
fn two_competing_flows_both_progress() {
    let n = 6;
    let cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(2000.0)
        .seed(21)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(5),
            packets: 300,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        })
        .flow(FlowSpec {
            src: NodeId(n as u32 - 1),
            dst: NodeId(0),
            start: SimDuration::from_secs(5),
            packets: 300,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    let m = run_experiment(&cfg);
    for f in &m.flows {
        assert!(f.delivered_packets > 50, "flow {} starved: {f:?}", f.flow);
    }
}

#[test]
fn mobile_network_still_delivers() {
    let cfg = ExperimentConfig::random(10)
        .transport(TransportKind::Jtp)
        .duration_s(2000.0)
        .seed(31)
        .mobile(1.0)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            start: SimDuration::from_secs(10),
            packets: 100,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    let m = run_experiment(&cfg);
    assert!(
        m.flows[0].delivered_packets > 20,
        "mobility should degrade, not destroy, delivery: {:?}",
        m.flows[0]
    );
}

#[test]
fn traces_capture_receptions_and_attempts() {
    let trace_cfg = TraceConfig {
        receptions: true,
        attempts_at: Some(NodeId(2)),
        monitor_of: Some(jtp_sim::FlowId(0)),
    };
    let (m, trace) = run_traced(&quick(4, TransportKind::Jtp, 50, 0.10), trace_cfg);
    assert!(m.delivered_packets > 0);
    assert_eq!(trace.receptions.len() as u64, m.delivered_packets);
    assert!(!trace.attempts.is_empty(), "node 2 forwarded packets");
    assert!(
        trace.attempts.iter().all(|(_, a)| (1..=5).contains(a)),
        "budgets within MAC cap"
    );
    assert!(!trace.monitor.is_empty(), "monitor samples recorded");
}

#[test]
fn queue_drops_appear_under_overload() {
    // Tiny queues + aggressive constant feedback = congestion.
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(1000.0)
        .seed(5)
        .bulk_flow(400, 5.0, 0.0);
    cfg.mac.queue_capacity = 3;
    let m = run_experiment(&cfg);
    // With deep multi-hop relaying through 3-slot queues some drops are
    // expected; mainly we assert the accounting plumbing works.
    assert!(m.queue_drops + m.arq_drops + m.delivered_packets > 0);
}

#[test]
fn energy_split_includes_ack_traffic() {
    let m = run_experiment(&quick(4, TransportKind::Jtp, 60, 0.0));
    assert!(m.energy_ack_j > 0.0, "feedback must cost energy");
    assert!(m.energy_ack_j < m.energy_total_j);
}

#[test]
fn stable_channel_uses_fewer_attempts() {
    let mut stable_total = 0;
    let mut lossy_total = 0;
    for seed in 0..4 {
        let mut stable = quick(5, TransportKind::Jtp, 100, 0.0).seed(60 + seed);
        stable.gilbert = GilbertConfig::stable();
        let mut lossy = quick(5, TransportKind::Jtp, 100, 0.0).seed(60 + seed);
        lossy.gilbert = GilbertConfig {
            bad_fraction: 0.3,
            ..GilbertConfig::paper_default()
        };
        stable_total += run_experiment(&stable).mac_attempts;
        lossy_total += run_experiment(&lossy).mac_attempts;
    }
    assert!(
        stable_total < lossy_total,
        "stable {stable_total} !< lossy {lossy_total}"
    );
}
