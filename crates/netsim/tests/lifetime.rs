//! Battery & network-lifetime subsystem tests: finite budgets deplete,
//! depleted nodes die (for good), lifetime metrics tick, duty cycling
//! trades energy for reachability, energy-aware routing steers load off
//! drained relays, and area failures crash whole discs at once.

use jtp_mac::DutyCycleConfig;
use jtp_netsim::{
    run_experiment, DynamicsAction, DynamicsEvent, ExperimentConfig, FlowSpec, Scenario,
    TrafficPattern, TransportKind,
};
use jtp_phys::BatteryConfig;
use jtp_sim::{NodeId, SimDuration};

fn small_battery(capacity_j: f64) -> BatteryConfig {
    BatteryConfig {
        capacity_j,
        ..BatteryConfig::javelen_small()
    }
}

/// An idle network with batteries drains by baseline draw alone and every
/// node dies at its predictable instant: capacity / (idle_draw × frame)
/// frames in.
#[test]
fn idle_network_dies_of_baseline_draw() {
    let cfg = ExperimentConfig::linear(4)
        .duration_s(400.0)
        .seed(9)
        .battery(small_battery(0.3));
    // 4 nodes × 25 ms slots = 0.1 s frames; 0.1 mJ idle per frame;
    // 0.3 J / 0.1 mJ = 3000 frames = 300 s.
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 4, "every node must die");
    let first = m.first_death_s.expect("deaths recorded");
    assert!(
        (299.0..301.5).contains(&first),
        "baseline-only death at ~300 s, got {first}"
    );
    // All nodes share the draw, so the full curve collapses within one
    // frame of the first death.
    let last = m.alive_curve.last().expect("curve recorded");
    assert_eq!(last.1, 0);
    assert!(last.0 - first < 1.0, "staggered only by slot position");
    assert!(m.residual_j.iter().all(|&r| r == 0.0));
    assert_eq!(m.alive_at_s(100.0), 4);
    assert_eq!(m.alive_at_s(350.0), 0);
}

/// Without a battery nothing ever dies — the tally-only monitor of the
/// paper keeps its exact semantics.
#[test]
fn no_battery_means_no_deaths() {
    let cfg = ExperimentConfig::linear(4)
        .duration_s(300.0)
        .seed(9)
        .bulk_flow(20, 2.0, 0.0);
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 0);
    assert_eq!(m.first_death_s, None);
    assert_eq!(m.first_partition_s, None);
    assert!(m.alive_curve.is_empty());
    assert!(m.residual_j.is_empty());
}

/// Traffic accelerates death: relays carrying a transfer die before the
/// idle-only baseline would predict, and a chain's first mid-chain death
/// partitions the survivors.
#[test]
fn forwarding_load_shortens_lifetime_and_partitions_the_chain() {
    let idle = ExperimentConfig::linear(5)
        .duration_s(900.0)
        .seed(31)
        .battery(small_battery(0.5));
    let busy = ExperimentConfig::linear(5)
        .duration_s(900.0)
        .seed(31)
        .battery(small_battery(0.5))
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(4),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2, // long-lived: dies with the network
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    let m_idle = run_experiment(&idle);
    let m_busy = run_experiment(&busy);
    let t_idle = m_idle.first_death_s.expect("idle deaths");
    let t_busy = m_busy.first_death_s.expect("busy deaths");
    assert!(
        t_busy < t_idle - 10.0,
        "forwarding must cost lifetime: busy {t_busy} vs idle {t_idle}"
    );
    // A 5-chain losing any interior node splits; the sink or source dying
    // leaves the rest connected, so partition time may trail first death
    // but must exist once interior relays go.
    let part = m_busy.first_partition_s.expect("chain must partition");
    assert!(part >= t_busy);
    assert!(m_busy.delivered_packets > 0, "transfer ran before dying");
}

/// Battery death is permanent: a scheduled NodeUp cannot revive a node
/// whose battery already emptied.
#[test]
fn battery_death_survives_scheduled_heal() {
    // Node 1 dies of baseline draw at ~100 s (0.1 J / 0.1 mJ-per-frame ×
    // 0.1 s frames); dynamics try to heal it afterwards.
    let cfg = ExperimentConfig::linear(4)
        .duration_s(400.0)
        .seed(12)
        .battery(small_battery(0.1))
        .dynamic(DynamicsEvent::at_s(
            200.0,
            DynamicsAction::NodeUp(NodeId(1)),
        ))
        .bulk_flow(u32::MAX / 2, 150.0, 1.0);
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 4);
    // The flow starts after every battery is dead: nothing can deliver.
    assert_eq!(m.delivered_packets, 0);
}

/// Duty cycling extends lifetime (sleep draw ≪ idle draw) at the price of
/// reachability while asleep.
#[test]
fn duty_cycle_extends_idle_lifetime() {
    let always_on = ExperimentConfig::linear(4)
        .duration_s(2000.0)
        .seed(77)
        .battery(small_battery(0.3));
    let mut duty = always_on.clone();
    duty.duty_cycle = Some(DutyCycleConfig::half());
    let m_on = run_experiment(&always_on);
    let m_duty = run_experiment(&duty);
    let t_on = m_on.first_death_s.expect("always-on deaths");
    let t_duty = m_duty.first_death_s.expect("duty-cycled deaths");
    // Half the frames at 10% draw: mean draw 55% → lifetime ~1.8×.
    assert!(
        t_duty > 1.6 * t_on,
        "duty cycling must stretch lifetime: {t_duty} vs {t_on}"
    );
}

/// Sleeping receivers miss frames: the same transfer needs more MAC
/// attempts per delivery under a duty cycle.
#[test]
fn sleeping_receivers_cost_attempts() {
    let base = ExperimentConfig::linear(4)
        .duration_s(1500.0)
        .seed(21)
        .bulk_flow(40, 5.0, 0.0);
    let mut duty = base.clone();
    duty.duty_cycle = Some(DutyCycleConfig {
        period_frames: 4,
        awake_frames: 1,
    });
    let m_base = run_experiment(&base);
    let m_duty = run_experiment(&duty);
    assert_eq!(m_base.delivered_packets, 40);
    assert_eq!(
        m_duty.delivered_packets, 40,
        "transfer still completes through sleep (retries bridge the gaps)"
    );
    let apb_base = m_base.mac_attempts as f64 / m_base.delivered_packets as f64;
    let apb_duty = m_duty.mac_attempts as f64 / m_duty.delivered_packets as f64;
    assert!(
        apb_duty > 1.5 * apb_base,
        "75% sleep must inflate attempts/delivery: {apb_duty} vs {apb_base}"
    );
}

/// Energy-aware routing steers around a drained relay: with two equal-hop
/// relays and one pre-drained by cross-traffic, the energy-aware run
/// spreads load and postpones the first death.
#[test]
fn energy_aware_routing_postpones_first_death() {
    // 2×3 grid: 0-1-2 top row, 3-4-5 bottom row; flows 0→5 can relay via
    // 1,4 or 3,4… keep it simple: route choice exists between columns.
    let base = ExperimentConfig::grid(3, 2)
        .duration_s(1200.0)
        .seed(55)
        .battery(small_battery(0.6))
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    let mut aware = base.clone();
    aware.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let m_base = run_experiment(&base);
    let m_aware = run_experiment(&aware);
    let t_base = m_base.first_death_s.expect("hop-count run deaths");
    let t_aware = m_aware.first_death_s.expect("energy-aware run deaths");
    assert!(
        t_aware >= t_base,
        "energy-aware routing must not shorten lifetime: {t_aware} vs {t_base}"
    );
    assert!(m_aware.delivered_packets > 0);
}

/// An area failure crashes exactly the nodes inside the disc.
#[test]
fn area_failure_kills_the_disc() {
    // Chain at 55 m spacing: nodes 0..6 at x = 0,55,…,330. A 60 m blast
    // at x=110 takes out nodes 1,2,3 (x = 55,110,165).
    let cfg = ExperimentConfig::linear(7)
        .duration_s(600.0)
        .seed(3)
        .bulk_flow(u32::MAX / 2, 5.0, 1.0)
        .dynamic(DynamicsEvent::at_s(
            60.0,
            DynamicsAction::AreaFail {
                x_m: 110.0,
                y_m: 0.0,
                radius_m: 60.0,
            },
        ));
    let (with_blast, without_blast) = {
        let mut quiet = cfg.clone();
        quiet.dynamics.clear();
        (run_experiment(&cfg), run_experiment(&quiet))
    };
    // The blast severs the chain mid-transfer: deliveries stop early.
    assert!(
        with_blast.delivered_packets < without_blast.delivered_packets / 2,
        "blast {} vs quiet {}",
        with_blast.delivered_packets,
        without_blast.delivered_packets
    );
    assert!(
        with_blast.churn_drops + with_blast.no_route_drops > 0,
        "crashed relays must cost frames"
    );
}

/// The lifetime catalog scenarios actually exercise the subsystem: every
/// battery entry records deaths under JTP within its horizon.
#[test]
fn lifetime_catalog_entries_record_deaths() {
    for sc in Scenario::catalog().iter().filter(|s| s.battery.is_some()) {
        let m = run_experiment(&sc.build(TransportKind::Jtp));
        assert!(
            m.battery_deaths > 0,
            "{}: no deaths inside the horizon",
            sc.name
        );
        assert!(m.first_death_s.is_some());
        assert!(
            m.delivered_packets > 0,
            "{}: workload never delivered",
            sc.name
        );
    }
}

/// Poisson arrivals flow through the full stack (catalog scenario).
#[test]
fn poisson_traffic_runs_end_to_end() {
    let sc = Scenario::new(
        "poisson-smoke",
        jtp_netsim::TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        },
    )
    .duration_s(600.0)
    .seed(8)
    .traffic(TrafficPattern::Poisson {
        flows: 5,
        rate_per_s: 0.05,
        packets: 10,
        start_s: 5.0,
        loss_tolerance: 0.0,
    });
    let m = run_experiment(&sc.build(TransportKind::Jtp));
    assert_eq!(m.flows.len(), 5);
    assert!(m.delivered_packets >= 40, "most flows should complete");
}
