//! Battery & network-lifetime subsystem tests: finite budgets deplete,
//! depleted nodes die (for good), lifetime metrics tick, duty cycling
//! trades energy for reachability, energy-aware routing steers load off
//! drained relays, and area failures crash whole discs at once.

use jtp_mac::DutyCycleConfig;
use jtp_netsim::{
    run_experiment, DynamicsAction, DynamicsEvent, ExperimentConfig, FlowSpec, Scenario,
    TrafficPattern, TransportKind,
};
use jtp_phys::BatteryConfig;
use jtp_sim::{NodeId, SimDuration};

fn small_battery(capacity_j: f64) -> BatteryConfig {
    BatteryConfig {
        capacity_j,
        ..BatteryConfig::javelen_small()
    }
}

/// An idle network with batteries drains by baseline draw alone and every
/// node dies at its predictable instant: capacity / (idle_draw × frame)
/// frames in.
#[test]
fn idle_network_dies_of_baseline_draw() {
    let cfg = ExperimentConfig::linear(4)
        .duration_s(400.0)
        .seed(9)
        .battery(small_battery(0.3));
    // 4 nodes × 25 ms slots = 0.1 s frames; 0.1 mJ idle per frame;
    // 0.3 J / 0.1 mJ = 3000 frames = 300 s.
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 4, "every node must die");
    let first = m.first_death_s.expect("deaths recorded");
    assert!(
        (299.0..301.5).contains(&first),
        "baseline-only death at ~300 s, got {first}"
    );
    // All nodes share the draw, so the full curve collapses within one
    // frame of the first death.
    let last = m.alive_curve.last().expect("curve recorded");
    assert_eq!(last.1, 0);
    assert!(last.0 - first < 1.0, "staggered only by slot position");
    assert!(m.residual_j.iter().all(|&r| r == 0.0));
    assert_eq!(m.alive_at_s(100.0), 4);
    assert_eq!(m.alive_at_s(350.0), 0);
}

/// Without a battery nothing ever dies — the tally-only monitor of the
/// paper keeps its exact semantics.
#[test]
fn no_battery_means_no_deaths() {
    let cfg = ExperimentConfig::linear(4)
        .duration_s(300.0)
        .seed(9)
        .bulk_flow(20, 2.0, 0.0);
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 0);
    assert_eq!(m.first_death_s, None);
    assert_eq!(m.first_partition_s, None);
    assert!(m.alive_curve.is_empty());
    assert!(m.residual_j.is_empty());
}

/// Traffic accelerates death: relays carrying a transfer die before the
/// idle-only baseline would predict, and a chain's first mid-chain death
/// partitions the survivors.
#[test]
fn forwarding_load_shortens_lifetime_and_partitions_the_chain() {
    let idle = ExperimentConfig::linear(5)
        .duration_s(900.0)
        .seed(31)
        .battery(small_battery(0.5));
    let busy = ExperimentConfig::linear(5)
        .duration_s(900.0)
        .seed(31)
        .battery(small_battery(0.5))
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(4),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2, // long-lived: dies with the network
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    let m_idle = run_experiment(&idle);
    let m_busy = run_experiment(&busy);
    let t_idle = m_idle.first_death_s.expect("idle deaths");
    let t_busy = m_busy.first_death_s.expect("busy deaths");
    assert!(
        t_busy < t_idle - 10.0,
        "forwarding must cost lifetime: busy {t_busy} vs idle {t_idle}"
    );
    // A 5-chain losing any interior node splits; the sink or source dying
    // leaves the rest connected, so partition time may trail first death
    // but must exist once interior relays go.
    let part = m_busy.first_partition_s.expect("chain must partition");
    assert!(part >= t_busy);
    assert!(m_busy.delivered_packets > 0, "transfer ran before dying");
}

/// Battery death is permanent: a scheduled NodeUp cannot revive a node
/// whose battery already emptied.
#[test]
fn battery_death_survives_scheduled_heal() {
    // Node 1 dies of baseline draw at ~100 s (0.1 J / 0.1 mJ-per-frame ×
    // 0.1 s frames); dynamics try to heal it afterwards.
    let cfg = ExperimentConfig::linear(4)
        .duration_s(400.0)
        .seed(12)
        .battery(small_battery(0.1))
        .dynamic(DynamicsEvent::at_s(
            200.0,
            DynamicsAction::NodeUp(NodeId(1)),
        ))
        .bulk_flow(u32::MAX / 2, 150.0, 1.0);
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 4);
    // The flow starts after every battery is dead: nothing can deliver.
    assert_eq!(m.delivered_packets, 0);
}

/// Duty cycling extends lifetime (sleep draw ≪ idle draw) at the price of
/// reachability while asleep.
#[test]
fn duty_cycle_extends_idle_lifetime() {
    let always_on = ExperimentConfig::linear(4)
        .duration_s(2000.0)
        .seed(77)
        .battery(small_battery(0.3));
    let mut duty = always_on.clone();
    duty.duty_cycle = Some(DutyCycleConfig::half());
    let m_on = run_experiment(&always_on);
    let m_duty = run_experiment(&duty);
    let t_on = m_on.first_death_s.expect("always-on deaths");
    let t_duty = m_duty.first_death_s.expect("duty-cycled deaths");
    // Half the frames at 10% draw: mean draw 55% → lifetime ~1.8×.
    assert!(
        t_duty > 1.6 * t_on,
        "duty cycling must stretch lifetime: {t_duty} vs {t_on}"
    );
}

/// Sleeping receivers miss frames: the same transfer needs more MAC
/// attempts per delivery under a duty cycle.
#[test]
fn sleeping_receivers_cost_attempts() {
    let base = ExperimentConfig::linear(4)
        .duration_s(1500.0)
        .seed(21)
        .bulk_flow(40, 5.0, 0.0);
    let mut duty = base.clone();
    duty.duty_cycle = Some(DutyCycleConfig {
        period_frames: 4,
        awake_frames: 1,
    });
    let m_base = run_experiment(&base);
    let m_duty = run_experiment(&duty);
    assert_eq!(m_base.delivered_packets, 40);
    assert_eq!(
        m_duty.delivered_packets, 40,
        "transfer still completes through sleep (retries bridge the gaps)"
    );
    let apb_base = m_base.mac_attempts as f64 / m_base.delivered_packets as f64;
    let apb_duty = m_duty.mac_attempts as f64 / m_duty.delivered_packets as f64;
    assert!(
        apb_duty > 1.5 * apb_base,
        "75% sleep must inflate attempts/delivery: {apb_duty} vs {apb_base}"
    );
}

/// Energy-aware routing steers around a drained relay: with two equal-hop
/// relays and one pre-drained by cross-traffic, the energy-aware run
/// spreads load and postpones the first death.
#[test]
fn energy_aware_routing_postpones_first_death() {
    // 2×3 grid: 0-1-2 top row, 3-4-5 bottom row; flows 0→5 can relay via
    // 1,4 or 3,4… keep it simple: route choice exists between columns.
    let base = ExperimentConfig::grid(3, 2)
        .duration_s(1200.0)
        .seed(55)
        .battery(small_battery(0.6))
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(5),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    let mut aware = base.clone();
    aware.energy_routing = Some(jtp_netsim::EnergyRoutingConfig::default());
    let m_base = run_experiment(&base);
    let m_aware = run_experiment(&aware);
    let t_base = m_base.first_death_s.expect("hop-count run deaths");
    let t_aware = m_aware.first_death_s.expect("energy-aware run deaths");
    assert!(
        t_aware >= t_base,
        "energy-aware routing must not shorten lifetime: {t_aware} vs {t_base}"
    );
    assert!(m_aware.delivered_packets > 0);
}

/// An area failure crashes exactly the nodes inside the disc.
#[test]
fn area_failure_kills_the_disc() {
    // Chain at 55 m spacing: nodes 0..6 at x = 0,55,…,330. A 60 m blast
    // at x=110 takes out nodes 1,2,3 (x = 55,110,165).
    let cfg = ExperimentConfig::linear(7)
        .duration_s(600.0)
        .seed(3)
        .bulk_flow(u32::MAX / 2, 5.0, 1.0)
        .dynamic(DynamicsEvent::at_s(
            60.0,
            DynamicsAction::AreaFail {
                x_m: 110.0,
                y_m: 0.0,
                radius_m: 60.0,
            },
        ));
    let (with_blast, without_blast) = {
        let mut quiet = cfg.clone();
        quiet.dynamics.clear();
        (run_experiment(&cfg), run_experiment(&quiet))
    };
    // The blast severs the chain mid-transfer: deliveries stop early.
    assert!(
        with_blast.delivered_packets < without_blast.delivered_packets / 2,
        "blast {} vs quiet {}",
        with_blast.delivered_packets,
        without_blast.delivered_packets
    );
    assert!(
        with_blast.churn_drops + with_blast.no_route_drops > 0,
        "crashed relays must cost frames"
    );
}

/// A vanishingly small (but valid) baseline draw: the analytic
/// death-bound arithmetic must conclude "outlives the run" without
/// overflowing, and the run must behave exactly like a healthy battery.
#[test]
fn near_zero_draw_battery_outlives_run_without_overflow() {
    let cfg = ExperimentConfig::linear(3)
        .duration_s(60.0)
        .seed(2)
        .battery(BatteryConfig {
            capacity_j: 1.0,
            idle_draw_w: 1e-18,
            sleep_draw_w: 0.0,
            low_threshold: 0.25,
        })
        .bulk_flow(5, 1.0, 0.0);
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 0);
    assert_eq!(m.first_death_s, None);
    assert_eq!(m.delivered_packets, 5);
}

/// Scale smoke: a 100-node grid with batteries, energy-aware routing and
/// churn runs its full lifetime inside a bounded wall-clock budget — the
/// workload whose per-event cost used to collapse past 16 nodes (O(n²)
/// truth rebuilds, O(n³) weighted Dijkstra per advertisement, O(frames)
/// battery prediction per radio charge).
#[test]
fn hundred_node_grid_lifetime_smoke() {
    let start = std::time::Instant::now();
    let cfg = ExperimentConfig::grid(10, 10)
        .duration_s(900.0)
        .seed(500)
        .battery(small_battery(0.5))
        .energy_aware_routing()
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(33),
            start: SimDuration::from_secs(5),
            packets: u32::MAX / 2, // long-lived: dies with the network
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        })
        .dynamic(DynamicsEvent::at_s(
            100.0,
            DynamicsAction::NodeDown(NodeId(55)),
        ))
        .dynamic(DynamicsEvent::at_s(
            200.0,
            DynamicsAction::NodeUp(NodeId(55)),
        ));
    let m = run_experiment(&cfg);
    assert_eq!(
        m.battery_deaths, 100,
        "every node must deplete inside the horizon"
    );
    assert!(m.first_death_s.is_some());
    assert!(m.delivered_packets > 0, "the transfer must make progress");
    assert_eq!(m.alive_at_s(900.0), 0);
    // "Bounded runtime" is the point of the smoke test: the whole
    // 900-simulated-second, 100-node lifetime run — deaths, floods and
    // re-advertisements included — runs in well under a second in debug
    // builds. The generous wall bound only catches *catastrophic*
    // blowups on slow CI; the asymptotics themselves are pinned by the
    // incremental-vs-scratch equivalence stats and the committed
    // `scale` bench cells, not by this clock.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "100-node lifetime run took {:?} — a catastrophic scale regression",
        start.elapsed()
    );
}

/// `DynamicsAction::AreaFail` samples its victim disc from node positions
/// **at the instant the event fires** — under mobility the blast hits
/// wherever nodes have wandered to, not their initial placement. This
/// pins that contract (documented on the action) by snapshotting
/// positions just before the blast and diffing the survivor set.
#[test]
fn area_failure_under_mobility_samples_positions_at_event_time() {
    use jtp_netsim::{Network, TraceConfig};
    use jtp_phys::Point;
    use jtp_sim::{run_until, SimTime};

    let (centre, radius) = (Point::new(200.0, 120.0), 130.0);
    let cfg = ExperimentConfig::random(20)
        .duration_s(200.0)
        .seed(17)
        .mobile(5.0) // fast: nodes move far before the blast
        .dynamic(DynamicsEvent::at_s(
            120.0,
            DynamicsAction::AreaFail {
                x_m: centre.x,
                y_m: centre.y,
                radius_m: radius,
            },
        ));
    let (mut net, mut queue) = Network::new(&cfg, TraceConfig::default());
    // Drive to just past the last mobility tick before the blast (ticks
    // are 1 s apart; the blast at t=120 fires on the 119-tick positions
    // because dynamics events were enqueued before that tick).
    run_until(&mut net, &mut queue, SimTime::from_secs_f64(119.5));
    let in_disc_at_event: Vec<bool> = net
        .positions()
        .iter()
        .map(|p| p.distance(centre) <= radius)
        .collect();
    let in_disc_at_start: Vec<bool> =
        jtp_netsim::topology::place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed)
            .iter()
            .map(|p| p.distance(centre) <= radius)
            .collect();
    assert_ne!(
        in_disc_at_event, in_disc_at_start,
        "mobility must have moved the victim set for this test to bite \
         (reseed if the placement ever changes)"
    );
    let horizon = net.horizon();
    run_until(&mut net, &mut queue, horizon);
    for i in 0..20u32 {
        assert_eq!(
            net.node_is_up(NodeId(i)),
            !in_disc_at_event[i as usize],
            "node {i}: victims must be exactly the disc at event time"
        );
    }
}

/// The lifetime catalog scenarios actually exercise the subsystem: every
/// battery entry records deaths under JTP within its horizon.
#[test]
fn lifetime_catalog_entries_record_deaths() {
    for sc in Scenario::catalog().iter().filter(|s| s.battery.is_some()) {
        let m = run_experiment(&sc.build(TransportKind::Jtp));
        assert!(
            m.battery_deaths > 0,
            "{}: no deaths inside the horizon",
            sc.name
        );
        assert!(m.first_death_s.is_some());
        assert!(
            m.delivered_packets > 0,
            "{}: workload never delivered",
            sc.name
        );
    }
}

/// Poisson arrivals flow through the full stack (catalog scenario).
#[test]
fn poisson_traffic_runs_end_to_end() {
    let sc = Scenario::new(
        "poisson-smoke",
        jtp_netsim::TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        },
    )
    .duration_s(600.0)
    .seed(8)
    .traffic(TrafficPattern::Poisson {
        flows: 5,
        rate_per_s: 0.05,
        packets: 10,
        start_s: 5.0,
        loss_tolerance: 0.0,
    });
    let m = run_experiment(&sc.build(TransportKind::Jtp));
    assert_eq!(m.flows.len(), 5);
    assert!(m.delivered_packets >= 40, "most flows should complete");
}
