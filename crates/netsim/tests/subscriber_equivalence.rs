//! Subscriber-equivalence pins: the event layer observes the engine, it
//! never perturbs it. For a slice of the canonical catalog, a run with
//! every emission site compiled out (`NoopSubscriber`) and a run under
//! the full subscriber pile (reception trace + report recorder + time
//! accountant) must produce byte-identical metrics and byte-identical
//! golden digests — "without moving a single golden digest line".
//!
//! The same runs cross-check the [`EventCounters`] fold against
//! `Metrics`: the two count the same world through independent plumbing
//! (engine counters vs the event stream), so every shared quantity must
//! agree exactly.

use jtp_events::{DropCause, EventCounters, NoopSubscriber, TimeAccountant};
use jtp_netsim::runner::{try_run_digest, try_run_digest_with, try_run_subscribed};
use jtp_netsim::{ReportRecorder, Scenario, TransportKind};

/// A catalog slice that exercises every event source: static baseline,
/// churn dynamics, batteries (deaths + energy routing) and mobility.
fn slice() -> Vec<Scenario> {
    let cat = Scenario::catalog();
    let mut out: Vec<Scenario> = Vec::new();
    for pick in [
        |s: &Scenario| s.dynamics.is_empty() && s.battery.is_none() && s.mobile_mps.is_none(),
        |s: &Scenario| !s.dynamics.is_empty() && s.battery.is_none(),
        |s: &Scenario| s.battery.is_some() && s.mobile_mps.is_none(),
        |s: &Scenario| s.mobile_mps.is_some(),
    ] {
        if let Some(sc) = cat
            .iter()
            .find(|s| pick(s) && !out.iter().any(|o| o.name == s.name))
        {
            out.push(sc.clone());
        }
    }
    assert!(out.len() >= 3, "catalog lost its variety");
    out
}

#[test]
fn full_subscriber_stack_never_moves_a_digest() {
    for sc in slice() {
        for transport in [TransportKind::Jtp, TransportKind::Tcp] {
            let cfg = sc.build(transport);
            let off = try_run_digest(&cfg).expect("catalog lowers");
            let (on, _) =
                try_run_digest_with(&cfg, (ReportRecorder::new(), TimeAccountant::default()))
                    .expect("catalog lowers");
            assert_eq!(
                off.to_line(&sc.name),
                on.to_line(&sc.name),
                "{}: subscriber stack moved the golden digest",
                sc.name
            );
        }
    }
}

#[test]
fn noop_and_counting_runs_agree_on_metrics() {
    for sc in slice() {
        let cfg = sc.build(TransportKind::Jtp);
        let (m_off, _) = try_run_subscribed(&cfg, NoopSubscriber).expect("catalog lowers");
        let (m_on, _) = try_run_subscribed(&cfg, EventCounters::default()).expect("catalog lowers");
        let a = serde_json::to_string(&m_off).expect("metrics serialise");
        let b = serde_json::to_string(&m_on).expect("metrics serialise");
        assert_eq!(a, b, "{}: subscriber run perturbed Metrics", sc.name);
    }
}

#[test]
fn event_counters_cross_check_metrics() {
    for sc in slice() {
        let cfg = sc.build(TransportKind::Jtp);
        let (m, c) = try_run_subscribed(&cfg, EventCounters::default()).expect("catalog lowers");
        assert_eq!(
            c.fresh_deliveries, m.delivered_packets,
            "{}: fresh deliveries vs delivered packets",
            sc.name
        );
        assert_eq!(
            c.sends, m.mac_attempts,
            "{}: send events vs MAC attempts",
            sc.name
        );
        assert_eq!(
            c.drops[DropCause::Queue.index()],
            m.queue_drops,
            "{}: queue drops",
            sc.name
        );
        assert_eq!(
            c.drops[DropCause::Arq.index()],
            m.arq_drops,
            "{}: arq drops",
            sc.name
        );
        assert_eq!(
            c.drops[DropCause::Energy.index()],
            m.energy_budget_drops,
            "{}: energy drops",
            sc.name
        );
        assert_eq!(
            c.drops[DropCause::NoRoute.index()],
            m.no_route_drops,
            "{}: no-route drops",
            sc.name
        );
        assert_eq!(
            c.drops[DropCause::Churn.index()],
            m.churn_drops,
            "{}: churn drops",
            sc.name
        );
        assert_eq!(
            c.battery_deaths, m.battery_deaths,
            "{}: battery deaths",
            sc.name
        );
        assert!(
            c.busy_slots <= c.slots,
            "{}: busy slots cannot exceed slots",
            sc.name
        );
        assert!(
            c.fresh_deliveries <= c.deliveries,
            "{}: fresh deliveries exceed total deliveries",
            sc.name
        );
    }
}

#[test]
fn time_accountant_only_runs_keep_emission_sites_cold() {
    // A lone TimeAccountant asks for dispatch spans but no events; the
    // run must still be byte-inert and the accountant must see spans.
    let sc = &slice()[0];
    let cfg = sc.build(TransportKind::Jtp);
    let (m_off, _) = try_run_subscribed(&cfg, NoopSubscriber).expect("catalog lowers");
    let (m_t, t) = try_run_subscribed(&cfg, TimeAccountant::default()).expect("catalog lowers");
    assert_eq!(
        serde_json::to_string(&m_off).unwrap(),
        serde_json::to_string(&m_t).unwrap(),
        "timing spans perturbed the run"
    );
    let total_spans: u64 = jtp_events::Subsystem::ALL.iter().map(|&s| t.spans(s)).sum();
    assert!(total_spans > 0, "no dispatch spans recorded");
}
