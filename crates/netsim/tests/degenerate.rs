//! Degenerate-scenario suite: the adversarial compositions the fuzzer
//! generates, pinned as named tests. The split the panic-free front door
//! promises:
//!
//! * **invalid** inputs (out-of-range endpoints, unordered churn, solid
//!   flaps, zero-period timers…) come back as [`ConfigError`] — never a
//!   panic, never a run,
//! * **degenerate-but-valid** inputs (disconnected at t = 0, batteries
//!   that die in seconds, zero-packet flows, no traffic at all) run to
//!   completion with clean, conservation-respecting metrics.

use jtp_netsim::scenario::{DynamicsSpec, Scenario, TrafficPattern};
use jtp_netsim::{
    try_run_experiment, ConfigError, ExperimentConfig, FlowSpec, TopologyKind, TransportKind,
};
use jtp_phys::BatteryConfig;
use jtp_sim::{NodeId, SimDuration};

// ---------------------------------------------------------------------
// Degenerate but valid: must run, cleanly.
// ---------------------------------------------------------------------

#[test]
fn chain_spaced_beyond_radio_range_delivers_nothing_cleanly() {
    // 120 m spacing with a 100 m radio range: no link ever forms.
    let sc = Scenario::new(
        "disconnected-chain",
        TopologyKind::Linear {
            n: 4,
            spacing_m: 120.0,
        },
    )
    .duration_s(200.0)
    .seed(7)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(3),
        packets: 20,
        start_s: 2.0,
        loss_tolerance: 0.0,
    });
    let m = try_run_experiment(&sc.try_build(TransportKind::Jtp).expect("valid"))
        .expect("degenerate but valid");
    assert_eq!(m.delivered_packets, 0);
    assert_eq!(m.delivery_ratio(), 0.0);
    assert!(m.energy_total_j.is_finite());
}

#[test]
fn partition_from_t0_keeps_endpoints_separated() {
    // The cut is up from the very first instant and outlives the horizon:
    // a network that is *never* whole while traffic is offered.
    let sc = Scenario::new(
        "partitioned-at-birth",
        TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        },
    )
    .duration_s(150.0)
    .seed(11)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(4),
        packets: 15,
        start_s: 1.0,
        loss_tolerance: 0.0,
    })
    .dynamics(DynamicsSpec::Partition {
        group: vec![NodeId(0), NodeId(1)],
        start_s: 0.0,
        end_s: 150.0,
    });
    let m = try_run_experiment(&sc.try_build(TransportKind::Jtp).expect("valid"))
        .expect("degenerate but valid");
    assert_eq!(
        m.delivered_packets, 0,
        "packets crossed a partition that never healed"
    );
}

#[test]
fn batteries_that_die_in_seconds_leave_clean_metrics() {
    let sc = Scenario::new(
        "all-die-early",
        TopologyKind::Linear {
            n: 4,
            spacing_m: 55.0,
        },
    )
    .duration_s(300.0)
    .seed(13)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(3),
        packets: 50,
        start_s: 1.0,
        loss_tolerance: 0.0,
    })
    .battery(BatteryConfig {
        capacity_j: 0.05,
        ..BatteryConfig::javelen_small()
    });
    let m = try_run_experiment(&sc.try_build(TransportKind::Jtp).expect("valid"))
        .expect("degenerate but valid");
    assert!(m.battery_deaths >= 1, "0.05 J outlived the run");
    assert!(m.battery_deaths <= 4);
    // The lifetime accounting must stay coherent however early they die.
    let mut prev = u32::MAX;
    for &(_, alive) in &m.alive_curve {
        assert!(alive <= prev, "alive curve rose");
        prev = alive;
    }
    for (i, r) in m.residual_j.iter().enumerate() {
        assert!(
            (-1e-9..=0.05 + 1e-9).contains(r),
            "node {i} residual {r} J outside [0, capacity]"
        );
    }
}

#[test]
fn zero_packet_flows_run_to_empty_metrics_on_every_transport() {
    for t in [
        TransportKind::Jtp,
        TransportKind::Jnc,
        TransportKind::Tcp,
        TransportKind::Atp,
    ] {
        let mut cfg = ExperimentConfig::linear(3)
            .transport(t)
            .duration_s(120.0)
            .seed(9);
        cfg.flows = vec![FlowSpec::new(
            NodeId(0),
            NodeId(2),
            SimDuration::from_secs_f64(5.0),
            0,
        )];
        let m = try_run_experiment(&cfg).expect("zero-packet flow is valid");
        assert_eq!(m.delivered_packets, 0, "{t:?}");
        assert_eq!(m.flows[0].offered_packets, 0, "{t:?}");
        assert_eq!(m.delivery_ratio(), 0.0, "{t:?}");
        assert!(m.energy_total_j.is_finite(), "{t:?}");
    }
}

#[test]
fn a_scenario_with_no_traffic_at_all_idles_cleanly() {
    let sc = Scenario::new(
        "pure-idle",
        TopologyKind::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 70.0,
        },
    )
    .duration_s(100.0)
    .seed(21);
    let m = try_run_experiment(&sc.try_build(TransportKind::Jtp).expect("valid"))
        .expect("no traffic is valid");
    assert_eq!(m.delivered_packets, 0);
    assert!(m.flows.is_empty());
    assert_eq!(m.delivery_ratio(), 0.0);
    assert!(m.energy_total_j >= 0.0, "idle listening still costs energy");
}

// ---------------------------------------------------------------------
// Invalid: must be refused with a typed error, never a panic.
// ---------------------------------------------------------------------

#[test]
fn invalid_configs_error_instead_of_panicking() {
    // (description, config) pairs, each expected to fail validation.
    let base = || {
        ExperimentConfig::linear(4)
            .transport(TransportKind::Jtp)
            .duration_s(100.0)
            .seed(1)
    };
    let cases: Vec<(&str, ExperimentConfig)> = vec![
        ("single node", ExperimentConfig::linear(1)),
        ("zero nodes", ExperimentConfig::linear(0)),
        ("empty grid", ExperimentConfig::grid(0, 5)),
        ("out-of-range dst", {
            let mut c = base();
            c.flows = vec![FlowSpec::new(
                NodeId(0),
                NodeId(4),
                SimDuration::from_secs_f64(1.0),
                5,
            )];
            c
        }),
        ("self-loop flow", {
            let mut c = base();
            c.flows = vec![FlowSpec::new(
                NodeId(2),
                NodeId(2),
                SimDuration::from_secs_f64(1.0),
                5,
            )];
            c
        }),
        ("loss tolerance above 1", base().bulk_flow(5, 1.0, 1.5)),
        ("NaN spacing", {
            let mut c = base();
            c.topology = TopologyKind::Linear {
                n: 4,
                spacing_m: f64::NAN,
            };
            c
        }),
        ("zero duration", base().duration_s(0.0)),
    ];
    for (what, cfg) in cases {
        let err = try_run_experiment(&cfg);
        assert!(err.is_err(), "{what}: accepted an invalid config");
    }
}

#[test]
fn malformed_scenarios_error_instead_of_panicking() {
    let chain = TopologyKind::Linear {
        n: 4,
        spacing_m: 55.0,
    };
    let cases = vec![
        (
            "unordered churn",
            Scenario::new("x", chain.clone()).dynamics(DynamicsSpec::NodeChurn {
                node: NodeId(1),
                fail_at_s: 80.0,
                recover_at_s: 20.0,
            }),
        ),
        (
            "solid flap",
            Scenario::new("x", chain.clone()).dynamics(DynamicsSpec::LinkFlap {
                a: NodeId(0),
                b: NodeId(1),
                first_down_s: 5.0,
                down_s: 10.0,
                period_s: 10.0,
                cycles: 3,
            }),
        ),
        (
            "improper partition",
            Scenario::new("x", chain.clone()).dynamics(DynamicsSpec::Partition {
                group: (0..4u32).map(NodeId).collect(),
                start_s: 5.0,
                end_s: 50.0,
            }),
        ),
        (
            "laundered loss tolerance",
            // The regression the fuzzer caught: out-of-domain tolerance
            // under a transport whose lowering clamps it away.
            Scenario::new("x", chain).traffic(TrafficPattern::Bulk {
                src: NodeId(0),
                dst: NodeId(3),
                packets: 5,
                start_s: 1.0,
                loss_tolerance: 1.5,
            }),
        ),
    ];
    for (what, sc) in cases {
        for t in [TransportKind::Jtp, TransportKind::Tcp] {
            match sc.try_build(t) {
                Err(ConfigError::Scenario { .. }) | Err(ConfigError::Dynamics { .. }) => {}
                Err(other) => panic!("{what} under {t:?}: unexpected class {other}"),
                Ok(_) => panic!("{what} under {t:?}: accepted"),
            }
        }
    }
}
