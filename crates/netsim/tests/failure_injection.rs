//! Failure-injection tests: the assembled system under hostile conditions.

use jtp_netsim::{run_experiment, ExperimentConfig, FlowSpec, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{NodeId, SimDuration};

fn spec(src: u32, dst: u32, packets: u32, lt: f64) -> FlowSpec {
    FlowSpec {
        src: NodeId(src),
        dst: NodeId(dst),
        start: SimDuration::from_secs(5),
        packets,
        loss_tolerance: lt,
        initial_rate_pps: None,
    }
}

#[test]
fn starved_energy_budget_drops_packets_but_never_wedges() {
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(1200.0)
        .seed(1)
        .flow(spec(0, 5, 100, 0.0));
    // One transmission of an 828-B packet costs ~0.25 mJ = 250_000 nJ;
    // a 6-hop path needs >= 5 transmissions. Budget two hops' worth:
    // every packet dies mid-path until the energy-budget controller
    // raises the budget from measured energy-used samples.
    cfg.jtp.initial_energy_budget_nj = 500_000;
    let m = run_experiment(&cfg);
    assert!(
        m.energy_budget_drops > 0,
        "tight budgets must cause mid-path energy drops"
    );
    // The receiver monitors energy-used and feeds back β·eUCL, so the
    // budget grows and data eventually flows.
    assert!(
        m.delivered_packets > 0,
        "energy-budget controller never recovered: {m:?}"
    );
}

#[test]
fn permanently_partitioned_network_reports_no_route() {
    // Two nodes out of range of each other: the flow can never start
    // moving, and the simulation must terminate cleanly regardless.
    let mut cfg = ExperimentConfig::linear(2)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(2)
        .flow(spec(0, 1, 10, 0.0));
    if let jtp_netsim::TopologyKind::Linear { spacing_m, .. } = &mut cfg.topology {
        *spacing_m = 500.0; // far beyond the 100 m radio range
    }
    let m = run_experiment(&cfg);
    assert_eq!(m.delivered_packets, 0);
    assert!(m.no_route_drops > 0, "routing should report missing routes");
    assert_eq!(m.energy_total_j, 0.0, "nothing transmitted, nothing spent");
}

#[test]
fn continuous_deep_fade_still_delivers_with_full_reliability() {
    // Worst channel we model: 50% of time in fades of 90% loss.
    let mut cfg = ExperimentConfig::linear(4)
        .transport(TransportKind::Jtp)
        .duration_s(4000.0)
        .seed(3)
        .flow(spec(0, 3, 50, 0.0));
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.5,
        bad_loss_floor: 0.9,
        ..GilbertConfig::paper_default()
    };
    let m = run_experiment(&cfg);
    assert_eq!(
        m.flows[0].delivered_packets, 50,
        "full reliability must survive fades: {:?}",
        m.flows[0]
    );
    // Recovery machinery must have been exercised.
    assert!(m.source_retransmissions + m.local_recoveries > 0);
}

#[test]
fn tiny_queues_under_many_flows_do_not_deadlock() {
    let mut cfg = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(1500.0)
        .seed(4);
    cfg.mac.queue_capacity = 2;
    for i in 0..4u32 {
        cfg = cfg.flow(FlowSpec {
            src: NodeId(i % 3),
            dst: NodeId(5 - (i % 2)),
            start: SimDuration::from_secs(5 + i as u64 * 3),
            packets: 60,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    }
    let m = run_experiment(&cfg);
    assert!(m.queue_drops > 0, "2-slot queues must overflow");
    for f in &m.flows {
        assert!(
            f.delivered_packets >= 30,
            "flow {} starved under queue pressure: {f:?}",
            f.flow
        );
    }
}

#[test]
fn single_packet_cache_still_helps_a_little() {
    let mut with_tiny = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(2500.0)
        .seed(5)
        .flow(spec(0, 5, 150, 0.0));
    with_tiny.jtp.cache_capacity = 1;
    with_tiny.gilbert = GilbertConfig {
        bad_fraction: 0.3,
        bad_loss_floor: 0.85,
        ..GilbertConfig::paper_default()
    };
    let m = run_experiment(&with_tiny);
    assert!(m.flows[0].delivered_packets >= 140);
    // With capacity 1, hits are rare but the system must stay correct.
    assert!(m.local_recoveries <= m.source_retransmissions + m.local_recoveries);
}

#[test]
fn flows_starting_at_simulation_end_are_harmless() {
    let cfg = ExperimentConfig::linear(3)
        .transport(TransportKind::Jtp)
        .duration_s(100.0)
        .seed(6)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(2),
            start: SimDuration::from_secs(99),
            packets: 50,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    let m = run_experiment(&cfg);
    assert!(!m.flows[0].completed);
    assert!(m.delivered_packets <= 2);
}

#[test]
fn bidirectional_flows_between_same_pair_coexist() {
    let cfg = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(2500.0)
        .seed(7)
        .flow(spec(0, 4, 120, 0.0))
        .flow(spec(4, 0, 120, 0.0));
    let m = run_experiment(&cfg);
    for f in &m.flows {
        assert!(f.completed, "flow {} incomplete: {f:?}", f.flow);
    }
}

#[test]
fn tcp_survives_deep_fades_eventually() {
    let mut cfg = ExperimentConfig::linear(4)
        .transport(TransportKind::Tcp)
        .duration_s(4000.0)
        .seed(8)
        .flow(spec(0, 3, 40, 0.0));
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.4,
        bad_loss_floor: 0.85,
        ..GilbertConfig::paper_default()
    };
    let m = run_experiment(&cfg);
    assert!(
        m.flows[0].delivered_packets >= 35,
        "TCP should crawl through via RTO: {:?}",
        m.flows[0]
    );
}

#[test]
fn atp_survives_feedback_starvation() {
    // Short simulation where only a couple of constant-rate feedbacks fit:
    // the rate-halving timeout path must keep the sender alive.
    let cfg = ExperimentConfig::linear(4)
        .transport(TransportKind::Atp)
        .duration_s(1000.0)
        .seed(9)
        .flow(spec(0, 3, 60, 0.0));
    let m = run_experiment(&cfg);
    assert!(m.flows[0].delivered_packets >= 50, "{:?}", m.flows[0]);
}
