//! The 1000+-node `xl` scenario family: lowering validity, hierarchical
//! route lawfulness with measured stretch on the real placements, and a
//! wall-clock-bounded end-to-end smoke run (release-only; CI's
//! `xl-smoke` job executes it with `--ignored`).
//!
//! The exact backend's byte-identity across the routing refactor and
//! worker counts is pinned elsewhere (`golden_traces.rs`,
//! `engine_equivalence.rs`) on the historical catalog; this file owns
//! what is *new* at xl scale.

use jtp_netsim::topology::{adjacency_from_positions, place_nodes};
use jtp_netsim::{cluster_spec_for, RoutingBackendKind, Scenario, TransportKind};
use jtp_routing::{BackendSelect, LinkState, UNREACHABLE};
use jtp_sim::{NodeId, SimRng, SimTime};

#[test]
fn xl_catalog_lowers_valid_at_1000_plus_nodes() {
    let cat = Scenario::xl_catalog();
    assert!(cat.len() >= 3, "xl family too small: {}", cat.len());
    for sc in &cat {
        assert!(
            sc.topology.node_count() >= 1000,
            "{} has only {} nodes",
            sc.name,
            sc.topology.node_count()
        );
        assert_eq!(
            sc.routing_backend,
            RoutingBackendKind::Hierarchical,
            "{} must select the hierarchical backend",
            sc.name
        );
        let cfg = sc
            .try_build(TransportKind::Jtp)
            .unwrap_or_else(|e| panic!("{} lowers invalid: {e}", sc.name));
        assert_eq!(cfg.routing_backend, RoutingBackendKind::Hierarchical);
    }
    // Names are unique and disjoint from the historical catalog, whose
    // goldens must never move because of the xl family.
    let historical: Vec<String> = Scenario::catalog().into_iter().map(|s| s.name).collect();
    for sc in &cat {
        assert!(sc.name.starts_with("xl-"), "{} not xl-prefixed", sc.name);
        assert!(!historical.contains(&sc.name));
    }
}

/// On every xl entry's *actual* placement: hierarchical routes are
/// lawful (loop-free, deliver iff the exact backend delivers) and their
/// stretch stays within the destination cluster's subgraph diameter —
/// measured over a deterministic pair sample, with the observed maximum
/// reported.
#[test]
fn xl_placements_route_lawfully_with_bounded_stretch() {
    for sc in Scenario::xl_catalog() {
        let cfg = sc.try_build(TransportKind::Jtp).expect("xl entry lowers");
        let pts = place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed);
        let adj = adjacency_from_positions(&pts, &cfg.pathloss);
        let n = adj.len();

        let mut exact = LinkState::new(&adj, cfg.routing_refresh);
        exact.force_refresh_all(SimTime::ZERO, &adj);
        let select = BackendSelect::Hierarchical(cluster_spec_for(&cfg.topology));
        let mut hier = LinkState::with_backend(&adj, cfg.routing_refresh, &select);
        hier.force_refresh_all(SimTime::ZERO, &adj);
        let back = hier.hierarchical().expect("hierarchical selected");
        let stats = hier.hierarchy_stats().expect("hierarchy stats");
        assert!(
            stats.clusters >= 16,
            "{}: only {} clusters over {n} nodes",
            sc.name,
            stats.clusters
        );

        let mut rng = SimRng::derive(cfg.seed, "xl-stretch-sample");
        let (mut max_stretch, mut sum_stretch, mut sampled) = (0u32, 0u64, 0u64);
        for _ in 0..1500 {
            let a = rng.below(n);
            let b = rng.below(n);
            if a == b {
                continue;
            }
            let (src, dst) = (NodeId(a as u32), NodeId(b as u32));
            let d = exact
                .converged_distance(src, dst)
                .map_or(UNREACHABLE as u32, |d| d);
            let path = hier.trace_path(src, dst);
            if d == UNREACHABLE as u32 {
                assert!(
                    path.is_none(),
                    "{}: {a}->{b} routes despite being exact-unreachable",
                    sc.name
                );
                continue;
            }
            let path =
                path.unwrap_or_else(|| panic!("{}: {a}->{b} fails (exact {d} hops)", sc.name));
            let hops = (path.len() - 1) as u32;
            let bound = d + back.cluster_diameter(dst);
            assert!(
                (d..=bound).contains(&hops),
                "{}: {a}->{b} took {hops} hops (exact {d}, bound {bound})",
                sc.name
            );
            let est = hier
                .remaining_hops(src, dst)
                .unwrap_or_else(|| panic!("{}: no estimate for routable {a}->{b}", sc.name));
            assert!(
                est >= hops,
                "{}: estimate {est} under-counts the {hops}-hop route {a}->{b}",
                sc.name
            );
            max_stretch = max_stretch.max(hops - d);
            sum_stretch += (hops - d) as u64;
            sampled += 1;
        }
        assert!(sampled >= 1000, "{}: sample collapsed", sc.name);
        eprintln!(
            "{}: {} clusters over {n} nodes, {sampled} pairs sampled, \
             stretch max {max_stretch} hops, mean {:.3} hops",
            sc.name,
            stats.clusters,
            sum_stretch as f64 / sampled as f64
        );
    }
}

/// End-to-end xl smoke: one 1024-node catalog entry runs to completion
/// under a wall-clock bound. Release-only (CI's `xl-smoke` job runs
/// `cargo test --release -- --ignored xl_smoke`); debug builds would
/// blow the bound on compiler overhead alone.
#[test]
#[ignore = "release-only wall-clock-bounded smoke (CI xl-smoke job)"]
fn xl_smoke_one_entry_under_wall_clock_bound() {
    let sc = Scenario::xl_catalog()
        .into_iter()
        .find(|s| s.name == "xl-grid-churn")
        .expect("entry exists");
    let cfg = sc.try_build(TransportKind::Jtp).expect("lowers");
    let t0 = std::time::Instant::now();
    let m = jtp_netsim::try_run_experiment(&cfg).expect("runs");
    let wall = t0.elapsed();
    assert!(m.delivered_packets > 0, "xl run delivered nothing: {m:?}");
    // Generous bound: the entry prices at a few seconds in release; a
    // regression to exact-style O(n²) flood repair would blow through
    // this by an order of magnitude.
    assert!(
        wall.as_secs() < 120,
        "xl-grid-churn took {wall:?} (bound 120 s)"
    );
    eprintln!(
        "xl-grid-churn: {} packets delivered in {wall:?}",
        m.delivered_packets
    );
}
