//! Behavioural tests of the scenario engine: node churn, partitions and
//! link flapping must perturb the run the way the physical story says —
//! and the transports must recover whenever recovery is possible.

use jtp_netsim::scenario::{DynamicsSpec, Scenario, TrafficPattern};
use jtp_netsim::{
    run_experiment, DynamicsAction, DynamicsEvent, ExperimentConfig, TopologyKind, TransportKind,
};
use jtp_sim::NodeId;

/// A mid-chain relay crashes while a bulk transfer crosses it and heals
/// later: the transfer must still complete (source retransmissions bridge
/// the outage), and the crash must visibly cost something.
#[test]
fn relay_churn_heals_and_transfer_completes() {
    let sc = Scenario::new(
        "test-relay-churn",
        TopologyKind::Linear {
            n: 5,
            spacing_m: 55.0,
        },
    )
    .duration_s(2500.0)
    .seed(11)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(4),
        packets: 80,
        start_s: 5.0,
        loss_tolerance: 0.0,
    })
    .dynamics(DynamicsSpec::NodeChurn {
        node: NodeId(2),
        fail_at_s: 40.0,
        recover_at_s: 200.0,
    });
    let m = run_experiment(&sc.build(TransportKind::Jtp));
    assert!(m.flows[0].completed, "churn must not wedge the flow: {m:?}");
    assert_eq!(m.flows[0].delivered_packets, 80);
    assert!(
        m.churn_drops + m.no_route_drops + m.arq_drops > 0,
        "a 160 s relay outage under load must cost packets somewhere"
    );
}

/// A chain severed by a *permanent* relay crash: nothing can be delivered
/// after the routes converge, the run terminates cleanly, and the drops
/// are attributed (no-route once views refresh).
#[test]
fn permanent_relay_crash_starves_the_flow() {
    let cfg = ExperimentConfig::linear(4)
        .transport(TransportKind::Jtp)
        .duration_s(600.0)
        .seed(12)
        .bulk_flow(60, 30.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            5.0,
            DynamicsAction::NodeDown(NodeId(1)),
        ));
    let m = run_experiment(&cfg);
    assert_eq!(m.delivered_packets, 0, "no path may survive the cut");
    assert!(!m.flows[0].completed);
    assert!(m.no_route_drops > 0, "converged views must report no-route");
}

/// A crashed *source* cannot send, and its receiver's feedback has no
/// route back; delivery resumes only after recovery.
#[test]
fn crashed_source_drops_then_recovers() {
    let cfg = ExperimentConfig::linear(3)
        .transport(TransportKind::Jtp)
        .duration_s(2000.0)
        .seed(13)
        .bulk_flow(40, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            20.0,
            DynamicsAction::NodeDown(NodeId(0)),
        ))
        .dynamic(DynamicsEvent::at_s(
            300.0,
            DynamicsAction::NodeUp(NodeId(0)),
        ));
    let m = run_experiment(&cfg);
    assert!(
        m.no_route_drops > 0,
        "feedback toward the dead source must be unroutable: {m:?}"
    );
    assert!(
        m.flows[0].completed,
        "the transfer must finish after the source heals: {:?}",
        m.flows[0]
    );
}

/// A partition blacks out the only cut edge of a chain for a window; the
/// transfer stalls, then completes after the heal. The same partition
/// made permanent starves the flow.
#[test]
fn partition_window_stalls_then_heals() {
    let group: Vec<NodeId> = (0..3).map(NodeId).collect();
    let healed = Scenario::new(
        "test-partition-heal",
        TopologyKind::Linear {
            n: 6,
            spacing_m: 55.0,
        },
    )
    .duration_s(2500.0)
    .seed(14)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(5),
        packets: 70,
        start_s: 5.0,
        loss_tolerance: 0.0,
    })
    .dynamics(DynamicsSpec::Partition {
        group: group.clone(),
        start_s: 30.0,
        end_s: 250.0,
    });
    let m = run_experiment(&healed.build(TransportKind::Jtp));
    assert!(m.flows[0].completed, "heal must unblock: {:?}", m.flows[0]);

    let permanent = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(600.0)
        .seed(14)
        .bulk_flow(70, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            30.0,
            DynamicsAction::PartitionStart(group),
        ));
    let m2 = run_experiment(&permanent);
    assert!(!m2.flows[0].completed, "permanent cut must starve");
    assert!(m2.delivered_packets < 70);
    assert!(m2.no_route_drops > 0);
}

/// Link flapping on the only path: the transfer completes across flaps
/// and the blackout windows measurably force recovery work relative to
/// the same run without flapping.
#[test]
fn link_flapping_forces_recovery_work() {
    let base = Scenario::new(
        "test-flap",
        TopologyKind::Linear {
            n: 4,
            spacing_m: 55.0,
        },
    )
    .duration_s(3000.0)
    .seed(15)
    .traffic(TrafficPattern::Bulk {
        src: NodeId(0),
        dst: NodeId(3),
        packets: 100,
        start_s: 5.0,
        loss_tolerance: 0.0,
    });
    let flapping = base.clone().dynamics(DynamicsSpec::LinkFlap {
        a: NodeId(1),
        b: NodeId(2),
        first_down_s: 20.0,
        down_s: 15.0,
        period_s: 60.0,
        cycles: 6,
    });
    let calm = run_experiment(&base.build(TransportKind::Jtp));
    let flapped = run_experiment(&flapping.build(TransportKind::Jtp));
    assert!(flapped.flows[0].completed, "{:?}", flapped.flows[0]);
    let calm_work = calm.source_retransmissions + calm.local_recoveries + calm.arq_drops;
    let flap_work = flapped.source_retransmissions + flapped.local_recoveries + flapped.arq_drops;
    assert!(
        flap_work > calm_work,
        "flapping must force extra recovery (calm {calm_work}, flapped {flap_work})"
    );
}

/// Every catalog scenario must actually run and deliver traffic under
/// JTP — the invariant backing the golden digests (which would happily
/// pin an all-zero run).
#[test]
fn catalog_scenarios_all_deliver_under_jtp() {
    for sc in Scenario::catalog() {
        let m = run_experiment(&sc.build(TransportKind::Jtp));
        assert!(
            m.delivered_packets > 0,
            "catalog scenario {} delivered nothing",
            sc.name
        );
        if sc.battery.is_some() {
            // Lifetime entries offer (quasi-)unbounded work on finite
            // joules: the meaningful invariant is that batteries actually
            // ran out, not that the offer was met.
            assert!(
                m.battery_deaths > 0,
                "lifetime scenario {} never drained a battery",
                sc.name
            );
        } else {
            assert!(
                m.delivery_ratio() > 0.5,
                "catalog scenario {} delivered under half its offered load: {:.3}",
                sc.name,
                m.delivery_ratio()
            );
        }
    }
}

/// TCP and ATP survive a healed mid-chain churn too (the dynamics layer
/// is transport-agnostic).
#[test]
fn baseline_transports_survive_healed_churn() {
    for (t, name) in [(TransportKind::Tcp, "tcp"), (TransportKind::Atp, "atp")] {
        let sc = Scenario::new(
            "test-baseline-churn",
            TopologyKind::Linear {
                n: 4,
                spacing_m: 55.0,
            },
        )
        .duration_s(3000.0)
        .seed(16)
        .traffic(TrafficPattern::Bulk {
            src: NodeId(0),
            dst: NodeId(3),
            packets: 40,
            start_s: 5.0,
            loss_tolerance: 0.0,
        })
        .dynamics(DynamicsSpec::NodeChurn {
            node: NodeId(1),
            fail_at_s: 30.0,
            recover_at_s: 120.0,
        });
        let m = run_experiment(&sc.build(t));
        assert!(
            m.flows[0].delivered_packets >= 35,
            "{name} starved across churn: {:?}",
            m.flows[0]
        );
    }
}
