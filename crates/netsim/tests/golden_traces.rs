//! Golden-trace regression tests: every canonical scenario's JTP run is
//! pinned byte-for-byte by a committed [`GoldenDigest`] line (headline
//! metrics + an FNV over the full metrics encoding + the trace-stream
//! checksum). Any engine change that perturbs observable behaviour —
//! event ordering, RNG consumption, a counter, a float — flips at least
//! one digest and fails here, the same way `engine_equivalence.rs` pins
//! idle-slot skipping.
//!
//! When a change is *intended* to alter results (new defaults, new
//! physics), regenerate the committed file and review the diff:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces
//! ```

use jtp_netsim::{run_digest, Scenario, TransportKind};

/// The committed digests, one line per catalog scenario.
const GOLDEN: &str = include_str!("golden/digests.txt");

fn current_lines() -> Vec<String> {
    Scenario::catalog()
        .iter()
        .map(|sc| run_digest(&sc.build(TransportKind::Jtp)).to_line(&sc.name))
        .collect()
}

#[test]
fn catalog_digests_match_committed_golden_file() {
    let lines = current_lines();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/digests.txt");
        let mut body = String::from(
            "# Golden digests of the canonical scenario catalog under JTP.\n\
             # Regenerate: GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces\n",
        );
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        std::fs::write(path, body).expect("write golden file");
        println!("regenerated {path}");
        return;
    }
    let committed: Vec<&str> = GOLDEN
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        committed.len(),
        lines.len(),
        "golden file covers {} scenarios, catalog has {} — regenerate \
         with GOLDEN_REGEN=1 and review the diff",
        committed.len(),
        lines.len()
    );
    for (want, got) in committed.iter().zip(&lines) {
        assert_eq!(
            got, want,
            "golden digest drift — if intended, regenerate with \
             GOLDEN_REGEN=1 and review the diff"
        );
    }
}

/// The digest machinery itself must be a pure function of the run.
#[test]
fn digests_are_reproducible_within_a_process() {
    let sc = &Scenario::catalog()[0];
    let a = run_digest(&sc.build(TransportKind::Jtp));
    let b = run_digest(&sc.build(TransportKind::Jtp));
    assert_eq!(a, b);
    // And sensitive to the seed (astronomically unlikely to collide).
    let mut other = sc.build(TransportKind::Jtp);
    other.seed ^= 0xdead_beef;
    assert_ne!(run_digest(&other), a, "digest blind to the seed");
}
