//! Golden-trace regression tests: every canonical scenario is pinned
//! byte-for-byte by committed [`GoldenDigest`] lines — one per transport
//! (JTP, TCP, ATP, CUBIC and BBR) — covering the headline metrics, an
//! FNV over the full metrics encoding and the trace-stream checksum,
//! plus a second committed file pinning the FNV checksum of the *entire*
//! typed event stream (the third golden surface). Any engine change that
//! perturbs observable behaviour — event ordering, RNG consumption, a
//! counter, a float — flips at least one digest and fails here, the same
//! way `engine_equivalence.rs` pins idle-slot skipping.
//!
//! Line order is append-only by construction: the original 48 lines
//! (JTP, then TCP, then ATP over the pre-heavy catalog) keep their exact
//! bytes and positions; the CUBIC/BBR blocks and the heavy-scenario
//! blocks only ever append after them.
//!
//! When a change is *intended* to alter results (new defaults, new
//! physics), regenerate the committed files and review the diff:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces
//! ```

use jtp_netsim::{run_digest_events, Scenario, TransportKind};

/// The committed digests, one line per (scenario, transport).
const GOLDEN: &str = include_str!("golden/digests.txt");

/// The committed event-stream checksums, same line order as the digests.
const GOLDEN_EVENTS: &str = include_str!("golden/events.txt");

/// All five transports in golden-file order, with their line tags
/// (`None` = the untagged historical JTP lines).
const TRANSPORTS: [(TransportKind, Option<&str>); 5] = [
    (TransportKind::Jtp, None),
    (TransportKind::Tcp, Some("tcp")),
    (TransportKind::Atp, Some("atp")),
    (TransportKind::Cubic, Some("cubic")),
    (TransportKind::Bbr, Some("bbr")),
];

/// Run the full golden matrix once, producing the digest lines and the
/// event-checksum lines in lockstep order: each transport block over the
/// pre-heavy catalog (historical order, byte-stable), then the heavy
/// scenarios × all five transports appended at the end.
fn current_lines() -> (Vec<String>, Vec<String>) {
    let cat = Scenario::catalog();
    let (heavy, base): (Vec<_>, Vec<_>) = cat.iter().partition(|sc| sc.name.starts_with("heavy-"));
    let mut digests = Vec::new();
    let mut events = Vec::new();
    let mut push = |sc: &Scenario, t: TransportKind, tag: Option<&str>| {
        let name = match tag {
            Some(tag) => format!("{}:{tag}", sc.name),
            None => sc.name.clone(),
        };
        let (d, ev) = run_digest_events(&sc.build(t));
        digests.push(d.to_line(&name));
        events.push(format!("{name} events={ev:016x}"));
    };
    for (t, tag) in TRANSPORTS {
        for sc in &base {
            push(sc, t, tag);
        }
    }
    for sc in &heavy {
        for (t, tag) in TRANSPORTS {
            push(sc, t, tag);
        }
    }
    (digests, events)
}

fn data_lines(file: &str) -> Vec<&str> {
    file.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect()
}

fn check_surface(committed: &str, lines: &[String], what: &str) -> Vec<String> {
    let committed = data_lines(committed);
    assert_eq!(
        committed.len(),
        lines.len(),
        "{what} golden file covers {} runs, catalog produces {} — \
         regenerate with GOLDEN_REGEN=1 and review the diff",
        committed.len(),
        lines.len()
    );
    committed
        .iter()
        .zip(lines)
        .filter(|(want, got)| got != want)
        .map(|(want, got)| diagnose_drift(want, got))
        .collect()
}

#[test]
fn catalog_digests_match_committed_golden_files() {
    let (digests, events) = current_lines();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let write = |rel: &str, header: &str, lines: &[String]| {
            let path = format!("{}/tests/golden/{rel}", env!("CARGO_MANIFEST_DIR"));
            let mut body = String::from(header);
            for l in lines {
                body.push_str(l);
                body.push('\n');
            }
            std::fs::write(&path, body).expect("write golden file");
            println!("regenerated {path}");
        };
        write(
            "digests.txt",
            "# Golden digests of the canonical scenario catalog: JTP per scenario,\n\
             # then `name:tcp` and `name:atp` pins.\n\
             # Regenerate: GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces\n\
             # Appended: `name:cubic` / `name:bbr` pins, then heavy-* x five transports.\n",
            &digests,
        );
        write(
            "events.txt",
            "# FNV-1a checksums of the full typed event stream, one per run,\n\
             # same order as digests.txt (the third golden surface).\n\
             # Regenerate: GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces\n",
            &events,
        );
        return;
    }
    let mut drift = check_surface(GOLDEN, &digests, "digest");
    drift.extend(check_surface(GOLDEN_EVENTS, &events, "event-checksum"));
    assert!(
        drift.is_empty(),
        "golden drift in {} run(s):\n{}\n\
         if intended, regenerate with GOLDEN_REGEN=1 cargo test -p \
         jtp-netsim --test golden_traces and review the diff",
        drift.len(),
        drift.join("\n")
    );
}

/// Name the scenario and the exact digest fields that moved, so a failure
/// says *what kind* of drift happened — e.g. `trace` alone means the
/// reception stream changed while every counter survived, `metrics`
/// alone means some counter or float moved without touching deliveries,
/// and `events` alone means the wider event stream (slots, sends, drops,
/// floods…) shifted while every pinned metric survived.
fn diagnose_drift(want: &str, got: &str) -> String {
    let fields = |line: &str| -> (String, Vec<(String, String)>) {
        let mut it = line.split_whitespace();
        let name = it.next().unwrap_or("?").to_string();
        let kv = it
            .filter_map(|tok| tok.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        (name, kv)
    };
    let (name, want_kv) = fields(want);
    let (got_name, got_kv) = fields(got);
    let mut moved = Vec::new();
    if got_name != name {
        moved.push(format!("scenario order changed ({name} vs {got_name})"));
    }
    for (k, wv) in &want_kv {
        match got_kv.iter().find(|(gk, _)| gk == k) {
            Some((_, gv)) if gv != wv => moved.push(format!("{k}: {wv} -> {gv}")),
            None => moved.push(format!("{k}: {wv} -> (missing)")),
            _ => {}
        }
    }
    if moved.is_empty() {
        moved.push(format!("line changed shape: {want:?} vs {got:?}"));
    }
    format!("  {name}: {}", moved.join(", "))
}

/// The digest machinery itself must be a pure function of the run.
#[test]
fn digests_are_reproducible_within_a_process() {
    let sc = &Scenario::catalog()[0];
    let a = run_digest_events(&sc.build(TransportKind::Jtp));
    let b = run_digest_events(&sc.build(TransportKind::Jtp));
    assert_eq!(a, b);
    // And sensitive to the seed (astronomically unlikely to collide).
    let mut other = sc.build(TransportKind::Jtp);
    other.seed ^= 0xdead_beef;
    let c = run_digest_events(&other);
    assert_ne!(c.0, a.0, "digest blind to the seed");
    assert_ne!(c.1, a.1, "event checksum blind to the seed");
}

/// The event checksum must pin behaviour the reception trace cannot see:
/// the same deliveries through a different MAC schedule (different seed
/// but, more surgically, a changed contention pattern) flip it. Here we
/// check the cheap invariant that the new-transport digests differ from
/// each other — five distinct congestion controllers cannot produce the
/// same full event stream on the same scenario.
#[test]
fn transports_produce_distinct_event_streams() {
    let sc = &Scenario::catalog()[0];
    let mut sums = std::collections::BTreeSet::new();
    for (t, _) in TRANSPORTS {
        let (_, ev) = run_digest_events(&sc.build(t));
        sums.insert(ev);
    }
    assert_eq!(sums.len(), TRANSPORTS.len(), "event-stream collision");
}
