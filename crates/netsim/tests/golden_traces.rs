//! Golden-trace regression tests: every canonical scenario is pinned
//! byte-for-byte by committed [`GoldenDigest`] lines — one per transport
//! (JTP, plus TCP and ATP now that their timers are stable) — covering
//! the headline metrics, an FNV over the full metrics encoding and the
//! trace-stream checksum. Any engine change that perturbs observable
//! behaviour — event ordering, RNG consumption, a counter, a float —
//! flips at least one digest and fails here, the same way
//! `engine_equivalence.rs` pins idle-slot skipping.
//!
//! When a change is *intended* to alter results (new defaults, new
//! physics), regenerate the committed file and review the diff:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces
//! ```

use jtp_netsim::{run_digest, Scenario, TransportKind};

/// The committed digests, one line per catalog scenario.
const GOLDEN: &str = include_str!("golden/digests.txt");

fn current_lines() -> Vec<String> {
    // JTP lines first (historical order), then the TCP and ATP pins.
    let cat = Scenario::catalog();
    let mut lines: Vec<String> = cat
        .iter()
        .map(|sc| run_digest(&sc.build(TransportKind::Jtp)).to_line(&sc.name))
        .collect();
    for (t, tag) in [(TransportKind::Tcp, "tcp"), (TransportKind::Atp, "atp")] {
        lines.extend(
            cat.iter()
                .map(|sc| run_digest(&sc.build(t)).to_line(&format!("{}:{tag}", sc.name))),
        );
    }
    lines
}

#[test]
fn catalog_digests_match_committed_golden_file() {
    let lines = current_lines();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/digests.txt");
        let mut body = String::from(
            "# Golden digests of the canonical scenario catalog: JTP per scenario,\n\
             # then `name:tcp` and `name:atp` pins.\n\
             # Regenerate: GOLDEN_REGEN=1 cargo test -p jtp-netsim --test golden_traces\n",
        );
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        std::fs::write(path, body).expect("write golden file");
        println!("regenerated {path}");
        return;
    }
    let committed: Vec<&str> = GOLDEN
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        committed.len(),
        lines.len(),
        "golden file covers {} scenarios, catalog has {} — regenerate \
         with GOLDEN_REGEN=1 and review the diff",
        committed.len(),
        lines.len()
    );
    let mut drift = Vec::new();
    for (want, got) in committed.iter().zip(&lines) {
        if got != want {
            drift.push(diagnose_drift(want, got));
        }
    }
    assert!(
        drift.is_empty(),
        "golden digest drift in {} scenario(s):\n{}\n\
         if intended, regenerate with GOLDEN_REGEN=1 cargo test -p \
         jtp-netsim --test golden_traces and review the diff",
        drift.len(),
        drift.join("\n")
    );
}

/// Name the scenario and the exact digest fields that moved, so a failure
/// says *what kind* of drift happened — e.g. `trace` alone means the
/// reception stream changed while every counter survived, while
/// `metrics` alone means some counter or float moved without touching
/// deliveries.
fn diagnose_drift(want: &str, got: &str) -> String {
    let fields = |line: &str| -> (String, Vec<(String, String)>) {
        let mut it = line.split_whitespace();
        let name = it.next().unwrap_or("?").to_string();
        let kv = it
            .filter_map(|tok| tok.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        (name, kv)
    };
    let (name, want_kv) = fields(want);
    let (got_name, got_kv) = fields(got);
    let mut moved = Vec::new();
    if got_name != name {
        moved.push(format!("scenario order changed ({name} vs {got_name})"));
    }
    for (k, wv) in &want_kv {
        match got_kv.iter().find(|(gk, _)| gk == k) {
            Some((_, gv)) if gv != wv => moved.push(format!("{k}: {wv} -> {gv}")),
            None => moved.push(format!("{k}: {wv} -> (missing)")),
            _ => {}
        }
    }
    if moved.is_empty() {
        moved.push(format!("line changed shape: {want:?} vs {got:?}"));
    }
    format!("  {name}: {}", moved.join(", "))
}

/// The digest machinery itself must be a pure function of the run.
#[test]
fn digests_are_reproducible_within_a_process() {
    let sc = &Scenario::catalog()[0];
    let a = run_digest(&sc.build(TransportKind::Jtp));
    let b = run_digest(&sc.build(TransportKind::Jtp));
    assert_eq!(a, b);
    // And sensitive to the seed (astronomically unlikely to collide).
    let mut other = sc.build(TransportKind::Jtp);
    other.seed ^= 0xdead_beef;
    assert_ne!(run_digest(&other), a, "digest blind to the seed");
}
