//! Mobile-topology tests: the spatial-grid geometry path, the diffed
//! mobility truth, the first-partition metrics fix, and the mobile
//! scale-family smoke (the CI `mobile-smoke` job runs this file in
//! release mode).

use jtp_netsim::scenario::Scenario;
use jtp_netsim::topology::{
    adjacency_from_positions, adjacency_from_positions_brute, edges_from_positions, field_for,
    geometry_edge_diff, place_nodes,
};
use jtp_netsim::{
    run_experiment, DynamicsAction, DynamicsEvent, ExperimentConfig, MaskedTruth, TopologyKind,
    TransportKind,
};
use jtp_phys::{MobilityModel, PathLoss, Point, RandomWaypoint};
use jtp_sim::{NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spatial-grid adjacency is bit-identical to the brute-force
    /// all-pairs scan for arbitrary placements and radio ranges —
    /// including clumped placements where many nodes share a cell and
    /// sparse ones where most cells are empty.
    #[test]
    fn spatial_grid_matches_brute_force(
        seed in any::<u64>(),
        n in 2usize..120,
        side in 20.0f64..900.0,
        max_range in 30.0f64..200.0,
    ) {
        let mut rng = jtp_sim::SimRng::derive(seed, "grid-vs-brute");
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
            .collect();
        let pl = PathLoss {
            full_quality_range: max_range * 0.6,
            max_range,
            ..PathLoss::javelen_default()
        };
        let grid = adjacency_from_positions(&pts, &pl);
        let brute = adjacency_from_positions_brute(&pts, &pl);
        prop_assert_eq!(grid, brute, "grid vs brute diverged (n={}, range={})", n, max_range);
    }
}

/// Diffed mobility truth must equal the scratch `set_geometry` rebuild
/// across real random-waypoint trajectories — the exact per-tick shape
/// the network's mobility handler executes — with masks (a downed node,
/// a blocked link) layered on top.
#[test]
fn diffed_waypoint_truth_matches_scratch_rebuild() {
    let kind = TopologyKind::Grid {
        cols: 6,
        rows: 6,
        spacing_m: 80.0,
    };
    let pl = PathLoss::javelen_default();
    let field = field_for(&kind);
    let start = place_nodes(&kind, &pl, 4);
    let mut walkers: Vec<RandomWaypoint> = start
        .iter()
        .enumerate()
        .map(|(i, &p)| RandomWaypoint::new(field, p, 2.5, 47.0, 5.0, 21, i as u64))
        .collect();
    let mut positions = start.clone();
    let mut fast = MaskedTruth::new(adjacency_from_positions(&positions, &pl));
    let mut scratch = fast.clone();
    // Masks that must survive every geometry swap identically.
    fast.set_node_up(NodeId(7), false);
    scratch.set_node_up(NodeId(7), false);
    fast.set_link_blocked(NodeId(0), NodeId(1), true);
    scratch.set_link_blocked(NodeId(0), NodeId(1), true);
    let mut total_changed = 0usize;
    for tick in 1..=300u64 {
        let now = SimTime::from_secs_f64(tick as f64);
        for (i, w) in walkers.iter_mut().enumerate() {
            positions[i] = w.position_at(now);
        }
        // The exact per-tick shape the network's mobility handler runs:
        // sorted in-range edge list → merge-diff → in-place patch.
        let edges = edges_from_positions(&positions, &pl);
        let diff = geometry_edge_diff(fast.geometry(), &edges);
        total_changed += diff.len();
        fast.apply_geometry_diff(&diff);
        scratch.set_geometry(adjacency_from_positions_brute(&positions, &pl));
        assert_eq!(
            fast.geometry(),
            scratch.geometry(),
            "tick {tick}: patched geometry diverged from the brute scan"
        );
        assert_eq!(
            fast.adjacency(),
            scratch.adjacency(),
            "tick {tick}: diffed truth diverged from scratch rebuild"
        );
        assert_eq!(*fast.adjacency(), fast.rebuilt(), "tick {tick}");
    }
    assert!(
        total_changed > 0,
        "waypoint run never flipped a link — the test exercised nothing"
    );
}

/// A link blackout that cuts the only bridge must record
/// `first_partition_s` even though no battery ever dies — the metric is
/// about the live node set disconnecting, whatever the cause. (It used
/// to be recorded only on battery-death disconnections.)
#[test]
fn blackout_partition_records_first_partition() {
    let cfg = ExperimentConfig::linear(5)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(9)
        .bulk_flow(20, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            40.0,
            DynamicsAction::LinkDown(NodeId(2), NodeId(3)),
        ))
        .dynamic(DynamicsEvent::at_s(
            60.0,
            DynamicsAction::LinkUp(NodeId(2), NodeId(3)),
        ));
    let m = run_experiment(&cfg);
    assert_eq!(m.battery_deaths, 0, "no batteries in this run");
    let t = m
        .first_partition_s
        .expect("blackout cut the chain: first_partition_s must be set");
    assert!(
        (t - 40.0).abs() < 1e-9,
        "recorded at the blackout instant, got {t}"
    );
}

/// A scheduled partition (the `PartitionStart` dynamics) records the
/// metric at its start, and the later heal does not unset it; node churn
/// that severs a chain interior records it too.
#[test]
fn scheduled_partition_and_churn_record_first_partition() {
    let part = ExperimentConfig::linear(6)
        .transport(TransportKind::Jtp)
        .duration_s(400.0)
        .seed(10)
        .bulk_flow(15, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            70.0,
            DynamicsAction::PartitionStart(vec![NodeId(0), NodeId(1), NodeId(2)]),
        ))
        .dynamic(DynamicsEvent::at_s(120.0, DynamicsAction::PartitionEnd));
    let m = run_experiment(&part);
    assert_eq!(m.first_partition_s, Some(70.0));

    let churn = ExperimentConfig::linear(4)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(11)
        .bulk_flow(15, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            30.0,
            DynamicsAction::NodeDown(NodeId(1)),
        ))
        .dynamic(DynamicsEvent::at_s(90.0, DynamicsAction::NodeUp(NodeId(1))));
    let m = run_experiment(&churn);
    // Node 1 down splits {0} from {2, 3}: recorded at the crash.
    assert_eq!(m.first_partition_s, Some(30.0));

    // A connected-surviving-set event must NOT record it: losing an
    // endpoint of a chain leaves the survivors mutually reachable.
    let edge = ExperimentConfig::linear(4)
        .transport(TransportKind::Jtp)
        .duration_s(200.0)
        .seed(12)
        .bulk_flow(10, 5.0, 0.0)
        .dynamic(DynamicsEvent::at_s(
            30.0,
            DynamicsAction::NodeDown(NodeId(3)),
        ));
    let m = run_experiment(&edge);
    assert_eq!(m.first_partition_s, None, "survivors stayed connected");
}

/// The mobile scale family runs end to end inside a generous wall-clock
/// bound — the point of the tentpole: a 100+-node *mobile* run priced
/// like a static one. (The asymptotics are pinned by the equivalence
/// stats and the committed `mobility` bench cells; this clock only
/// catches catastrophic regressions on slow CI.)
#[test]
fn mobile_scale_catalog_smoke() {
    let start = std::time::Instant::now();
    let catalog = Scenario::catalog();
    let mobile: Vec<_> = catalog
        .iter()
        .filter(|s| s.mobile_mps.is_some() && s.topology.node_count() >= 100)
        .collect();
    assert!(
        mobile.len() >= 2,
        "mobile scale family missing from catalog"
    );
    for sc in mobile {
        let m = run_experiment(&sc.build(TransportKind::Jtp));
        assert!(
            m.delivered_packets > 0,
            "{}: mobile run delivered nothing",
            sc.name
        );
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "mobile scale runs took {:?} — a catastrophic mobility-path regression",
        start.elapsed()
    );
}
