//! Metamorphic invariants on the canonical catalog — the same rules the
//! fuzzer (`jtp_netsim::fuzz`) sweeps over generated scenarios, pinned
//! here on hand-picked catalog members so a regression names a scenario
//! a human recognises.
//!
//! Three families:
//!
//! * **post-horizon dynamics are inert** — the network only schedules
//!   dynamics with `at <= horizon`, so a run with extra events past the
//!   end must be byte-identical ("dynamics-free ≡ static", expressed in
//!   the form that is actually true at run level),
//! * **node relabelling preserves shortest-path distances** — the
//!   distance matrix commutes with any permutation of node labels
//!   (next *hops* are excluded by design: ties break on node id),
//! * **unit-weight energy routing ≡ hop routing** — with every node
//!   advertising weight 1, the energy-weighted tables must equal plain
//!   hop-count tables, next hop for next hop.

use jtp_netsim::topology::{adjacency_from_positions, try_place_nodes};
use jtp_netsim::{run_digest, DynamicsAction, DynamicsEvent, Scenario, TransportKind};
use jtp_routing::LinkState;
use jtp_sim::{NodeId, SimRng, SimTime};

/// Small, fast catalog members (the 100+-node members are exercised by
/// the scale suites; metamorphic pins don't need them).
const PINNED: &[&str] = &["chain-bulk", "grid-cross", "chain-onoff"];

fn pinned() -> Vec<Scenario> {
    let cat = Scenario::catalog();
    PINNED
        .iter()
        .map(|name| {
            cat.iter()
                .find(|sc| sc.name == *name)
                .unwrap_or_else(|| panic!("catalog lost scenario {name}"))
                .clone()
        })
        .collect()
}

#[test]
fn post_horizon_dynamics_are_inert() {
    for sc in pinned() {
        let cfg = sc.build(TransportKind::Jtp);
        let base = run_digest(&cfg);
        let mut extended = cfg.clone();
        let horizon = cfg.duration.as_secs_f64();
        extended.dynamics.extend([
            DynamicsEvent::at_s(horizon + 1.0, DynamicsAction::NodeDown(NodeId(0))),
            DynamicsEvent::at_s(horizon + 30.0, DynamicsAction::NodeUp(NodeId(0))),
        ]);
        assert_eq!(
            run_digest(&extended),
            base,
            "{}: dynamics scheduled past the horizon perturbed the run",
            sc.name
        );
    }
}

#[test]
fn relabelling_preserves_distance_matrices() {
    for sc in pinned() {
        let cfg = sc.build(TransportKind::Jtp);
        let pts = try_place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed)
            .unwrap_or_else(|e| panic!("{}: placement failed: {e}", sc.name));
        let adj = adjacency_from_positions(&pts, &cfg.pathloss);
        let n = adj.len();
        let mut perm: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        SimRng::derive(cfg.seed, "metamorphic-perm").shuffle(&mut perm);
        let relabelled = adj.permuted(&perm);
        let d = adj.all_pairs_distances();
        let dp = relabelled.all_pairs_distances();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    d[a][b],
                    dp[perm[a].index()][perm[b].index()],
                    "{}: distance {a}->{b} changed under relabelling",
                    sc.name
                );
            }
        }
    }
}

#[test]
fn unit_weight_energy_routing_equals_hop_routing() {
    for sc in pinned() {
        let cfg = sc.build(TransportKind::Jtp);
        let pts = try_place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed)
            .unwrap_or_else(|e| panic!("{}: placement failed: {e}", sc.name));
        let adj = adjacency_from_positions(&pts, &cfg.pathloss);
        let n = adj.len();
        let mut hop = LinkState::new(&adj, cfg.routing_refresh);
        let mut unit = LinkState::new(&adj, cfg.routing_refresh);
        unit.set_node_weights(Some(vec![1u16; n]));
        // Views pick weighted tables up on the next refresh, not on set.
        hop.force_refresh_all(SimTime::ZERO, &adj);
        unit.force_refresh_all(SimTime::ZERO, &adj);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a == b {
                    continue;
                }
                assert_eq!(
                    hop.next_hop(NodeId(a), NodeId(b)),
                    unit.next_hop(NodeId(a), NodeId(b)),
                    "{}: unit-weight routing diverged from hop routing at {a}->{b}",
                    sc.name
                );
            }
        }
    }
}
