//! # jtp-bench — experiment harness
//!
//! One binary per figure/table of the paper (see DESIGN.md §4 for the
//! index). Every binary accepts `--quick` (reduced replicas/durations for
//! smoke runs) and `--json <path>` (machine-readable results next to the
//! human-readable tables).
//!
//! The binaries print the same rows/series the paper reports; absolute
//! values differ from the paper's OPNET/JAVeLEN numbers (different radio
//! constants), but the *shape* — who wins, by what factor, where the
//! crossovers fall — is the reproduction target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jtp_netsim::{ExperimentConfig, FlowSpec};
use jtp_sim::{NodeId, SimDuration, SimRng};
use serde::Serialize;
use std::path::PathBuf;

/// Common command-line arguments of the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Reduced replicas and durations (CI-friendly).
    pub quick: bool,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Named sections to run (empty = all). Only populated by
    /// [`Args::parse_with_sections`]; the plain [`Args::parse`] rejects
    /// `--section` outright, so a binary without sections can never
    /// accept the flag and silently ignore it.
    pub sections: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args`. `--section` is an error here — use
    /// [`Args::parse_with_sections`] in binaries that define sections.
    pub fn parse() -> Args {
        Self::parse_inner(None)
    }

    /// Parse from `std::env::args`, accepting `--section <name>`
    /// (repeatable) restricted to `known`. A request for a section this
    /// binary does not have is a **hard error, never a silent skip**: a
    /// CI job asking for a section that was renamed or dropped must
    /// turn red, not upload an artifact missing the data it gates on.
    pub fn parse_with_sections(known: &[&str]) -> Args {
        Self::parse_inner(Some(known))
    }

    fn parse_inner(known: Option<&[&str]>) -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = it.next().map(PathBuf::from),
                "--section" => {
                    let Some(known) = known else {
                        eprintln!("this binary has no sections; --section is not supported");
                        std::process::exit(2);
                    };
                    match it.next() {
                        Some(s) if known.iter().any(|k| *k == s) => out.sections.push(s),
                        Some(s) => {
                            eprintln!(
                                "unknown --section {s:?}; this binary has: {}",
                                known.join(", ")
                            );
                            std::process::exit(2);
                        }
                        None => {
                            eprintln!("--section requires a name");
                            std::process::exit(2);
                        }
                    }
                }
                "--help" | "-h" => {
                    let section = if known.is_some() {
                        " [--section <name>]..."
                    } else {
                        ""
                    };
                    eprintln!("usage: <bin> [--quick] [--json <path>]{section}");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Pick between full and quick values.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Should the named section run? (All sections run when no
    /// `--section` was given.)
    pub fn section_enabled(&self, name: &str) -> bool {
        self.sections.is_empty() || self.sections.iter().any(|s| s == name)
    }
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Merge `{"<key>": body}` into an existing pretty-printed JSON object
/// file, or write a fresh one. Purely textual (the compat stand-ins have
/// no JSON parser), relying on the 2-space serde pretty format this crate
/// always writes: top-level keys — and only top-level keys — start a line
/// with exactly two spaces. An existing `"<key>"` section is replaced in
/// place (bounded by the next top-level key or the closing brace); every
/// other section is preserved verbatim. Non-object targets are refused
/// instead of silently corrupted.
pub fn merge_json_section(path: &std::path::Path, key: &str, body_json: &str) {
    let entry = format!("\n  \"{key}\": {}", body_json.replace('\n', "\n  "));
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let t = existing.trim_end();
            assert!(
                t.starts_with('{') && t.ends_with('}'),
                "{path:?} is not a JSON object; refusing to merge a \"{key}\" section into it"
            );
            let inner = &t[1..t.len() - 1];
            let marker = format!("\n  \"{key}\":");
            let (before, after) = match inner.find(&marker) {
                Some(pos) => {
                    let rest = &inner[pos + marker.len()..];
                    let end = rest
                        .find("\n  \"")
                        .map(|e| pos + marker.len() + e)
                        .unwrap_or(inner.len());
                    (&inner[..pos], &inner[end..])
                }
                None => (inner, ""),
            };
            let mut out = String::from("{");
            let before = before.trim_end().trim_end_matches(',');
            if !before.trim().is_empty() {
                out.push_str(before);
                out.push(',');
            }
            out.push_str(&entry);
            let after = after.trim_end();
            if !after.trim().is_empty() {
                out.push(',');
                out.push_str(after);
            }
            out.push_str("\n}");
            out
        }
        Err(_) => format!("{{{entry}\n}}"),
    };
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
    println!("\n[\"{key}\" section written to {path:?}]");
}

/// Serialise results to the requested JSON path, if any.
pub fn maybe_write_json<T: Serialize>(args: &Args, value: &T) {
    if let Some(path) = &args.json {
        let s = serde_json::to_string_pretty(value).expect("serialisable results");
        std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("\n[json results written to {path:?}]");
    }
}

/// Generate `k` random flows with distinct endpoints over `n` nodes,
/// starting uniformly in `[start_lo, start_hi]` seconds (the paper's
/// "source and destination nodes … chosen randomly").
pub fn random_flows(
    n: usize,
    k: usize,
    packets: u32,
    start_lo: f64,
    start_hi: f64,
    seed: u64,
) -> Vec<FlowSpec> {
    let mut rng = SimRng::derive(seed, "workload-flows");
    (0..k)
        .map(|_| {
            let src = rng.below(n);
            let dst = loop {
                let d = rng.below(n);
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                src: NodeId(src as u32),
                dst: NodeId(dst as u32),
                start: SimDuration::from_secs_f64(rng.uniform(start_lo, start_hi)),
                packets,
                loss_tolerance: 0.0,
                initial_rate_pps: None,
            }
        })
        .collect()
}

/// Attach pre-generated flows to a config.
pub fn with_flows(mut cfg: ExperimentConfig, flows: Vec<FlowSpec>) -> ExperimentConfig {
    cfg.flows = flows;
    cfg
}

/// Mean of a slice (0 on empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_flows_have_distinct_endpoints() {
        let flows = random_flows(10, 20, 50, 900.0, 1000.0, 3);
        assert_eq!(flows.len(), 20);
        for f in &flows {
            assert_ne!(f.src, f.dst);
            let s = f.start.as_secs_f64();
            assert!((900.0..=1000.0).contains(&s));
        }
    }

    #[test]
    fn random_flows_deterministic() {
        let a = random_flows(8, 5, 10, 0.0, 10.0, 7);
        let b = random_flows(8, 5, 10, 0.0, 10.0, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
        }
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn merge_json_section_inserts_replaces_and_preserves() {
        let dir = std::env::temp_dir().join(format!("jtp-bench-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merged.json");
        let _ = std::fs::remove_file(&path);

        // Fresh file.
        merge_json_section(&path, "alpha", "{\n  \"x\": 1\n}");
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\n  \"alpha\": {\n    \"x\": 1\n  }\n}");

        // Append a second section, preserving the first verbatim.
        merge_json_section(&path, "beta", "[1, 2]");
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "{\n  \"alpha\": {\n    \"x\": 1\n  },\n  \"beta\": [1, 2]\n}"
        );

        // Replace a *non-trailing* section in place; the tail survives.
        merge_json_section(&path, "alpha", "7");
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\n  \"alpha\": 7,\n  \"beta\": [1, 2]\n}");

        // Replace the trailing section.
        merge_json_section(&path, "beta", "8");
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\n  \"alpha\": 7,\n  \"beta\": 8\n}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn section_selection_defaults_to_all() {
        let args = Args::default();
        assert!(args.section_enabled("mobility"));
        let picked = Args {
            sections: vec!["mobility".into()],
            ..Args::default()
        };
        assert!(picked.section_enabled("mobility"));
        assert!(!picked.section_enabled("scale"));
    }
}
