//! Differential scenario fuzzer driver.
//!
//! Sweeps a window of generated adversarial scenarios through
//! `jtp_netsim::fuzz`'s oracle stack (naive vs skip engine, legacy vs
//! incremental rebuilds, partitioned vs sequential flood-plane engine at
//! workers ∈ {2, 4}, parallel vs sequential batches, metamorphic
//! invariants, conservation checks). Panics inside a case are caught and
//! reported as failures with a self-contained repro, so one bad case
//! never hides the rest of the sweep; genuine divergences are greedily
//! shrunk to a minimal still-failing scenario before being reported.
//!
//! ```text
//! cargo run --release -p jtp-bench --bin fuzz_scenarios -- \
//!     [--cases N] [--seed S] [--start I] [--repro-file PATH]
//! ```
//!
//! Exits 1 if any case diverges (CI fails the fuzz-smoke job on that and
//! uploads `--repro-file` as an artifact).

use jtp_netsim::{CaseOutcome, ScenarioGen};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

struct FuzzArgs {
    cases: u64,
    seed: u64,
    start: u64,
    repro_file: Option<String>,
}

fn parse_args() -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        cases: 500,
        seed: 1,
        start: 0,
        repro_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cases" => {
                out.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--start" => {
                out.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--repro-file" => out.repro_file = Some(value("--repro-file")?),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_scenarios [--cases N] [--seed S] [--start I] [--repro-file PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_scenarios: {e}");
            std::process::exit(2);
        }
    };
    let gen = ScenarioGen::new(args.seed);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut engine_runs = 0u64;
    let mut repros: Vec<String> = Vec::new();

    println!(
        "fuzzing {} cases (seed {}, indices {}..{})",
        args.cases,
        args.seed,
        args.start,
        args.start + args.cases
    );
    for index in args.start..args.start + args.cases {
        // A panic inside the engine is itself a finding: report it with
        // the same repro shape as an oracle divergence and keep sweeping.
        let report = catch_unwind(AssertUnwindSafe(|| gen.run_case(index)));
        match report {
            Ok(r) => match &r.outcome {
                CaseOutcome::Pass { engine_runs: n } => {
                    passed += 1;
                    engine_runs += *n as u64;
                }
                CaseOutcome::Rejected { .. } => rejected += 1,
                CaseOutcome::Diverged { .. } => {
                    let repro = r.repro();
                    eprintln!("{repro}");
                    repros.push(repro);
                }
            },
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                let case = gen.generate(index);
                let repro = format!(
                    "--- fuzz case seed={} index={index} transport={:?} ---\n\
                     PANIC: {msg}\n\
                     rerun: cargo run --release -p jtp-bench --bin fuzz_scenarios -- \
                     --seed {} --start {index} --cases 1\n\
                     scenario: {:#?}\n",
                    args.seed, case.transport, args.seed, case.scenario
                );
                eprintln!("{repro}");
                repros.push(repro);
            }
        }
        if (index + 1 - args.start).is_multiple_of(100) {
            println!(
                "  {:>6}/{} done  ({passed} passed, {rejected} rejected, {} diverged)",
                index + 1 - args.start,
                args.cases,
                repros.len()
            );
        }
    }

    println!(
        "done: {passed} passed ({engine_runs} engine runs), {rejected} rejected, {} diverged",
        repros.len()
    );
    if let Some(path) = &args.repro_file {
        if repros.is_empty() {
            let _ = std::fs::remove_file(path);
        } else {
            let mut f = std::fs::File::create(path).expect("create repro file");
            for r in &repros {
                writeln!(f, "{r}").expect("write repro file");
            }
            println!("repros written to {path}");
        }
    }
    if !repros.is_empty() {
        std::process::exit(1);
    }
}
