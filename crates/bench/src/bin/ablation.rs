//! Ablation study — sensitivity of JTP to its design parameters.
//!
//! Not a paper figure: this sweeps the design choices DESIGN.md calls out
//! and confirms each mechanism earns its keep on a common scenario
//! (7-node chain, deep fades, one reliable bulk flow):
//!
//! * PI²/MD gains `K_I`, `K_D` (stability region, §5.2.2),
//! * flip-flop outlier trigger (early-feedback sensitivity),
//! * feedback aggregation `n` (T = max(T_lb, n/rate)),
//! * the mechanism toggles: caching, back-off, variable feedback.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, ExperimentConfig, Metrics, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    energy_uj_per_bit: f64,
    goodput_kbps: f64,
    source_rtx: f64,
    local_recoveries: f64,
    queue_drops_data: f64,
}

fn base(args: &Args) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::linear(7)
        .transport(TransportKind::Jtp)
        .duration_s(args.pick(3000.0, 900.0))
        .seed(7000)
        .bulk_flow(args.pick(400, 100), 10.0, 0.0);
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.2,
        bad_loss_floor: 0.8,
        ..GilbertConfig::paper_default()
    };
    cfg
}

fn measure(cfg: &ExperimentConfig, runs: usize, name: &str) -> Row {
    let ms = run_many(cfg, runs);
    let n = ms.len() as f64;
    let avg = |f: &dyn Fn(&Metrics) -> f64| ms.iter().map(f).sum::<f64>() / n;
    Row {
        variant: name.to_string(),
        energy_uj_per_bit: avg(&|m| m.energy_per_bit_uj()),
        goodput_kbps: avg(&|m| m.avg_goodput_kbps()),
        source_rtx: avg(&|m| m.source_retransmissions as f64),
        local_recoveries: avg(&|m| m.local_recoveries as f64),
        queue_drops_data: avg(&|m| m.queue_drops_data as f64),
    }
}

fn main() {
    let args = Args::parse();
    let runs = args.pick(8, 2);
    let mut rows = Vec::new();

    rows.push(measure(&base(&args), runs, "baseline"));

    // Mechanism toggles.
    {
        let mut cfg = base(&args).transport(TransportKind::Jnc);
        cfg.gilbert = base(&args).gilbert;
        rows.push(measure(&cfg, runs, "-caching (JNC)"));
    }
    {
        let mut cfg = base(&args);
        cfg.jtp.backoff_on_local_recovery = false;
        rows.push(measure(&cfg, runs, "-backoff"));
    }
    {
        let mut cfg = base(&args);
        cfg.jtp.variable_feedback = false;
        rows.push(measure(&cfg, runs, "-variable feedback"));
    }

    // Controller gains.
    for (ki, kd) in [(0.05, 0.85), (0.6, 0.85), (0.25, 0.5), (0.25, 0.97)] {
        let mut cfg = base(&args);
        cfg.jtp.k_i = ki;
        cfg.jtp.k_d = kd;
        rows.push(measure(&cfg, runs, &format!("K_I={ki} K_D={kd}")));
    }

    // Outlier trigger sensitivity.
    for trig in [1u32, 6] {
        let mut cfg = base(&args);
        cfg.jtp.outlier_trigger = trig;
        rows.push(measure(&cfg, runs, &format!("outlier_trigger={trig}")));
    }

    // Feedback aggregation.
    for n in [2.0, 32.0] {
        let mut cfg = base(&args);
        cfg.jtp.feedback_aggregation = n;
        rows.push(measure(&cfg, runs, &format!("aggregation n={n}")));
    }

    // Cache eviction policy (the paper's named future work, §4). Small
    // caches make the policy matter.
    for policy in [
        jtp::CachePolicy::Lru,
        jtp::CachePolicy::Fifo,
        jtp::CachePolicy::Random,
    ] {
        let mut cfg = base(&args);
        cfg.jtp.cache_capacity = 8;
        cfg.jtp.cache_policy = policy;
        rows.push(measure(&cfg, runs, &format!("cache8 {policy:?}")));
    }

    // Per-hop reliability allocation (the §3 alternative) on a tolerant
    // flow, where attempt budgets actually differ per hop.
    for (strategy, name) in [
        (jtp::AllocationStrategy::EqualShare, "alloc equal (lt=10%)"),
        (
            jtp::AllocationStrategy::LossAware {
                shift: 2.0,
                ref_loss: 0.1,
            },
            "alloc loss-aware (lt=10%)",
        ),
    ] {
        let mut cfg = base(&args);
        cfg.jtp.allocation = strategy;
        cfg.flows[0].loss_tolerance = 0.10;
        rows.push(measure(&cfg, runs, name));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.4}", r.energy_uj_per_bit),
                format!("{:.3}", r.goodput_kbps),
                format!("{:.1}", r.source_rtx),
                format!("{:.1}", r.local_recoveries),
                format!("{:.1}", r.queue_drops_data),
            ]
        })
        .collect();
    print_table(
        "Ablations: JTP mechanisms and parameters (7-node chain, deep fades)",
        &[
            "variant",
            "uJ/bit",
            "goodput",
            "srcRtx",
            "cacheHits",
            "qDrops",
        ],
        &table,
    );

    let baseline = &rows[0];
    let jnc = &rows[1];
    println!(
        "\nshape check: removing caching raises source rtx: {}",
        if jnc.source_rtx > baseline.source_rtx {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // Back-off and variable feedback exist for fairness/congestion under
    // contention, not solo-flow energy; the energy-relevant mechanism on
    // this single-flow scenario is caching, and removing it must be the
    // most expensive of the three mechanism removals.
    let toggles = &rows[1..4];
    println!(
        "shape check: caching is the costliest mechanism to remove: {}",
        if toggles
            .iter()
            .all(|r| jnc.energy_uj_per_bit >= r.energy_uj_per_bit)
        {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &rows);
}
