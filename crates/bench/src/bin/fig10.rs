//! Figure 10 — JTP vs ATP vs TCP on static random topologies.
//!
//! Nodes uniform in a field sized for connectivity; 5 simultaneous flows
//! with random endpoints; 10 independent runs of 4000 s. All protocols run
//! under the same conditions in the same run (same placement, same flows,
//! same channel realisation) — as the paper does to make the comparison
//! meaningful despite topology variance.

use jtp_bench::{maybe_write_json, print_table, random_flows, with_flows, Args};
use jtp_netsim::{run_many, summarize_runs, ExperimentConfig, TransportKind};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    net_size: usize,
    protocol: String,
    energy_uj_per_bit: f64,
    energy_ci95: f64,
    goodput_kbps: f64,
    goodput_ci95: f64,
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = args.pick(vec![10, 15, 20, 25], vec![10]);
    let runs = args.pick(10, 2);
    let duration = args.pick(4000.0, 1000.0);
    let packets = u32::MAX / 2; // long-lived flows, steady-state metrics
    let protocols = [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Atp, "atp"),
        (TransportKind::Tcp, "tcp"),
    ];

    let mut points = Vec::new();
    for &n in &sizes {
        let flows = random_flows(
            n,
            5,
            packets,
            900.0_f64.min(duration / 4.0),
            1000.0_f64.min(duration / 3.0),
            1000 + n as u64,
        );
        for (kind, name) in protocols {
            let cfg = with_flows(
                ExperimentConfig::random(n)
                    .transport(kind)
                    .duration_s(duration)
                    .seed(1000),
                flows.clone(),
            );
            let ms = run_many(&cfg, runs);
            let (epb, gp) = summarize_runs(&ms);
            points.push(Point {
                net_size: n,
                protocol: name.into(),
                energy_uj_per_bit: epb.mean,
                energy_ci95: epb.ci95,
                goodput_kbps: gp.mean,
                goodput_ci95: gp.ci95,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.net_size.to_string(),
                p.protocol.clone(),
                format!("{:.4} ± {:.4}", p.energy_uj_per_bit, p.energy_ci95),
                format!("{:.3} ± {:.3}", p.goodput_kbps, p.goodput_ci95),
            ]
        })
        .collect();
    print_table(
        "Fig 10: static random topologies, JTP vs ATP vs TCP",
        &["netSize", "proto", "energy(uJ/bit)", "goodput(kbps)"],
        &rows,
    );

    let mut pass_energy = true;
    let mut pass_goodput = true;
    for &n in &sizes {
        let get = |proto: &str| {
            points
                .iter()
                .find(|p| p.net_size == n && p.protocol == proto)
                .unwrap()
        };
        let (j, a, t) = (get("jtp"), get("atp"), get("tcp"));
        if j.energy_uj_per_bit > a.energy_uj_per_bit || j.energy_uj_per_bit > t.energy_uj_per_bit {
            pass_energy = false;
        }
        if j.goodput_kbps < a.goodput_kbps && j.goodput_kbps < t.goodput_kbps {
            pass_goodput = false;
        }
    }
    println!(
        "\nshape check: JTP lowest energy/bit at every size: {}",
        if pass_energy { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check: JTP never worst on goodput: {}",
        if pass_goodput { "PASS" } else { "FAIL" }
    );
    maybe_write_json(&args, &points);
}
