//! Figure 8 — Rate adaptation of two competing JTP flows and the flip-flop
//! path monitor.
//!
//! A long-lived flow 1 shares a linear path with a short-lived flow 2
//! active during [1000 s, 1250 s]. The top plots show the fair convergence
//! of reception rates while flow 2 is alive; the bottom plots zoom into
//! flow 1's path monitor (reported available rate, running mean, control
//! limits) as the monitor flips to the agile filter at the arrival and
//! departure of flow 2.

use jtp_bench::{maybe_write_json, mean, Args};
use jtp_netsim::{run_traced, ExperimentConfig, FlowSpec, TraceConfig, TransportKind};
use jtp_sim::{FlowId, NodeId, SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    flow1_rate_before: f64,
    flow1_rate_during: f64,
    flow1_rate_after: f64,
    flow2_rate_during: f64,
    monitor_samples: usize,
}

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 0.4 } else { 1.0 };
    let t_start2 = 1000.0 * scale;
    let t_end2 = 1250.0 * scale;
    let duration = 1800.0 * scale;
    let n = 6;
    let packets2 = ((t_end2 - t_start2) * 3.0) as u32; // keep flow 2 busy

    let cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(duration)
        .seed(800)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(20),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        })
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs_f64(t_start2),
            packets: packets2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    let (_m, trace) = run_traced(
        &cfg,
        TraceConfig {
            receptions: true,
            monitor_of: Some(FlowId(0)),
            ..Default::default()
        },
    );

    let end = SimTime::from_secs_f64(duration);
    let w = SimDuration::from_secs(50);
    let step = SimDuration::from_secs(25);
    let r1 = trace.reception_rate_series(FlowId(0), w, step, end);
    let r2 = trace.reception_rate_series(FlowId(1), w, step, end);

    println!("== Fig 8(a): instantaneous throughput (pps) ==");
    println!("flow2 active in [{t_start2:.0}s, {t_end2:.0}s]");
    println!("{:>8} {:>8} {:>8}", "t(s)", "flow1", "flow2");
    for ((t, a), (_, b)) in r1.iter().zip(&r2) {
        if *t % (100.0 * scale).max(50.0) < step.as_secs_f64() {
            println!("{t:>8.0} {a:>8.2} {b:>8.2}");
        }
    }

    // Monitor zoom around the arrival of flow 2.
    println!("\n== Fig 8(b): flow 1's path monitor around flow 2 arrival ==");
    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>9}",
        "t(s)", "reported", "mean", "LCL", "UCL"
    );
    let zoom_lo = t_start2 - 15.0;
    let zoom_hi = t_start2 + 40.0;
    let mut printed = 0;
    for s in &trace.monitor {
        let t = s.at.as_secs_f64();
        if t >= zoom_lo && t <= zoom_hi && printed < 25 {
            println!(
                "{:>9.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                t, s.reported, s.mean, s.lcl, s.ucl
            );
            printed += 1;
        }
    }

    let in_window = |series: &[(f64, f64)], lo: f64, hi: f64| -> f64 {
        let xs: Vec<f64> = series
            .iter()
            .filter(|(t, _)| *t >= lo && *t <= hi)
            .map(|(_, r)| *r)
            .collect();
        mean(&xs)
    };
    let out = Output {
        flow1_rate_before: in_window(&r1, t_start2 * 0.5, t_start2 - 50.0),
        flow1_rate_during: in_window(&r1, t_start2 + 50.0, t_end2),
        flow1_rate_after: in_window(&r1, t_end2 + 100.0, duration),
        flow2_rate_during: in_window(&r2, t_start2 + 50.0, t_end2),
        monitor_samples: trace.monitor.len(),
    };
    println!(
        "\nflow1 rate before/during/after flow2: {:.2} / {:.2} / {:.2} pps",
        out.flow1_rate_before, out.flow1_rate_during, out.flow1_rate_after
    );
    println!("flow2 rate while active: {:.2} pps", out.flow2_rate_during);
    println!(
        "\nshape check: flow1 backs off while flow2 is active: {}",
        if out.flow1_rate_during < out.flow1_rate_before {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check: flow1 recovers after flow2 leaves: {}",
        if out.flow1_rate_after > out.flow1_rate_during {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check: rates roughly fair while sharing (within 3x): {}",
        if out.flow2_rate_during > 0.0
            && out.flow1_rate_during / out.flow2_rate_during < 3.0
            && out.flow2_rate_during / out.flow1_rate_during.max(1e-9) < 3.0
        {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &out);
}
