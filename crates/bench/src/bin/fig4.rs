//! Figure 4 — JTP vs JTP-with-No-Caching (JNC) on static linear paths.
//!
//! (a) Energy per delivered application bit vs. network size.
//! (b) Per-node energy on a 7-node linear path.
//!
//! Expected shape (paper): caching gains grow with path length; JTP both
//! spends less total energy and distributes it more evenly across mid-path
//! nodes (the paper calls out ~23 % fairer allocation to midpath nodes).

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, ExperimentConfig, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    net_size: usize,
    jtp_uj_per_bit: f64,
    jnc_uj_per_bit: f64,
    gain: f64,
}

fn lossy() -> GilbertConfig {
    // Deep fades (loss ~0.85 during bad periods) so the per-packet attempt
    // budget is regularly exhausted and recovery — local or end-to-end —
    // is exercised; this is the regime eq. (6) speaks to.
    GilbertConfig {
        bad_fraction: 0.25,
        bad_loss_floor: 0.85,
        ..GilbertConfig::paper_default()
    }
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = args.pick(vec![3, 4, 5, 6, 7, 8, 9], vec![4, 7]);
    let runs = args.pick(10, 2);
    let packets = args.pick(300, 80);

    let base = |n: usize, t: TransportKind| {
        let mut cfg = ExperimentConfig::linear(n)
            .transport(t)
            .duration_s(args.pick(3000.0, 1000.0))
            .seed(400)
            .bulk_flow(packets, 10.0, 0.0);
        cfg.gilbert = lossy();
        cfg
    };

    let mut points = Vec::new();
    for &n in &sizes {
        let jtp = run_many(&base(n, TransportKind::Jtp), runs);
        let jnc = run_many(&base(n, TransportKind::Jnc), runs);
        let epb = |ms: &[jtp_netsim::Metrics]| {
            ms.iter().map(|m| m.energy_per_bit_uj()).sum::<f64>() / ms.len() as f64
        };
        let (a, b) = (epb(&jtp), epb(&jnc));
        points.push(Point {
            net_size: n,
            jtp_uj_per_bit: a,
            jnc_uj_per_bit: b,
            gain: b / a,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.net_size.to_string(),
                format!("{:.4}", p.jtp_uj_per_bit),
                format!("{:.4}", p.jnc_uj_per_bit),
                format!("{:.3}x", p.gain),
            ]
        })
        .collect();
    print_table(
        "Fig 4(a): energy per delivered bit, JTP vs JNC",
        &["netSize", "jtp(uJ/bit)", "jnc(uJ/bit)", "jnc/jtp"],
        &rows,
    );

    // (b) per-node energy on the 7-node path.
    let n = 7;
    let jtp = run_many(&base(n, TransportKind::Jtp), runs);
    let jnc = run_many(&base(n, TransportKind::Jnc), runs);
    let avg_per_node = |ms: &[jtp_netsim::Metrics]| -> Vec<f64> {
        let mut acc = vec![0.0; n];
        for m in ms {
            for (i, e) in m.per_node_energy_j.iter().enumerate() {
                acc[i] += e;
            }
        }
        acc.iter().map(|e| e / ms.len() as f64).collect()
    };
    let jtp_nodes = avg_per_node(&jtp);
    let jnc_nodes = avg_per_node(&jnc);
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                format!("{}", i + 1),
                format!("{:.5}", jtp_nodes[i]),
                format!("{:.5}", jnc_nodes[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 4(b): per-node energy, 7-node linear path",
        &["node", "jtp(J)", "jnc(J)"],
        &rows,
    );

    // Shape checks: gains grow with path length; JNC source (node 1) works
    // harder than JTP's.
    let monotone_tail =
        points.len() < 2 || points.last().unwrap().gain >= points.first().unwrap().gain * 0.9;
    println!(
        "\nshape check: caching gain grows (last >= ~first): {}",
        if monotone_tail { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check: JNC source energy > JTP source energy: {}",
        if jnc_nodes[0] > jtp_nodes[0] {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &points);
}
