//! Figure 9 — JTP vs ATP vs TCP on static linear topologies.
//!
//! Two competing flows between the ends of linear networks of increasing
//! size, good/bad channel alternation (§6.1.1), 20 independent runs with
//! 95 % confidence intervals, 2500 s runs with flows starting randomly
//! after a 900 s warm-up.
//!
//! Expected shape (paper): JTP spends the least energy per delivered bit
//! — by growing factors as paths lengthen (ATP ~2×, TCP ~5× at size 10) —
//! while also achieving the highest goodput.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, summarize_runs, ExperimentConfig, FlowSpec, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{NodeId, SimDuration, SimRng};
use serde::Serialize;

/// §6.1.1 channel with deep fades: bad 10 % of the time, 3 s mean bad
/// period, ~0.8 per-attempt loss while bad — the regime where local vs
/// end-to-end recovery differ most.
fn channel() -> GilbertConfig {
    GilbertConfig {
        bad_loss_floor: 0.8,
        ..GilbertConfig::paper_default()
    }
}

#[derive(Serialize)]
struct Point {
    net_size: usize,
    protocol: String,
    energy_uj_per_bit: f64,
    energy_ci95: f64,
    goodput_kbps: f64,
    goodput_ci95: f64,
}

fn flows(n: usize, warmup: f64, seed: u64) -> Vec<FlowSpec> {
    // Two competing long-lived flows, one in each direction, started
    // randomly after the warm-up; goodput and energy/bit are measured in
    // steady state over the remainder of the run.
    let mut rng = SimRng::derive(seed, "fig9-starts");
    vec![
        FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs_f64(warmup + rng.uniform(0.0, 100.0)),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        },
        FlowSpec {
            src: NodeId(n as u32 - 1),
            dst: NodeId(0),
            start: SimDuration::from_secs_f64(warmup + rng.uniform(0.0, 100.0)),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        },
    ]
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = args.pick(vec![2, 4, 6, 8, 10], vec![3, 6]);
    let runs = args.pick(20, 2);
    let duration = args.pick(2500.0, 900.0);
    let warmup = args.pick(900.0, 100.0);
    let protocols = [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Atp, "atp"),
        (TransportKind::Tcp, "tcp"),
    ];

    let mut points = Vec::new();
    for &n in &sizes {
        for (kind, name) in protocols {
            let mut cfg = ExperimentConfig::linear(n)
                .transport(kind)
                .duration_s(duration)
                .seed(900);
            cfg.gilbert = channel();
            cfg.flows = flows(n, warmup, 900);
            let ms = run_many(&cfg, runs);
            let (epb, gp) = summarize_runs(&ms);
            points.push(Point {
                net_size: n,
                protocol: name.into(),
                energy_uj_per_bit: epb.mean,
                energy_ci95: epb.ci95,
                goodput_kbps: gp.mean,
                goodput_ci95: gp.ci95,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.net_size.to_string(),
                p.protocol.clone(),
                format!("{:.4} ± {:.4}", p.energy_uj_per_bit, p.energy_ci95),
                format!("{:.3} ± {:.3}", p.goodput_kbps, p.goodput_ci95),
            ]
        })
        .collect();
    print_table(
        "Fig 9: linear topologies, JTP vs ATP vs TCP",
        &["netSize", "proto", "energy(uJ/bit)", "goodput(kbps)"],
        &rows,
    );

    // Shape checks at the largest size.
    let last = *sizes.last().unwrap();
    let get = |proto: &str| {
        points
            .iter()
            .find(|p| p.net_size == last && p.protocol == proto)
            .unwrap()
    };
    let (j, a, t) = (get("jtp"), get("atp"), get("tcp"));
    println!("\nat netSize {last}:");
    println!(
        "  energy ratios: atp/jtp = {:.2} (paper ~2), tcp/jtp = {:.2} (paper ~5)",
        a.energy_uj_per_bit / j.energy_uj_per_bit,
        t.energy_uj_per_bit / j.energy_uj_per_bit
    );
    println!(
        "shape check: JTP lowest energy/bit: {}",
        if j.energy_uj_per_bit <= a.energy_uj_per_bit && j.energy_uj_per_bit <= t.energy_uj_per_bit
        {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check: JTP highest goodput: {}",
        if j.goodput_kbps >= a.goodput_kbps && j.goodput_kbps >= t.goodput_kbps {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &points);
}
