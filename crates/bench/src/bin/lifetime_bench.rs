//! Network-lifetime comparison: which transport keeps a battery-powered
//! network alive — and delivering — longest?
//!
//! Runs the lifetime catalog scenarios (finite batteries, long-lived
//! workloads) under JTP / JNC / ATP / TCP and reports time-to-first-death,
//! time-to-partition, the alive-node curve at quarter points of the run,
//! packets delivered before the lights went out and energy-per-bit — the
//! paper's §6.1 energy story closed into an actual lifetime answer.
//!
//! Run: `cargo run --release -p jtp-bench --bin lifetime_bench --
//! --quick --json BENCH_lifetime.json`
//!
//! When the `--json` target already exists and holds a JSON object (e.g.
//! `BENCH_engine.json`), the report is **merged** into it under a
//! `"lifetime"` key instead of clobbering the file.

use jtp_bench::Args;
use jtp_netsim::{run_many, Scenario, TransportKind};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    scenario: String,
    transport: String,
    seeds: usize,
    /// Mean time of the first battery death (s); the run horizon when no
    /// node died.
    first_death_s_mean: f64,
    /// Fraction of runs in which the survivors were partitioned.
    partitioned_frac: f64,
    /// Mean alive-node counts at 25/50/75/100 % of the horizon.
    alive_curve: Vec<f64>,
    /// Mean packets delivered before the network died (or the run ended).
    delivered_mean: f64,
    /// Mean battery deaths per run.
    deaths_mean: f64,
    /// Mean residual energy left per node at harvest (J).
    residual_j_mean: f64,
    energy_per_bit_uj_mean: f64,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    cells: Vec<Cell>,
}

/// Merge `{"lifetime": report}` into an existing JSON object file (or
/// write a fresh one) via [`jtp_bench::merge_json_section`]: every other
/// section is preserved verbatim, a previous `"lifetime"` section is
/// replaced in place.
fn write_merged(path: &std::path::Path, report: &Report) {
    let body = serde_json::to_string_pretty(report).expect("serialisable report");
    jtp_bench::merge_json_section(path, "lifetime", &body);
}

fn main() {
    let args = Args::parse();
    let seeds = args.pick(6, 2);
    let transports = [
        (TransportKind::Jtp, "JTP"),
        (TransportKind::Jnc, "JNC"),
        (TransportKind::Atp, "ATP"),
        (TransportKind::Tcp, "TCP"),
    ];
    let scenarios: Vec<Scenario> = Scenario::catalog()
        .into_iter()
        .filter(|s| s.battery.is_some())
        .collect();
    assert!(
        !scenarios.is_empty(),
        "the catalog lost its lifetime (battery) entries"
    );
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for sc in &scenarios {
        let horizon = sc.duration_s;
        let n_nodes = sc.topology.node_count() as f64;
        for (t, tname) in transports {
            let cfg = sc.build(t);
            let ms = run_many(&cfg, seeds);
            let k = ms.len() as f64;
            let first_death = ms
                .iter()
                .map(|m| m.first_death_s.unwrap_or(horizon))
                .sum::<f64>()
                / k;
            let partitioned =
                ms.iter().filter(|m| m.first_partition_s.is_some()).count() as f64 / k;
            let alive_curve: Vec<f64> = [0.25, 0.5, 0.75, 1.0]
                .iter()
                .map(|q| {
                    ms.iter()
                        .map(|m| m.alive_at_s(q * horizon) as f64)
                        .sum::<f64>()
                        / k
                })
                .collect();
            let delivered = ms.iter().map(|m| m.delivered_packets as f64).sum::<f64>() / k;
            let deaths = ms.iter().map(|m| m.battery_deaths as f64).sum::<f64>() / k;
            let residual = ms
                .iter()
                .map(|m| m.mean_residual_j().unwrap_or(0.0))
                .sum::<f64>()
                / k;
            let epb = {
                let finite: Vec<f64> = ms
                    .iter()
                    .map(|m| m.energy_per_bit_uj())
                    .filter(|v| v.is_finite())
                    .collect();
                jtp_bench::mean(&finite)
            };
            rows.push(vec![
                sc.name.clone(),
                tname.into(),
                format!("{first_death:.1}"),
                format!("{partitioned:.2}"),
                format!(
                    "{:.1}/{:.1}/{:.1}/{:.1}",
                    alive_curve[0], alive_curve[1], alive_curve[2], alive_curve[3]
                ),
                format!("{:.1}%", alive_curve[3] / n_nodes * 100.0),
                format!("{delivered:.0}"),
                format!("{epb:.3}"),
            ]);
            cells.push(Cell {
                scenario: sc.name.clone(),
                transport: tname.into(),
                seeds,
                first_death_s_mean: first_death,
                partitioned_frac: partitioned,
                alive_curve,
                delivered_mean: delivered,
                deaths_mean: deaths,
                residual_j_mean: residual,
                energy_per_bit_uj_mean: epb,
            });
        }
    }
    jtp_bench::print_table(
        &format!("Network lifetime ({seeds} seeds per cell)"),
        &[
            "scenario",
            "transport",
            "first death s",
            "partitioned",
            "alive @25/50/75/100%",
            "survive%",
            "delivered",
            "µJ/bit",
        ],
        &rows,
    );
    let report = Report {
        quick: args.quick,
        cells,
    };
    if let Some(path) = &args.json {
        write_merged(path, &report);
    }
}
