//! Figure 7 — Variable-rate vs constant-rate feedback.
//!
//! An 8-node linear topology with one long-lived flow competing with
//! several short-lived flows. The constant feedback rate is swept; the
//! paper shows (a) total energy rising with the feedback rate (more ACK
//! packets) while (b) low feedback rates suffer queue drops because the
//! long-lived sender backs off too slowly when the short flows arrive.
//! Variable-rate feedback achieves both low energy and few drops.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, ExperimentConfig, FlowSpec, TransportKind};
use jtp_sim::{NodeId, SimDuration};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    feedback: String,
    feedback_rate_pps: f64,
    energy_mj_mean: f64,
    ack_energy_mj_mean: f64,
    /// Data-frame queue drops (the paper counts drops of the flows' data
    /// packets; at high feedback rates the ACK stream itself also gets
    /// dropped, which would otherwise mask the congestion signal).
    queue_drops_mean: f64,
}

fn workload(duration_s: f64) -> Vec<FlowSpec> {
    let n = 8u32;
    let mut flows = vec![FlowSpec {
        src: NodeId(0),
        dst: NodeId(n - 1),
        start: SimDuration::from_secs(20),
        packets: u32::MAX / 2, // long-lived
        loss_tolerance: 0.0,
        initial_rate_pps: None,
    }];
    // Short-lived cross traffic arriving "hot" (at a rate comparable to
    // the path capacity) on sub-paths — the long-lived sender must back
    // off quickly or mid-path queues overflow, which is precisely what
    // distinguishes feedback rates in the paper's Fig. 7(b).
    let mut t = 150.0;
    let mut k = 0u32;
    while t + 100.0 < duration_s {
        let (src, dst) = match k % 3 {
            0 => (1, 5),
            1 => (6, 2),
            _ => (3, 7),
        };
        flows.push(FlowSpec {
            src: NodeId(src),
            dst: NodeId(dst),
            start: SimDuration::from_secs_f64(t),
            packets: 150, // ~50 s episodes: backing off late costs drops
            loss_tolerance: 0.0,
            initial_rate_pps: Some(3.0),
        });
        t += 180.0;
        k += 1;
    }
    flows
}

fn main() {
    let args = Args::parse();
    let duration = args.pick(2000.0, 800.0);
    let runs = args.pick(8, 2);
    // Constant feedback periods (s) => rates 1/T (the paper sweeps
    // 0.05..0.5 pkts/s).
    let periods: Vec<f64> = args.pick(vec![20.0, 10.0, 5.0, 3.0, 2.0], vec![20.0, 2.0]);

    let base = || {
        let mut cfg = ExperimentConfig::linear(8)
            .transport(TransportKind::Jtp)
            .duration_s(duration)
            .seed(700);
        cfg.flows = workload(duration);
        // Queues deep enough to absorb the rate controller's steady-state
        // limit cycle; only sustained overload episodes overflow them.
        cfg.mac.queue_capacity = 20;
        // Pin the controller's increase cadence to the slowest feedback
        // period for *all* variants: the sweep then varies exactly what
        // the paper varies — how quickly congestion news reaches the
        // sender — rather than how fast the controller ramps.
        cfg.jtp.min_increase_interval = SimDuration::from_secs(20);
        cfg
    };

    let mut points = Vec::new();
    for &period in &periods {
        let mut cfg = base();
        cfg.jtp.variable_feedback = false;
        cfg.jtp.constant_feedback_period = SimDuration::from_secs_f64(period);
        let ms = run_many(&cfg, runs);
        points.push(summarise(
            &ms,
            format!("constant 1/{period}s"),
            1.0 / period,
        ));
    }
    // Variable-rate feedback (JTP's default).
    let ms = run_many(&base(), runs);
    points.push(summarise(&ms, "variable".into(), 0.0));

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.feedback.clone(),
                if p.feedback_rate_pps > 0.0 {
                    format!("{:.3}", p.feedback_rate_pps)
                } else {
                    "-".into()
                },
                format!("{:.2}", p.energy_mj_mean),
                format!("{:.2}", p.ack_energy_mj_mean),
                format!("{:.1}", p.queue_drops_mean),
            ]
        })
        .collect();
    print_table(
        "Fig 7: energy and queue drops vs feedback rate",
        &[
            "feedback",
            "rate(pps)",
            "energy(mJ)",
            "ackEnergy(mJ)",
            "queueDrops",
        ],
        &rows,
    );

    let variable = points.last().unwrap();
    let fastest = &points[periods.len() - 1];
    println!(
        "\nshape check: high feedback rate costs more ACK energy than variable: {}",
        if fastest.ack_energy_mj_mean > variable.ack_energy_mj_mean {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // The paper's headline for Fig. 7: variable-rate feedback achieves
    // both low energy and few drops — i.e. it sits on the sweep's Pareto
    // front rather than at either extreme.
    let min_drops = points[..periods.len()]
        .iter()
        .map(|p| p.queue_drops_mean)
        .fold(f64::INFINITY, f64::min);
    let drops_ok = variable.queue_drops_mean <= min_drops * 1.3 + 5.0;
    let energy_ok = variable.ack_energy_mj_mean < fastest.ack_energy_mj_mean;
    println!(
        "shape check: variable feedback on the energy/drops Pareto front: {}",
        if drops_ok && energy_ok {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &points);
}

fn summarise(ms: &[jtp_netsim::Metrics], label: String, rate: f64) -> Point {
    let n = ms.len() as f64;
    Point {
        feedback: label,
        feedback_rate_pps: rate,
        energy_mj_mean: ms.iter().map(|m| m.energy_total_j * 1e3).sum::<f64>() / n,
        ack_energy_mj_mean: ms.iter().map(|m| m.energy_ack_j * 1e3).sum::<f64>() / n,
        queue_drops_mean: ms.iter().map(|m| m.queue_drops_data as f64).sum::<f64>() / n,
    }
}
