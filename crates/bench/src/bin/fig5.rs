//! Figure 5 — Fair in-network caching: the source back-off `t_b`.
//!
//! Two competing flows on an 8-node linear path: flow 1 is UDP-like
//! (100 % loss tolerance, never requests retransmissions), flow 2 requires
//! full reliability and regularly invokes the caches' local recovery.
//! The recovered packets are extra traffic flow 2 injects mid-path; §4.2
//! makes its source back off `t_b = Σ s_j / r(t)` to compensate.
//!
//! Observables (averaged over several seeds):
//! * flow 2's short-term reception-rate **spikes** relative to its
//!   long-term mean — visible without the back-off (paper's right plots),
//! * the capacity left to the competing flow 1 — the back-off returns the
//!   recovered packets' airtime to the other flow.

use jtp_bench::{maybe_write_json, mean, Args};
use jtp_netsim::{run_traced, ExperimentConfig, FlowSpec, TraceConfig, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{FlowId, NodeId, SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct Variant {
    backoff: bool,
    flow1_mean_pps: f64,
    flow2_mean_pps: f64,
    flow2_spike_ratio: f64,
    recoveries: u64,
}

/// A (time, rate) reception-rate series.
type Series = Vec<(f64, f64)>;

fn run_one(args: &Args, backoff: bool, seed: u64) -> (Variant, Series, Series) {
    let n = 8;
    let duration = args.pick(2500.0, 800.0);
    let mut cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(duration)
        .seed(seed)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2, // long-lived
            loss_tolerance: 1.0,   // UDP-like: never requests recovery
            initial_rate_pps: None,
        })
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0, // full reliability: exercises the caches
            initial_rate_pps: None,
        });
    cfg.jtp.backoff_on_local_recovery = backoff;
    // Deep fades so local recovery is a steady presence.
    cfg.gilbert = GilbertConfig {
        bad_fraction: 0.25,
        bad_loss_floor: 0.85,
        ..GilbertConfig::paper_default()
    };
    let (m, trace) = run_traced(
        &cfg,
        TraceConfig {
            receptions: true,
            ..Default::default()
        },
    );
    let end = SimTime::from_secs_f64(duration);
    let short = |f: u16| {
        trace.reception_rate_series(
            FlowId(f),
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
            end,
        )
    };
    let long = |f: u16| {
        trace.reception_rate_series(
            FlowId(f),
            SimDuration::from_secs(300),
            SimDuration::from_secs(100),
            end,
        )
    };
    let steady = |s: &[(f64, f64)]| {
        let xs: Vec<f64> = s.iter().skip(3).map(|(_, r)| *r).collect();
        mean(&xs)
    };
    let s2 = short(1);
    let f2_long = steady(&long(1));
    let f2_peak = s2.iter().skip(3).map(|(_, r)| *r).fold(0.0, f64::max);
    let v = Variant {
        backoff,
        flow1_mean_pps: steady(&long(0)),
        flow2_mean_pps: f2_long,
        flow2_spike_ratio: if f2_long > 0.0 {
            f2_peak / f2_long
        } else {
            0.0
        },
        recoveries: m.local_recoveries,
    };
    (v, short(0), s2)
}

fn main() {
    let args = Args::parse();
    let seeds: Vec<u64> = args.pick(vec![500, 501, 502, 503], vec![500, 501]);

    let mut with: Vec<Variant> = Vec::new();
    let mut without: Vec<Variant> = Vec::new();
    let mut sample_series: Option<(Series, Series)> = None;
    for &seed in &seeds {
        let (v, s1, s2) = run_one(&args, true, seed);
        with.push(v);
        if sample_series.is_none() {
            sample_series = Some((s1, s2));
        }
        let (v, _, _) = run_one(&args, false, seed);
        without.push(v);
    }

    println!("== Fig 5: reception rates of two competing flows ==");
    println!("flow1 = UDP-like (lt 100%), flow2 = reliable (lt 0%), 8-node path");
    if let Some((s1, s2)) = &sample_series {
        let fmt = |s: &[(f64, f64)]| {
            s.iter()
                .skip(1)
                .take(12)
                .map(|(_, r)| format!("{r:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("\nsample short-term series (with back-off, 30 s windows):");
        println!("  flow1: {}", fmt(s1));
        println!("  flow2: {}", fmt(s2));
    }

    let agg = |vs: &[Variant]| {
        let f1 = mean(&vs.iter().map(|v| v.flow1_mean_pps).collect::<Vec<_>>());
        let f2 = mean(&vs.iter().map(|v| v.flow2_mean_pps).collect::<Vec<_>>());
        let spike = mean(&vs.iter().map(|v| v.flow2_spike_ratio).collect::<Vec<_>>());
        let rec: u64 = vs.iter().map(|v| v.recoveries).sum();
        (f1, f2, spike, rec)
    };
    let (f1_w, f2_w, spike_w, rec_w) = agg(&with);
    let (f1_wo, f2_wo, spike_wo, rec_wo) = agg(&without);

    println!("\naveraged over {} seeds:", seeds.len());
    println!(
        "  with back-off:    f1 {f1_w:.3} pps, f2 {f2_w:.3} pps, f2 peak/mean {spike_w:.2}, recoveries {rec_w}"
    );
    println!(
        "  without back-off: f1 {f1_wo:.3} pps, f2 {f2_wo:.3} pps, f2 peak/mean {spike_wo:.2}, recoveries {rec_wo}"
    );

    println!(
        "\nshape check: caches were exercised in both variants: {}",
        if rec_w > 0 && rec_wo > 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check: back-off leaves the competing flow >= capacity: {}",
        if f1_w >= f1_wo * 0.98 { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check: back-off tames flow2 spikes (peak/mean smaller): {}",
        if spike_w <= spike_wo + 0.10 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &vec![with, without]);
}
