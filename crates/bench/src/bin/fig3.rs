//! Figure 3 — Different reliability levels (jtp0 / jtp10 / jtp20).
//!
//! (a) Total energy spent vs. network size for loss tolerances 0/10/20 %.
//! (b) Data delivered to the application vs. network size, against the
//!     application requirement lines (80 % and 90 % of the offered data).
//! (c) The per-packet MAC attempt budget iJTP assigns over time at the
//!     third node of a 4-node path.
//!
//! Expected shape (paper): jtp0 spends the most energy, jtp20 the least;
//! all three deliver at least their requirement; the attempt budget is
//! larger for less tolerant flows and spikes during bad channel periods.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, run_traced, ExperimentConfig, TraceConfig, TransportKind};
use jtp_sim::NodeId;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    net_size: usize,
    loss_tolerance: f64,
    energy_j_mean: f64,
    delivered_kb_mean: f64,
    offered_kb: f64,
    delivery_fraction: f64,
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = args.pick((2..=8).collect(), vec![3, 5]);
    let runs = args.pick(10, 2);
    let packets: u32 = args.pick(400, 80);
    let tolerances = [0.0, 0.10, 0.20];

    let mut points = Vec::new();
    for &n in &sizes {
        for &lt in &tolerances {
            let cfg = ExperimentConfig::linear(n)
                .transport(TransportKind::Jtp)
                .duration_s(args.pick(2500.0, 800.0))
                .seed(300)
                .bulk_flow(packets, 10.0, lt);
            let ms = run_many(&cfg, runs);
            let energy: f64 = ms.iter().map(|m| m.energy_total_j).sum::<f64>() / ms.len() as f64;
            let delivered: f64 = ms
                .iter()
                .map(|m| m.delivered_bytes as f64 / 1000.0)
                .sum::<f64>()
                / ms.len() as f64;
            let offered = packets as f64 * 0.8; // 800 B payloads => 0.8 kB each
            points.push(Point {
                net_size: n,
                loss_tolerance: lt,
                energy_j_mean: energy,
                delivered_kb_mean: delivered,
                offered_kb: offered,
                delivery_fraction: delivered / offered,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.net_size.to_string(),
                format!("jtp{}", (p.loss_tolerance * 100.0) as u32),
                format!("{:.4}", p.energy_j_mean),
                format!("{:.1}", p.delivered_kb_mean),
                format!("{:.1}", p.offered_kb),
                format!("{:.3}", p.delivery_fraction),
            ]
        })
        .collect();
    print_table(
        "Fig 3(a,b): energy & data delivered per reliability level",
        &[
            "netSize",
            "level",
            "energy(J)",
            "delivered(kB)",
            "offered(kB)",
            "fraction",
        ],
        &rows,
    );
    println!("requirement lines: jtp10 >= 0.90, jtp20 >= 0.80 of offered data");

    // (c) attempt budgets over time at the third node of a 4-node path.
    println!("\n== Fig 3(c): max link-layer attempts at node 3 (4-node path) ==");
    for &lt in &[0.10, 0.20] {
        let cfg = ExperimentConfig::linear(4)
            .transport(TransportKind::Jtp)
            .duration_s(args.pick(1200.0, 400.0))
            .seed(333)
            .bulk_flow(args.pick(600, 150), 10.0, lt);
        let (_, trace) = run_traced(
            &cfg,
            TraceConfig {
                attempts_at: Some(NodeId(2)),
                ..Default::default()
            },
        );
        // Bucket the budgets into 20 s bins, printing the max per bin
        // (mirrors the paper's scatter of per-packet budgets).
        let bin = 20.0;
        let mut bins: Vec<(f64, u32)> = Vec::new();
        for (t, a) in &trace.attempts {
            let b = (t.as_secs_f64() / bin).floor() * bin;
            match bins.last_mut() {
                Some((bt, ba)) if *bt == b => *ba = (*ba).max(*a),
                _ => bins.push((b, *a)),
            }
        }
        let series: Vec<String> = bins
            .iter()
            .take(20)
            .map(|(t, a)| format!("{t:>6.0}s:{a}"))
            .collect();
        println!("jtp{:<2} {}", (lt * 100.0) as u32, series.join(" "));
    }

    let verdict_energy_ordering = {
        // jtp0 should cost >= jtp20 at the largest size.
        let n = *sizes.last().unwrap();
        let e = |lt: f64| {
            points
                .iter()
                .find(|p| p.net_size == n && p.loss_tolerance == lt)
                .unwrap()
                .energy_j_mean
        };
        e(0.0) >= e(0.20)
    };
    println!(
        "\nshape check: energy(jtp0) >= energy(jtp20) at max size: {}",
        if verdict_energy_ordering {
            "PASS"
        } else {
            "FAIL"
        }
    );
    maybe_write_json(&args, &points);
}
